//! Conformance checking of *observed* executions against the reasoning
//! guarantees of §2.2.
//!
//! The operational semantics says which orderings are allowed; the runtime
//! (`qs-runtime`) claims to implement them.  This module closes the loop: a
//! test instruments handler-owned objects so that every applied call records
//! `(client, block, sequence-number)`, and the resulting per-handler log is
//! checked against the two guarantees:
//!
//! * **per-block order** — within one separate block, calls are applied in
//!   exactly the order the client logged them (no loss, no duplication, no
//!   reordering);
//! * **no interleaving** — the calls of one block form a contiguous run in
//!   the handler's log; requests from other clients never intrude.
//!
//! The checker is deliberately independent of the runtime crate (it only sees
//! plain data), so the same conformance check can be applied to the model's
//! own traces, to the real runtime, or to any future implementation.

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a client thread in an observed execution.
pub type ClientId = u64;
/// Identifier of one separate block performed by a client.
pub type BlockId = u64;

/// One call as applied by a handler, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppliedCall {
    /// The client that logged the call.
    pub client: ClientId,
    /// The separate block (per client) the call belongs to.
    pub block: BlockId,
    /// The position of the call within its block, starting at 0.
    pub seq: u64,
}

impl AppliedCall {
    /// Convenience constructor.
    pub fn new(client: ClientId, block: BlockId, seq: u64) -> Self {
        AppliedCall { client, block, seq }
    }
}

/// A violation of the reasoning guarantees found in an observed log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Calls of one block were applied out of order (or with gaps or
    /// duplicates).
    OrderBroken {
        /// The client.
        client: ClientId,
        /// The block.
        block: BlockId,
        /// The sequence numbers in application order.
        observed: Vec<u64>,
    },
    /// A block's calls were interleaved with another client's calls.
    BlockInterleaved {
        /// The client whose block was interrupted.
        client: ClientId,
        /// The block that was interrupted.
        block: BlockId,
        /// The client that intruded.
        intruder: ClientId,
    },
    /// A block was expected to contain `expected` calls but the log holds a
    /// different number.
    WrongCallCount {
        /// The client.
        client: ClientId,
        /// The block.
        block: BlockId,
        /// Expected number of calls.
        expected: u64,
        /// Number of calls found in the log.
        found: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OrderBroken {
                client,
                block,
                observed,
            } => write!(
                f,
                "client {client} block {block}: calls applied out of order: {observed:?}"
            ),
            Violation::BlockInterleaved {
                client,
                block,
                intruder,
            } => write!(
                f,
                "client {client} block {block}: interleaved with calls from client {intruder}"
            ),
            Violation::WrongCallCount {
                client,
                block,
                expected,
                found,
            } => write!(
                f,
                "client {client} block {block}: expected {expected} call(s), found {found}"
            ),
        }
    }
}

/// The result of checking one handler's observed log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConformanceReport {
    /// All violations found (empty = the log conforms to the guarantees).
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// `true` when no violation was found.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a handler's applied-call log against the §2.2 guarantees.
///
/// `expected_calls`, when provided, maps `(client, block)` to the number of
/// calls the client logged in that block, allowing lost or duplicated calls
/// to be detected even when they would not break ordering.
pub fn check_handler_log(
    log: &[AppliedCall],
    expected_calls: Option<&BTreeMap<(ClientId, BlockId), u64>>,
) -> ConformanceReport {
    let mut report = ConformanceReport::default();

    // Group application positions by block.
    let mut per_block: BTreeMap<(ClientId, BlockId), Vec<(usize, u64)>> = BTreeMap::new();
    for (position, call) in log.iter().enumerate() {
        per_block
            .entry((call.client, call.block))
            .or_default()
            .push((position, call.seq));
    }

    for (&(client, block), entries) in &per_block {
        // Guarantee 2a: per-block order.  The sequence numbers must be exactly
        // 0, 1, 2, … in application order.
        let observed: Vec<u64> = entries.iter().map(|(_, seq)| *seq).collect();
        let in_order = observed.iter().enumerate().all(|(i, &seq)| seq == i as u64);
        if !in_order {
            report.violations.push(Violation::OrderBroken {
                client,
                block,
                observed: observed.clone(),
            });
        }

        // Guarantee 2b: contiguity.  The application positions of this block
        // must form a gap-free range; anything inside the range belonging to
        // another client is an intruder.
        let first = entries.first().map(|(p, _)| *p).unwrap_or(0);
        let last = entries.last().map(|(p, _)| *p).unwrap_or(0);
        for intruding in &log[first..=last] {
            if intruding.client != client {
                report.violations.push(Violation::BlockInterleaved {
                    client,
                    block,
                    intruder: intruding.client,
                });
                break;
            }
        }

        // Optional completeness check.
        if let Some(expected) = expected_calls {
            if let Some(&expected_count) = expected.get(&(client, block)) {
                if expected_count != observed.len() as u64 {
                    report.violations.push(Violation::WrongCallCount {
                        client,
                        block,
                        expected: expected_count,
                        found: observed.len() as u64,
                    });
                }
            }
        }
    }

    report
}

/// Convenience for instrumented runtime tests: builds the expected-call map
/// for clients that each performed `blocks` blocks of `calls_per_block` calls.
pub fn uniform_expectation(
    clients: u64,
    blocks: u64,
    calls_per_block: u64,
) -> BTreeMap<(ClientId, BlockId), u64> {
    let mut expected = BTreeMap::new();
    for client in 0..clients {
        for block in 0..blocks {
            expected.insert((client, block), calls_per_block);
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(client: ClientId, blk: BlockId, n: u64) -> Vec<AppliedCall> {
        (0..n)
            .map(|seq| AppliedCall::new(client, blk, seq))
            .collect()
    }

    #[test]
    fn contiguous_in_order_blocks_conform() {
        let mut log = Vec::new();
        log.extend(block(1, 0, 5));
        log.extend(block(2, 0, 3));
        log.extend(block(1, 1, 4));
        let expected = BTreeMap::from([((1, 0), 5), ((2, 0), 3), ((1, 1), 4)]);
        let report = check_handler_log(&log, Some(&expected));
        assert!(report.conforms(), "violations: {:?}", report.violations);
    }

    #[test]
    fn reordering_within_a_block_is_detected() {
        let mut log = block(1, 0, 4);
        log.swap(1, 2);
        let report = check_handler_log(&log, None);
        assert!(!report.conforms());
        assert!(matches!(
            report.violations[0],
            Violation::OrderBroken {
                client: 1,
                block: 0,
                ..
            }
        ));
        assert!(report.violations[0].to_string().contains("out of order"));
    }

    #[test]
    fn interleaving_between_blocks_is_detected() {
        // Client 2's call lands in the middle of client 1's block.
        let log = vec![
            AppliedCall::new(1, 0, 0),
            AppliedCall::new(2, 0, 0),
            AppliedCall::new(1, 0, 1),
        ];
        let report = check_handler_log(&log, None);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::BlockInterleaved {
                client: 1,
                intruder: 2,
                ..
            }
        )));
    }

    #[test]
    fn lost_and_duplicated_calls_are_detected() {
        // Lost: expected 5, got 4 (still in order).
        let log = block(1, 0, 4);
        let expected = BTreeMap::from([((1, 0), 5)]);
        let report = check_handler_log(&log, Some(&expected));
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::WrongCallCount {
                expected: 5,
                found: 4,
                ..
            }
        )));

        // Duplicated: the repeated sequence number also breaks ordering.
        let mut log = block(1, 0, 3);
        log.push(AppliedCall::new(1, 0, 2));
        let report = check_handler_log(&log, None);
        assert!(!report.conforms());
    }

    #[test]
    fn gaps_in_sequence_numbers_break_order() {
        let log = vec![AppliedCall::new(1, 0, 0), AppliedCall::new(1, 0, 2)];
        let report = check_handler_log(&log, None);
        assert!(matches!(
            report.violations[0],
            Violation::OrderBroken { .. }
        ));
    }

    #[test]
    fn empty_log_conforms() {
        assert!(check_handler_log(&[], None).conforms());
    }

    #[test]
    fn uniform_expectation_builds_full_map() {
        let expected = uniform_expectation(3, 2, 10);
        assert_eq!(expected.len(), 6);
        assert_eq!(expected[&(2, 1)], 10);
    }

    #[test]
    fn violations_render_messages() {
        let interleaved = Violation::BlockInterleaved {
            client: 3,
            block: 1,
            intruder: 9,
        };
        assert!(interleaved.to_string().contains("client 9"));
        let count = Violation::WrongCallCount {
            client: 1,
            block: 0,
            expected: 2,
            found: 1,
        };
        assert!(count.to_string().contains("expected 2"));
    }
}
