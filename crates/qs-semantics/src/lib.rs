//! # qs-semantics — the SCOOP/Qs operational semantics, executable
//!
//! §2 of the paper gives the SCOOP/Qs execution model as a set of inference
//! rules over configurations of handlers (Fig. 3), plus a generalised
//! `separate` rule for multi-handler reservations (§2.4).  This crate encodes
//! those rules directly as a small-step interpreter so that the reasoning
//! guarantees (§2.2) can be *checked* rather than merely asserted:
//!
//! * [`ast`] — the statement syntax `s ::= separate X s | call(x, f) |
//!   query(x, f) | wait h | release h | end | skip`;
//! * [`machine`] — configurations (parallel compositions of handler triples
//!   `(h, q_h, s)`) and the transition rules;
//! * [`explore`] — schedulers: deterministic, seeded-random, and bounded
//!   exhaustive exploration with deadlock detection;
//! * [`trace`] — execution traces and the order/interleaving properties that
//!   constitute the reasoning guarantees;
//! * [`deadlock`] — wait-for graphs and the §2.5 reservation-order analysis
//!   separating lock-based SCOOP deadlocks from SCOOP/Qs deadlocks;
//! * [`refine`] — conformance checking of observed (runtime) executions
//!   against the §2.2 guarantees.
//!
//! The `qs-runtime` crate is the efficient implementation of this model; the
//! property tests in `tests/` check that runs of the real runtime observe the
//! orderings this model allows.

#![warn(missing_docs)]

pub mod ast;
pub mod deadlock;
pub mod explore;
pub mod machine;
pub mod refine;
pub mod trace;

pub use ast::{fig1_program, fig5_program, fig6_program, HandlerName, Method, Program, Stmt};
pub use deadlock::{
    assess_reservation_order, assess_with_mailbox_capacity, assessment_diagnostics, find_cycle,
    is_deadlocked_now, wait_for_graph, BoundedAssessment, DeadlockAssessment, HandlerGraph,
    LabeledHandlerGraph, WaitEdgeKind,
};
pub use explore::{explore_all, random_run, ExplorationReport, RunOutcome, Scheduler};
pub use machine::{Configuration, HandlerState, StepResult};
pub use refine::{
    check_handler_log, uniform_expectation, AppliedCall, BlockId, ClientId, ConformanceReport,
    Violation,
};
pub use trace::{Event, Trace};
