//! Schedulers and bounded exhaustive exploration of the semantics.
//!
//! The reasoning guarantees of §2.2 are *schedule-independent* statements:
//! they must hold under every interleaving the rules allow.  This module
//! provides a seeded random scheduler (cheap, probabilistic coverage) and a
//! bounded exhaustive explorer (complete for small models) with deadlock
//! detection, which is how the Fig. 1 / Fig. 5 / Fig. 6 claims are checked in
//! the test suite.

use std::collections::HashSet;

use crate::ast::Program;
use crate::machine::{Configuration, StepResult, Transition};
use crate::trace::Trace;

/// How a single run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All programs ran to completion.
    Finished,
    /// The run stopped because no transition was enabled while some handler
    /// still had work: a deadlock involving the listed handlers.
    Deadlock(Vec<String>),
    /// The step budget was exhausted before termination.
    BudgetExhausted,
}

/// A scheduling strategy: given the enabled transitions, pick an index.
pub trait Scheduler {
    /// Chooses one of the enabled transitions.
    fn choose(&mut self, enabled: &[Transition]) -> usize;
}

/// Always picks the first enabled transition (deterministic).
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstEnabled;

impl Scheduler for FirstEnabled {
    fn choose(&mut self, _enabled: &[Transition]) -> usize {
        0
    }
}

/// Picks uniformly at random with a fixed seed (reproducible).
///
/// Uses a local SplitMix64 generator so the crate needs no external RNG
/// dependency; the stream is a pure function of the seed.
#[derive(Debug, Clone)]
pub struct SeededRandom {
    state: u64,
}

impl SeededRandom {
    /// Creates a scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Scheduler for SeededRandom {
    fn choose(&mut self, enabled: &[Transition]) -> usize {
        (self.next_u64() % enabled.len().max(1) as u64) as usize
    }
}

/// Runs the programs under `scheduler` for at most `max_steps` steps.
///
/// Returns the outcome and the trace of events.
pub fn run_with<S: Scheduler>(
    programs: Vec<Program>,
    scheduler: &mut S,
    max_steps: usize,
) -> (RunOutcome, Trace) {
    let mut config = Configuration::new(programs);
    let mut trace = Trace::new();
    for _ in 0..max_steps {
        match config.step_with(|enabled| scheduler.choose(enabled)) {
            StepResult::Stepped(events) => trace.extend(events),
            StepResult::Finished => return (RunOutcome::Finished, trace),
            StepResult::Deadlock(stuck) => return (RunOutcome::Deadlock(stuck), trace),
        }
    }
    (RunOutcome::BudgetExhausted, trace)
}

/// Runs the programs once under a seeded random scheduler.
pub fn random_run(programs: Vec<Program>, seed: u64, max_steps: usize) -> (RunOutcome, Trace) {
    let mut scheduler = SeededRandom::new(seed);
    run_with(programs, &mut scheduler, max_steps)
}

/// Result of a bounded exhaustive exploration.
#[derive(Debug, Clone, Default)]
pub struct ExplorationReport {
    /// Number of distinct configurations visited.
    pub states_visited: usize,
    /// Number of complete (finished) terminal traces found.
    pub finished_runs: usize,
    /// Deadlocked terminal states, with the stuck handlers.
    pub deadlocks: Vec<Vec<String>>,
    /// Traces of finished runs (only kept up to `max_traces`).
    pub finished_traces: Vec<Trace>,
    /// `true` if exploration was cut off by the state or depth budget.
    pub truncated: bool,
}

impl ExplorationReport {
    /// Returns `true` if no deadlock was found anywhere in the explored space.
    pub fn deadlock_free(&self) -> bool {
        self.deadlocks.is_empty()
    }
}

/// Exhaustively explores every schedule of `programs` up to the given budgets.
///
/// `max_states` bounds the number of distinct configurations expanded,
/// `max_depth` bounds the length of a single schedule and `max_traces` bounds
/// how many finished traces are retained for property checking.
pub fn explore_all(
    programs: Vec<Program>,
    max_states: usize,
    max_depth: usize,
    max_traces: usize,
) -> ExplorationReport {
    let initial = Configuration::new(programs);
    let mut report = ExplorationReport::default();
    let mut visited: HashSet<Configuration> = HashSet::new();
    // Depth-first over (configuration, trace, depth).  Traces make states
    // path-dependent, so `visited` is only used to bound the *number of
    // expansions* of identical configurations with identical remaining
    // behaviour: identical configurations always produce the same reachable
    // set, so deadlock-freedom is preserved; finished-trace enumeration stays
    // exact as long as the budget is not hit (report.truncated says so).
    let mut stack: Vec<(Configuration, Trace, usize)> = vec![(initial, Trace::new(), 0)];
    let mut deadlock_states: HashSet<Vec<String>> = HashSet::new();

    while let Some((config, trace, depth)) = stack.pop() {
        let enabled = config.enabled_transitions();
        if enabled.is_empty() {
            if config.all_programs_finished() {
                report.finished_runs += 1;
                if report.finished_traces.len() < max_traces {
                    report.finished_traces.push(trace);
                }
            } else {
                let stuck: Vec<String> = config
                    .handlers
                    .values()
                    .filter(|h| !h.program.is_empty())
                    .map(|h| h.name.clone())
                    .collect();
                if deadlock_states.insert(stuck.clone()) {
                    report.deadlocks.push(stuck);
                }
            }
            continue;
        }
        if depth >= max_depth || report.states_visited >= max_states {
            report.truncated = true;
            continue;
        }
        if !visited.insert(config.clone()) {
            continue;
        }
        report.states_visited += 1;
        for transition in &enabled {
            let mut next = config.clone();
            let mut next_trace = trace.clone();
            next_trace.extend(next.apply(transition));
            stack.push((next, next_trace, depth + 1));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{fig1_program, fig5_program, fig6_program, Program, Stmt};

    #[test]
    fn deterministic_and_random_runs_finish_fig1() {
        let (outcome, trace) = run_with(fig1_program(), &mut FirstEnabled, 10_000);
        assert_eq!(outcome, RunOutcome::Finished);
        assert_eq!(trace.executed_on("x").len(), 4);

        for seed in 0..20 {
            let (outcome, trace) = random_run(fig1_program(), seed, 10_000);
            assert_eq!(outcome, RunOutcome::Finished);
            let on_x = trace.executed_on("x");
            assert!(
                on_x == ["foo", "bar", "bar", "baz"] || on_x == ["bar", "baz", "foo", "bar"],
                "seed {seed}: disallowed interleaving {on_x:?}"
            );
        }
    }

    #[test]
    fn exploration_finds_both_fig1_interleavings() {
        let report = explore_all(fig1_program(), 200_000, 200, 10_000);
        assert!(report.deadlock_free());
        assert!(report.finished_runs > 0);
        let mut seen = HashSet::new();
        for trace in &report.finished_traces {
            seen.insert(trace.executed_on("x"));
        }
        assert!(seen.contains(&vec![
            "foo".to_string(),
            "bar".to_string(),
            "bar".to_string(),
            "baz".to_string()
        ]));
        assert!(seen.contains(&vec![
            "bar".to_string(),
            "baz".to_string(),
            "foo".to_string(),
            "bar".to_string()
        ]));
        // And nothing else.
        assert_eq!(seen.len(), 2, "unexpected interleavings: {seen:?}");
    }

    #[test]
    fn fig5_multi_reservation_is_colour_consistent() {
        let report = explore_all(fig5_program(), 200_000, 200, 10_000);
        assert!(report.deadlock_free());
        for trace in &report.finished_traces {
            let on_x = trace.executed_on("x");
            let on_y = trace.executed_on("y");
            // Whoever wrote x last also wrote y last: the final colours agree.
            assert_eq!(
                on_x.last(),
                on_y.last(),
                "mixed colours: {on_x:?} vs {on_y:?}"
            );
        }
    }

    #[test]
    fn fig6_without_queries_cannot_deadlock() {
        let report = explore_all(fig6_program(false), 500_000, 300, 16);
        assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks);
        assert!(report.finished_runs > 0);
    }

    #[test]
    fn fig6_with_queries_can_deadlock() {
        let report = explore_all(fig6_program(true), 500_000, 300, 16);
        assert!(
            !report.deadlock_free(),
            "expected at least one deadlocking schedule"
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let endless = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    (0..50).map(|i| Stmt::call("x", &format!("m{i}"))).collect(),
                )],
            ),
        ];
        let (outcome, _) = run_with(endless.clone(), &mut FirstEnabled, 3);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        let report = explore_all(endless, 2, 2, 4);
        assert!(report.truncated);
    }
}
