//! Execution traces and the reasoning-guarantee properties checked on them.

use crate::ast::HandlerName;

/// An observable event produced by applying a transition rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// A client reserved one or more handlers (`separate` rule).
    Reserved {
        /// The reserving client.
        client: HandlerName,
        /// The reserved handlers.
        handlers: Vec<HandlerName>,
    },
    /// A client logged a feature call on a handler (`call`/`query` rules).
    Logged {
        /// The logging client.
        client: HandlerName,
        /// The handler the call was logged on.
        handler: HandlerName,
        /// The feature name.
        method: String,
    },
    /// A handler dequeued the next action of a private queue (`run` rule).
    Dequeued {
        /// The executing handler.
        handler: HandlerName,
        /// The client whose private queue is being drained.
        client: HandlerName,
        /// Debug rendering of the dequeued action.
        action: String,
    },
    /// A dequeued feature is about to execute on the handler for a client.
    Scheduled {
        /// The executing handler.
        handler: HandlerName,
        /// The client that logged the feature.
        client: HandlerName,
        /// The feature name.
        method: String,
    },
    /// A feature (or local computation) executed.
    Executed {
        /// The handler that executed it.
        handler: HandlerName,
        /// The feature name.
        method: String,
    },
    /// A wait/release pair synchronised (`sync` rule).
    Synced {
        /// The client that was waiting.
        client: HandlerName,
        /// The handler that released it.
        handler: HandlerName,
    },
    /// A handler retired an exhausted private queue (`end` rule).
    QueueRetired {
        /// The handler.
        handler: HandlerName,
        /// The client whose private queue was retired.
        client: HandlerName,
    },
}

/// A sequence of events, with helpers for checking the §2.2 guarantees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// The recorded events, oldest first.
    pub events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends events from one step.
    pub fn extend(&mut self, events: Vec<Event>) {
        self.events.extend(events);
    }

    /// The sequence of features executed on `handler`, in execution order.
    pub fn executed_on(&self, handler: &str) -> Vec<String> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Executed { handler: h, method } if h == handler => Some(method.clone()),
                _ => None,
            })
            .collect()
    }

    /// The sequence of `(client, method)` pairs scheduled on `handler`, in
    /// the order the handler picked them out of private queues.
    pub fn scheduled_on(&self, handler: &str) -> Vec<(String, String)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Scheduled {
                    handler: h,
                    client,
                    method,
                } if h == handler => Some((client.clone(), method.clone())),
                _ => None,
            })
            .collect()
    }

    /// Reasoning guarantee 2 (§2.2): on `handler`, the features scheduled for
    /// any single client appear contiguously per reservation and in the order
    /// the client logged them.  Because each private queue is drained to
    /// completion before the next one starts, the schedule on a handler must
    /// be a concatenation of per-client blocks.  Returns `true` if that
    /// holds.
    pub fn per_client_blocks_are_contiguous(&self, handler: &str) -> bool {
        let scheduled = self.scheduled_on(handler);
        let retired: Vec<&Event> = self
            .events
            .iter()
            .filter(|e| matches!(e, Event::QueueRetired { handler: h, .. } if h == handler))
            .collect();
        // Reconstruct block boundaries: walk the scheduled list and make sure
        // the client only changes at points where a queue was retired before
        // the next schedule event.  A cheaper equivalent check: the sequence
        // of clients must never return to a previous client unless that
        // client re-reserved (appears in a later Reserved event).  For the
        // small models we check the simpler property: consecutive runs per
        // client, allowing repeats only if the client reserved again.
        let mut reservations_per_client = std::collections::HashMap::new();
        for event in &self.events {
            if let Event::Reserved { client, handlers } = event {
                if handlers.iter().any(|h| h == handler) {
                    *reservations_per_client
                        .entry(client.clone())
                        .or_insert(0usize) += 1;
                }
            }
        }
        let mut blocks_per_client: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        let mut previous: Option<&str> = None;
        for (client, _) in &scheduled {
            if previous != Some(client.as_str()) {
                *blocks_per_client.entry(client.clone()).or_insert(0) += 1;
                previous = Some(client.as_str());
            }
        }
        let _ = retired;
        blocks_per_client.iter().all(|(client, blocks)| {
            *blocks <= reservations_per_client.get(client).copied().unwrap_or(0)
        })
    }

    /// Checks that `earlier` was executed before `later` on `handler`.
    pub fn executed_before(&self, handler: &str, earlier: &str, later: &str) -> bool {
        let on_handler = self.executed_on(handler);
        match (
            on_handler.iter().position(|m| m == earlier),
            on_handler.iter().position(|m| m == later),
        ) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        }
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executed(handler: &str, method: &str) -> Event {
        Event::Executed {
            handler: handler.to_string(),
            method: method.to_string(),
        }
    }

    #[test]
    fn executed_on_filters_by_handler() {
        let mut trace = Trace::new();
        trace.extend(vec![
            executed("x", "a"),
            executed("y", "b"),
            executed("x", "c"),
        ]);
        assert_eq!(trace.executed_on("x"), vec!["a", "c"]);
        assert_eq!(trace.executed_on("y"), vec!["b"]);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
    }

    #[test]
    fn executed_before_checks_relative_order() {
        let mut trace = Trace::new();
        trace.extend(vec![executed("x", "first"), executed("x", "second")]);
        assert!(trace.executed_before("x", "first", "second"));
        assert!(!trace.executed_before("x", "second", "first"));
        assert!(!trace.executed_before("x", "first", "missing"));
    }

    #[test]
    fn contiguity_check_accepts_single_blocks() {
        let mut trace = Trace::new();
        trace.extend(vec![
            Event::Reserved {
                client: "c1".into(),
                handlers: vec!["x".into()],
            },
            Event::Reserved {
                client: "c2".into(),
                handlers: vec!["x".into()],
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c1".into(),
                method: "a".into(),
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c1".into(),
                method: "b".into(),
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c2".into(),
                method: "c".into(),
            },
        ]);
        assert!(trace.per_client_blocks_are_contiguous("x"));
    }

    #[test]
    fn contiguity_check_rejects_interleaving() {
        let mut trace = Trace::new();
        trace.extend(vec![
            Event::Reserved {
                client: "c1".into(),
                handlers: vec!["x".into()],
            },
            Event::Reserved {
                client: "c2".into(),
                handlers: vec!["x".into()],
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c1".into(),
                method: "a".into(),
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c2".into(),
                method: "c".into(),
            },
            Event::Scheduled {
                handler: "x".into(),
                client: "c1".into(),
                method: "b".into(),
            },
        ]);
        assert!(!trace.per_client_blocks_are_contiguous("x"));
    }
}
