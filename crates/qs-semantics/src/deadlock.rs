//! Deadlock analysis: dynamic wait-for graphs and the static reservation-order
//! argument of §2.5.
//!
//! The paper makes a two-part claim about the Fig. 6 program (two clients
//! nesting reservations of `x` and `y` in opposite orders):
//!
//! 1. under the original lock-based SCOOP semantics it can deadlock, because
//!    reservations block;
//! 2. under SCOOP/Qs it cannot, because reservations and asynchronous calls
//!    never block — a deadlock additionally requires *queries* (blocking
//!    operations) on the cyclically-reserved handlers.
//!
//! This module makes both halves checkable:
//!
//! * [`wait_for_graph`] / [`find_cycle`] — the dynamic side: which handler is
//!   currently blocked on which (only `wait`, i.e. an outstanding query, can
//!   block in SCOOP/Qs), and whether those edges form a cycle;
//! * [`assess_reservation_order`] — the static side: the reservation-order
//!   graph induced by nested separate blocks, whether it has a cycle, and
//!   whether blocking queries are present inside the nesting — together
//!   giving the §2.5 verdict for lock-based SCOOP and for SCOOP/Qs.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{HandlerName, Program, Stmt};
use crate::machine::Configuration;

/// A directed graph over handler names.
pub type HandlerGraph = BTreeMap<HandlerName, BTreeSet<HandlerName>>;

/// Builds the dynamic wait-for graph of a configuration: an edge `a → b`
/// means handler `a` is currently executing `wait b` (it issued a query on
/// `b` and has not been released yet).
pub fn wait_for_graph(config: &Configuration) -> HandlerGraph {
    let mut graph: HandlerGraph = BTreeMap::new();
    for (name, handler) in &config.handlers {
        if let Some(Stmt::Wait(target)) = handler.program.front() {
            graph
                .entry(name.clone())
                .or_default()
                .insert(target.clone());
        }
    }
    graph
}

/// Finds a cycle in a handler graph, returning the handlers on it (in cycle
/// order, starting from the smallest name) or `None` when the graph is
/// acyclic.
pub fn find_cycle(graph: &HandlerGraph) -> Option<Vec<HandlerName>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        InProgress,
        Done,
    }

    fn visit(
        node: &HandlerName,
        graph: &HandlerGraph,
        marks: &mut BTreeMap<HandlerName, Mark>,
        stack: &mut Vec<HandlerName>,
    ) -> Option<Vec<HandlerName>> {
        match marks.get(node).copied().unwrap_or(Mark::Unvisited) {
            Mark::Done => return None,
            Mark::InProgress => {
                let start = stack.iter().position(|n| n == node).expect("on stack");
                return Some(stack[start..].to_vec());
            }
            Mark::Unvisited => {}
        }
        marks.insert(node.clone(), Mark::InProgress);
        stack.push(node.clone());
        if let Some(successors) = graph.get(node) {
            for next in successors {
                if let Some(cycle) = visit(next, graph, marks, stack) {
                    return Some(cycle);
                }
            }
        }
        stack.pop();
        marks.insert(node.clone(), Mark::Done);
        None
    }

    let mut marks = BTreeMap::new();
    let mut stack = Vec::new();
    for node in graph.keys() {
        if let Some(mut cycle) = visit(node, graph, &mut marks, &mut stack) {
            // Canonicalise: rotate so the smallest name comes first.
            if let Some(min_index) = cycle
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .map(|(i, _)| i)
            {
                cycle.rotate_left(min_index);
            }
            return Some(cycle);
        }
        stack.clear();
    }
    None
}

/// Returns `true` if the configuration is *currently* deadlocked: some
/// handlers form a wait-for cycle, or a handler waits on a release that can
/// never be produced.
pub fn is_deadlocked_now(config: &Configuration) -> bool {
    !config.all_programs_finished() && config.enabled_transitions().is_empty()
}

/// The verdict of the static reservation-order analysis (§2.5).
///
/// Both verdicts are *necessary-condition* analyses: when they say "not
/// possible" the corresponding semantics cannot deadlock on these programs;
/// when they say "possible" a deadlock may exist and should be confirmed by
/// exploration ([`crate::explore::explore_all`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockAssessment {
    /// The reservation-order graph: `a → b` when some program reserves `b`
    /// inside a block that already reserves `a`.
    pub reservation_order: HandlerGraph,
    /// A cycle in that graph, if any (the Fig. 6 inconsistent lock order).
    pub reservation_cycle: Option<Vec<HandlerName>>,
    /// Handlers that are the target of a blocking query issued somewhere
    /// inside a nested reservation.
    pub blocking_targets: BTreeSet<HandlerName>,
    /// Clients that issue a blocking query while holding reservations from
    /// two or more *nested* separate blocks on distinct handlers.  These are
    /// the only clients that can participate in a SCOOP/Qs deadlock cycle:
    /// a client holding a single reservation can only query the handler it is
    /// registered with, which serves it as soon as it reaches the head of the
    /// queue-of-queues.
    pub nested_blocking_clients: BTreeSet<HandlerName>,
}

impl DeadlockAssessment {
    /// Whether the original, lock-based SCOOP semantics could deadlock on
    /// these programs: an inconsistent reservation order suffices, because a
    /// `separate` block blocks until it holds the handler lock (§2.1, Fig. 2).
    pub fn lock_based_deadlock_possible(&self) -> bool {
        self.reservation_cycle.is_some()
    }

    /// Whether SCOOP/Qs could deadlock on these programs.
    ///
    /// Reservations and asynchronous calls never block in SCOOP/Qs, so a
    /// deadlock needs at least two clients that block (query) while holding
    /// nested reservations on distinct handlers (§2.5).  Note that — unlike
    /// the lock-based semantics — a *consistent* nesting order does not help:
    /// nested registrations are not atomic, so two clients can still end up
    /// enqueued in opposite orders on two handlers.  Atomic multi-handler
    /// blocks (`separate x y`, §2.4) do not count as nesting and are safe.
    pub fn qs_deadlock_possible(&self) -> bool {
        self.nested_blocking_clients.len() >= 2
    }
}

/// Runs the static reservation-order analysis over a set of programs.
pub fn assess_reservation_order(programs: &[Program]) -> DeadlockAssessment {
    let mut reservation_order: HandlerGraph = BTreeMap::new();
    let mut blocking_targets = BTreeSet::new();
    let mut nested_blocking_clients = BTreeSet::new();
    for program in programs {
        let mut nested_blocking = false;
        walk(
            &program.body,
            &mut Vec::new(),
            &mut reservation_order,
            &mut blocking_targets,
            &mut nested_blocking,
        );
        if nested_blocking {
            nested_blocking_clients.insert(program.handler.clone());
        }
    }
    let reservation_cycle = find_cycle(&reservation_order);
    DeadlockAssessment {
        reservation_order,
        reservation_cycle,
        blocking_targets,
        nested_blocking_clients,
    }
}

fn walk(
    stmts: &[Stmt],
    held: &mut Vec<Vec<HandlerName>>,
    order: &mut HandlerGraph,
    blocking: &mut BTreeSet<HandlerName>,
    nested_blocking: &mut bool,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Separate { targets, body } => {
                for outer in held.iter().flatten() {
                    for inner in targets {
                        if outer != inner {
                            order
                                .entry(outer.clone())
                                .or_default()
                                .insert(inner.clone());
                        }
                    }
                }
                held.push(targets.clone());
                walk(body, held, order, blocking, nested_blocking);
                held.pop();
            }
            Stmt::Query { target, .. } | Stmt::Wait(target) => {
                // A query blocks the client; it is the ingredient that turns
                // reservation structure into a real deadlock under SCOOP/Qs.
                if !held.is_empty() {
                    blocking.insert(target.clone());
                }
                // Blocking while holding nested reservations from at least two
                // separate blocks spanning more than one handler.
                let distinct: BTreeSet<&HandlerName> = held.iter().flatten().collect();
                if held.len() >= 2 && distinct.len() >= 2 {
                    *nested_blocking = true;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{fig6_program, Program, Stmt};
    use crate::explore::{explore_all, random_run};

    #[test]
    fn cycle_detection_finds_simple_cycles() {
        let mut graph: HandlerGraph = BTreeMap::new();
        graph.entry("a".into()).or_default().insert("b".into());
        graph.entry("b".into()).or_default().insert("c".into());
        assert_eq!(find_cycle(&graph), None);
        graph.entry("c".into()).or_default().insert("a".into());
        let cycle = find_cycle(&graph).expect("cycle exists");
        assert_eq!(
            cycle,
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn self_loops_are_cycles() {
        let mut graph: HandlerGraph = BTreeMap::new();
        graph.entry("a".into()).or_default().insert("a".into());
        assert_eq!(find_cycle(&graph), Some(vec!["a".to_string()]));
    }

    #[test]
    fn fig6_without_queries_cannot_deadlock_under_qs() {
        let assessment = assess_reservation_order(&fig6_program(false));
        // The inconsistent reservation order is there …
        assert!(assessment.lock_based_deadlock_possible());
        assert!(assessment.reservation_cycle.is_some());
        // … but without blocking queries SCOOP/Qs cannot deadlock.
        assert!(!assessment.qs_deadlock_possible());

        // Cross-check dynamically: exhaustive exploration finds no deadlock.
        let report = explore_all(fig6_program(false), 200_000, 300, 16);
        assert!(
            report.deadlock_free(),
            "Fig. 6 must be deadlock-free under Qs"
        );
        assert!(report.finished_runs > 0);
    }

    #[test]
    fn fig6_with_queries_can_deadlock_under_qs() {
        let programs = fig6_program(true);
        let assessment = assess_reservation_order(&programs);
        assert!(assessment.lock_based_deadlock_possible());
        assert!(assessment.qs_deadlock_possible());

        // Dynamically, at least one schedule deadlocks.
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(
            !report.deadlock_free(),
            "expected at least one deadlocking schedule"
        );
    }

    #[test]
    fn wait_for_graph_captures_outstanding_queries() {
        // client1 waits on x, which never releases (x is passive with an
        // artificial wait): construct directly to exercise the graph builder.
        let programs = vec![
            Program::passive("x"),
            Program::new("c", vec![Stmt::Wait("x".to_string())]),
        ];
        let config = Configuration::new(programs);
        let graph = wait_for_graph(&config);
        assert_eq!(graph["c"], ["x".to_string()].into_iter().collect());
        assert!(is_deadlocked_now(&config));
    }

    #[test]
    fn straight_line_programs_have_no_reservation_edges() {
        let programs = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::call("x", "f"), Stmt::query("x", "g")],
                )],
            ),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(assessment.reservation_order.is_empty());
        assert!(!assessment.lock_based_deadlock_possible());
        assert!(!assessment.qs_deadlock_possible());
        // And the run really terminates.
        let (outcome, _) = random_run(programs, 7, 500);
        assert_eq!(outcome, crate::explore::RunOutcome::Finished);
    }

    #[test]
    fn consistent_nesting_with_queries_can_still_deadlock_under_qs() {
        // Both clients nest x-then-y.  Under the lock-based semantics the
        // consistent order rules a deadlock out; under SCOOP/Qs nested
        // registrations are not atomic, so the clients can still enqueue in
        // opposite orders on x and y and deadlock once they block on queries.
        let client = |name: &str| {
            Program::new(
                name,
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::separate(
                        "y",
                        vec![Stmt::query("x", "qx"), Stmt::query("y", "qy")],
                    )],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        // Consistent nesting: no reservation-order cycle.
        assert!(!assessment.lock_based_deadlock_possible());
        // But both clients block while holding nested reservations.
        assert!(assessment.qs_deadlock_possible());
        assert_eq!(assessment.nested_blocking_clients.len(), 2);
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(
            !report.deadlock_free(),
            "registration-order inversion deadlock exists"
        );
    }

    #[test]
    fn atomic_multi_reservation_with_queries_is_deadlock_free() {
        // The §2.4 cure: reserve x and y together.  A single multi-handler
        // block does not count as nesting, and exploration confirms there is
        // no deadlock.
        let client = |name: &str| {
            Program::new(
                name,
                vec![Stmt::separate_many(
                    &["x", "y"],
                    vec![Stmt::query("x", "qx"), Stmt::query("y", "qy")],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(!assessment.lock_based_deadlock_possible());
        assert!(!assessment.qs_deadlock_possible());
        assert!(assessment.nested_blocking_clients.is_empty());
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks);
    }

    #[test]
    fn single_reservation_queries_never_deadlock() {
        let client = |name: &str| {
            Program::new(
                name,
                vec![
                    Stmt::separate("x", vec![Stmt::call("x", "put"), Stmt::query("x", "get")]),
                    Stmt::separate("y", vec![Stmt::query("y", "get")]),
                ],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(!assessment.qs_deadlock_possible());
        assert!(!assessment.blocking_targets.is_empty());
        let report = explore_all(programs, 500_000, 400, 16);
        assert!(report.deadlock_free());
    }
}
