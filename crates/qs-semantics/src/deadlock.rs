//! Deadlock analysis: dynamic wait-for graphs and the static reservation-order
//! argument of §2.5.
//!
//! The paper makes a two-part claim about the Fig. 6 program (two clients
//! nesting reservations of `x` and `y` in opposite orders):
//!
//! 1. under the original lock-based SCOOP semantics it can deadlock, because
//!    reservations block;
//! 2. under SCOOP/Qs it cannot, because reservations and asynchronous calls
//!    never block — a deadlock additionally requires *queries* (blocking
//!    operations) on the cyclically-reserved handlers.
//!
//! This module makes both halves checkable:
//!
//! * [`wait_for_graph`] / [`find_cycle`] — the dynamic side: which handler is
//!   currently blocked on which (only `wait`, i.e. an outstanding query, can
//!   block in SCOOP/Qs), and whether those edges form a cycle;
//! * [`assess_reservation_order`] — the static side: the reservation-order
//!   graph induced by nested separate blocks, whether it has a cycle, and
//!   whether blocking queries are present inside the nesting — together
//!   giving the §2.5 verdict for lock-based SCOOP and for SCOOP/Qs.
//!
//! The production runtime additionally *bounds* its mailboxes, which breaks
//! the premise of the §2.5 argument: with a capacity, an asynchronous `call`
//! can block too (backpressure), so topologies that are deadlock-free
//! unbounded can deadlock once a bound is set.
//! [`assess_with_mailbox_capacity`] extends the static analysis with those
//! capacity-induced edges ([`WaitEdgeKind::BoundedMailbox`]) and the
//! handler-side commitment to an open separate block
//! ([`WaitEdgeKind::OpenBlock`]), mirroring the runtime detector in
//! `qs-deadlock`/`qs-runtime` (whose `MailboxPush` and `Serving` edges are
//! the dynamic counterparts).
//!
//! Shared-read reservations ([`Stmt::SeparateRead`], the target of the
//! effect-inference pass in `qs-lang`) add two more edge kinds with runtime
//! counterparts: [`WaitEdgeKind::ReadWait`] (a reader waiting to acquire the
//! writer-preferring gate) and [`WaitEdgeKind::WriterWait`] (an exclusive
//! acquisition waiting for active readers to release) — the same kinds the
//! runtime monitor reports for its reader gate.  Static cycles through these
//! edges are conservative: readers never block readers directly, but the
//! writer-preferring gate lets any pending writer wedge between a reader's
//! hold and its next read-acquisition, so a cross wait among read blocks is
//! still a hazard worth flagging.  Use [`assessment_diagnostics`] to turn a
//! verdict into `QS-W002` compiler diagnostics alongside the effect lints.

use std::collections::{BTreeMap, BTreeSet};

use qs_compiler::Diagnostic;

use crate::ast::{HandlerName, Program, Stmt};
use crate::machine::Configuration;

/// A directed graph over handler names.
pub type HandlerGraph = BTreeMap<HandlerName, BTreeSet<HandlerName>>;

/// Builds the dynamic wait-for graph of a configuration: an edge `a → b`
/// means handler `a` is currently executing `wait b` (it issued a query on
/// `b` and has not been released yet).
pub fn wait_for_graph(config: &Configuration) -> HandlerGraph {
    let mut graph: HandlerGraph = BTreeMap::new();
    for (name, handler) in &config.handlers {
        if let Some(Stmt::Wait(target)) = handler.program.front() {
            graph
                .entry(name.clone())
                .or_default()
                .insert(target.clone());
        }
    }
    graph
}

/// Finds a cycle in a handler graph, returning the handlers on it (in cycle
/// order, starting from the smallest name) or `None` when the graph is
/// acyclic.
pub fn find_cycle(graph: &HandlerGraph) -> Option<Vec<HandlerName>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        InProgress,
        Done,
    }

    fn visit(
        node: &HandlerName,
        graph: &HandlerGraph,
        marks: &mut BTreeMap<HandlerName, Mark>,
        stack: &mut Vec<HandlerName>,
    ) -> Option<Vec<HandlerName>> {
        match marks.get(node).copied().unwrap_or(Mark::Unvisited) {
            Mark::Done => return None,
            Mark::InProgress => {
                let start = stack.iter().position(|n| n == node).expect("on stack");
                return Some(stack[start..].to_vec());
            }
            Mark::Unvisited => {}
        }
        marks.insert(node.clone(), Mark::InProgress);
        stack.push(node.clone());
        if let Some(successors) = graph.get(node) {
            for next in successors {
                if let Some(cycle) = visit(next, graph, marks, stack) {
                    return Some(cycle);
                }
            }
        }
        stack.pop();
        marks.insert(node.clone(), Mark::Done);
        None
    }

    let mut marks = BTreeMap::new();
    let mut stack = Vec::new();
    for node in graph.keys() {
        if let Some(mut cycle) = visit(node, graph, &mut marks, &mut stack) {
            // Canonicalise: rotate so the smallest name comes first.
            if let Some(min_index) = cycle
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cmp(b.1))
                .map(|(i, _)| i)
            {
                cycle.rotate_left(min_index);
            }
            return Some(cycle);
        }
        stack.clear();
    }
    None
}

/// Returns `true` if the configuration is *currently* deadlocked: some
/// handlers form a wait-for cycle, or a handler waits on a release that can
/// never be produced.
pub fn is_deadlocked_now(config: &Configuration) -> bool {
    !config.all_programs_finished() && config.enabled_transitions().is_empty()
}

/// The verdict of the static reservation-order analysis (§2.5).
///
/// Both verdicts are *necessary-condition* analyses: when they say "not
/// possible" the corresponding semantics cannot deadlock on these programs;
/// when they say "possible" a deadlock may exist and should be confirmed by
/// exploration ([`crate::explore::explore_all`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockAssessment {
    /// The reservation-order graph: `a → b` when some program reserves `b`
    /// inside a block that already reserves `a`.
    pub reservation_order: HandlerGraph,
    /// A cycle in that graph, if any (the Fig. 6 inconsistent lock order).
    pub reservation_cycle: Option<Vec<HandlerName>>,
    /// Handlers that are the target of a blocking query issued somewhere
    /// inside a nested reservation.
    pub blocking_targets: BTreeSet<HandlerName>,
    /// Clients that issue a blocking query while holding reservations from
    /// two or more *nested* separate blocks on distinct handlers.  These are
    /// the only clients that can participate in a SCOOP/Qs deadlock cycle:
    /// a client holding a single reservation can only query the handler it is
    /// registered with, which serves it as soon as it reaches the head of the
    /// queue-of-queues.
    pub nested_blocking_clients: BTreeSet<HandlerName>,
}

impl DeadlockAssessment {
    /// Whether the original, lock-based SCOOP semantics could deadlock on
    /// these programs: an inconsistent reservation order suffices, because a
    /// `separate` block blocks until it holds the handler lock (§2.1, Fig. 2).
    pub fn lock_based_deadlock_possible(&self) -> bool {
        self.reservation_cycle.is_some()
    }

    /// Whether SCOOP/Qs could deadlock on these programs.
    ///
    /// Reservations and asynchronous calls never block in SCOOP/Qs, so a
    /// deadlock needs at least two clients that block (query) while holding
    /// nested reservations on distinct handlers (§2.5).  Note that — unlike
    /// the lock-based semantics — a *consistent* nesting order does not help:
    /// nested registrations are not atomic, so two clients can still end up
    /// enqueued in opposite orders on two handlers.  Atomic multi-handler
    /// blocks (`separate x y`, §2.4) do not count as nesting and are safe.
    pub fn qs_deadlock_possible(&self) -> bool {
        self.nested_blocking_clients.len() >= 2
    }
}

/// Runs the static reservation-order analysis over a set of programs.
pub fn assess_reservation_order(programs: &[Program]) -> DeadlockAssessment {
    let mut reservation_order: HandlerGraph = BTreeMap::new();
    let mut blocking_targets = BTreeSet::new();
    let mut nested_blocking_clients = BTreeSet::new();
    for program in programs {
        let mut nested_blocking = false;
        walk(
            &program.body,
            &mut Vec::new(),
            &mut reservation_order,
            &mut blocking_targets,
            &mut nested_blocking,
        );
        if nested_blocking {
            nested_blocking_clients.insert(program.handler.clone());
        }
    }
    let reservation_cycle = find_cycle(&reservation_order);
    DeadlockAssessment {
        reservation_order,
        reservation_cycle,
        blocking_targets,
        nested_blocking_clients,
    }
}

fn walk(
    stmts: &[Stmt],
    held: &mut Vec<Vec<HandlerName>>,
    order: &mut HandlerGraph,
    blocking: &mut BTreeSet<HandlerName>,
    nested_blocking: &mut bool,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Separate { targets, body } | Stmt::SeparateRead { targets, body } => {
                // A shared-read reservation still orders its targets after
                // everything already held: the writer-preferring gate blocks
                // the reader until exclusive holders clear, so for the
                // reservation-order argument it behaves like a lock.
                for outer in held.iter().flatten() {
                    for inner in targets {
                        if outer != inner {
                            order
                                .entry(outer.clone())
                                .or_default()
                                .insert(inner.clone());
                        }
                    }
                }
                held.push(targets.clone());
                walk(body, held, order, blocking, nested_blocking);
                held.pop();
            }
            Stmt::Query { target, .. } | Stmt::Wait(target) => {
                // A query blocks the client; it is the ingredient that turns
                // reservation structure into a real deadlock under SCOOP/Qs.
                if !held.is_empty() {
                    blocking.insert(target.clone());
                }
                // Blocking while holding nested reservations from at least two
                // separate blocks spanning more than one handler.
                let distinct: BTreeSet<&HandlerName> = held.iter().flatten().collect();
                if held.len() >= 2 && distinct.len() >= 2 {
                    *nested_blocking = true;
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Capacity-aware analysis: bounded-mailbox blocking edges
// ---------------------------------------------------------------------------

/// The kind of a blocking edge in the capacity-aware wait-for analysis.
///
/// Ordered by "strength": when two statements induce the same `a → b` edge
/// with different kinds, the smaller (stronger) kind wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitEdgeKind {
    /// A blocking query: the client waits for the handler to serve it (the
    /// only blocking edge of the unbounded §2.5 model).
    Query,
    /// A bounded-mailbox push that can block: within one separate block the
    /// client logs at least `capacity` calls onto the target without an
    /// intervening (mailbox-draining) query, so the block can hit
    /// backpressure.  Never present in the unbounded analysis.
    BoundedMailbox,
    /// A shared-read acquisition: entering a `separate read` block waits for
    /// active (and, gate preference being writer-first, pending) exclusive
    /// reservations on the target to clear.  Mirrors the runtime monitor's
    /// read-wait edge.
    ReadWait,
    /// The reader-hold side: while a `separate read` block is open and its
    /// client can stall on *another* handler, exclusive acquisitions of the
    /// read-held target wait for the reader to release.  Mirrors the runtime
    /// monitor's writer-wait edge.
    WriterWait,
    /// The handler side: while a client's single-handler separate block is
    /// open, the reserved handler is committed to it and cannot serve anyone
    /// else (the runtime detector's `Serving` edge).  Atomic multi-handler
    /// blocks (§2.4) are excluded — their registration orders every handler
    /// of the set consistently, which is exactly what rules the circular
    /// commitment out.
    OpenBlock,
}

impl WaitEdgeKind {
    /// Short label used in reports and tests.
    pub fn label(self) -> &'static str {
        match self {
            WaitEdgeKind::Query => "query",
            WaitEdgeKind::BoundedMailbox => "bounded-mailbox",
            WaitEdgeKind::ReadWait => "read-wait",
            WaitEdgeKind::WriterWait => "writer-wait",
            WaitEdgeKind::OpenBlock => "open-block",
        }
    }
}

/// A directed graph over handler names whose edges carry a [`WaitEdgeKind`].
pub type LabeledHandlerGraph = BTreeMap<HandlerName, BTreeMap<HandlerName, WaitEdgeKind>>;

/// Verdict of the capacity-aware analysis; see
/// [`assess_with_mailbox_capacity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedAssessment {
    /// The mailbox bound the programs were assessed under (`None` =
    /// unbounded, the paper's semantics).
    pub capacity: Option<usize>,
    /// The potential wait-for graph: client-blocking edges (queries, and —
    /// under a bound — calls that can hit backpressure) plus handler-side
    /// open-block commitments.
    pub wait_graph: LabeledHandlerGraph,
    /// A cycle in that graph, if any: each element is a node together with
    /// the kind of the edge it follows to the next node (cyclically).
    pub cycle: Option<Vec<(HandlerName, WaitEdgeKind)>>,
}

impl BoundedAssessment {
    /// Whether these programs can deadlock under SCOOP/Qs with this mailbox
    /// bound.  Like the unbounded analysis, this is a *necessary-condition*
    /// check: "not possible" is definitive, "possible" is a conservative
    /// flag (the analysis cannot count runtime bursts, so any block that
    /// reaches the capacity is treated as able to exceed it).
    pub fn deadlock_possible(&self) -> bool {
        self.cycle.is_some()
    }

    /// Whether the flagged cycle depends on a bounded-mailbox edge — i.e.
    /// the topology is *only safe unbounded* and the bound is what makes it
    /// deadlock-prone.
    pub fn bounded_edges_on_cycle(&self) -> bool {
        self.cycle.as_ref().is_some_and(|cycle| {
            cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::BoundedMailbox)
        })
    }
}

/// Inserts `from → to` with `kind`, keeping the stronger kind on duplicate
/// edges.
fn insert_edge(
    graph: &mut LabeledHandlerGraph,
    from: &HandlerName,
    to: &HandlerName,
    kind: WaitEdgeKind,
) {
    let slot = graph
        .entry(from.clone())
        .or_default()
        .entry(to.clone())
        .or_insert(kind);
    if kind < *slot {
        *slot = kind;
    }
}

/// Runs the capacity-aware deadlock analysis: like
/// [`assess_reservation_order`], but modelling the blocking edges a bounded
/// mailbox introduces.
///
/// With `capacity = None` the graph contains only query edges and open-block
/// commitments, and a cycle reproduces the §2.5 verdict (queries inside
/// inconsistently-served blocks).  With a bound, every separate block that
/// logs `capacity` or more calls onto one target (without an intervening
/// query on that target, which drains the mailbox) additionally contributes
/// a [`WaitEdgeKind::BoundedMailbox`] edge — flagging topologies, like
/// Fig. 6 without queries at capacity 1, that are only safe unbounded.
///
/// One refinement keeps the obvious safe pattern out: a client blocking on
/// the handler of its *only* open block on that handler resolves by
/// construction (the handler is committed to precisely the queue the wait
/// goes through), so the immediate bounce `c → t → c` is not counted as a
/// cycle for such pairs.  A client with *two* open blocks on the same
/// handler (nested re-reservation) genuinely self-deadlocks under
/// queue-of-queues — the inner queue waits behind the outer forever — and
/// stays flagged.
pub fn assess_with_mailbox_capacity(
    programs: &[Program],
    capacity: Option<usize>,
) -> BoundedAssessment {
    let mut graph = LabeledHandlerGraph::new();
    // Client-blocking (client, target) pairs; the flag records whether any
    // blocking site had two or more open blocks on the target (a genuine
    // self-deadlock rather than the benign single-block bounce).
    let mut pairs: BTreeMap<(HandlerName, HandlerName), bool> = BTreeMap::new();
    for program in programs {
        let mut open_blocks: Vec<OpenBlock> = Vec::new();
        walk_bounded(
            &program.body,
            &program.handler,
            capacity,
            &mut open_blocks,
            &mut graph,
            &mut pairs,
        );
    }
    let benign: BTreeSet<(HandlerName, HandlerName)> = pairs
        .into_iter()
        .filter_map(|(pair, genuine)| (!genuine).then_some(pair))
        .collect();
    let cycle = find_nonbenign_cycle(&graph, &benign);
    BoundedAssessment {
        capacity,
        wait_graph: graph,
        cycle,
    }
}

/// One open separate block during the bounded walk: its reserved targets,
/// whether the reservation is shared-read, per-target call counts since the
/// last mailbox-draining query, and the targets of client-blocking sites
/// anywhere inside its body.
struct OpenBlock {
    targets: Vec<HandlerName>,
    read: bool,
    calls_since_drain: BTreeMap<HandlerName, usize>,
    blocking_inside: BTreeSet<HandlerName>,
}

/// Records a client-blocking site `client → target` and whether it is a
/// nested re-reservation (two or more open blocks on `target`).
fn note_blocking_pair(
    pairs: &mut BTreeMap<(HandlerName, HandlerName), bool>,
    open_blocks: &[OpenBlock],
    client: &HandlerName,
    target: &HandlerName,
) {
    let open_on_target = open_blocks
        .iter()
        .filter(|block| block.targets.contains(target))
        .count();
    let genuine = pairs
        .entry((client.clone(), target.clone()))
        .or_insert(false);
    *genuine |= open_on_target >= 2;
}

fn walk_bounded(
    stmts: &[Stmt],
    client: &HandlerName,
    capacity: Option<usize>,
    open_blocks: &mut Vec<OpenBlock>,
    graph: &mut LabeledHandlerGraph,
    pairs: &mut BTreeMap<(HandlerName, HandlerName), bool>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Separate { targets, body } => {
                open_blocks.push(OpenBlock {
                    targets: targets.clone(),
                    read: false,
                    calls_since_drain: BTreeMap::new(),
                    blocking_inside: BTreeSet::new(),
                });
                walk_bounded(body, client, capacity, open_blocks, graph, pairs);
                let block = open_blocks.pop().expect("pushed above");
                // Handler-side commitment: a single-handler block pins the
                // reserved handler to this client until END — but that only
                // matters if the client can *block* while the block is open
                // on some other handler (delaying the END indefinitely);
                // blocking on the reserved handler itself is the bounce the
                // benign-pair filter already resolves.  Atomic multi-handler
                // registrations (§2.4) are excluded outright: their
                // registration orders every handler of the set consistently,
                // which rules the circular commitment out.
                if let [target] = block.targets.as_slice() {
                    // Blocking on the reserved handler itself only stalls the
                    // END when the client re-reserved it in a nested block
                    // (the genuine pair case); otherwise the commitment
                    // resolves the wait.
                    let self_block_genuine = pairs
                        .get(&(client.clone(), target.clone()))
                        .copied()
                        .unwrap_or(false);
                    let can_stall_end = self_block_genuine
                        || block
                            .blocking_inside
                            .iter()
                            .any(|blocked_on| blocked_on != target);
                    if target != client && can_stall_end {
                        insert_edge(graph, target, client, WaitEdgeKind::OpenBlock);
                    }
                }
            }
            Stmt::SeparateRead { targets, body } => {
                // Acquiring the writer-preferring read gate blocks the client
                // until exclusive holders (and queued writers) clear: a
                // client-blocking read-wait edge per target, visible to every
                // enclosing block as a stall site.
                for target in targets {
                    if target != client {
                        insert_edge(graph, client, target, WaitEdgeKind::ReadWait);
                        note_blocking_pair(pairs, open_blocks, client, target);
                        for block in open_blocks.iter_mut() {
                            block.blocking_inside.insert(target.clone());
                        }
                    }
                }
                open_blocks.push(OpenBlock {
                    targets: targets.clone(),
                    read: true,
                    calls_since_drain: BTreeMap::new(),
                    blocking_inside: BTreeSet::new(),
                });
                walk_bounded(body, client, capacity, open_blocks, graph, pairs);
                let block = open_blocks.pop().expect("pushed above");
                // Reader-hold commitment: while the read block is open,
                // exclusive acquisitions of its targets wait for this client.
                // Like the open-block edge, that only matters if the client
                // can stall inside the block on some *other* handler —
                // delaying the release indefinitely.  Unlike exclusive
                // blocks this applies per target even for multi-handler read
                // blocks: readers coexist, so the gate acquisition is not an
                // atomic consistent ordering, and each held gate stalls its
                // writers independently.
                for target in &block.targets {
                    let can_stall_release = block
                        .blocking_inside
                        .iter()
                        .any(|blocked_on| !block.targets.contains(blocked_on));
                    if target != client && can_stall_release {
                        insert_edge(graph, target, client, WaitEdgeKind::WriterWait);
                    }
                }
            }
            Stmt::Call { target, .. } => {
                // The call logs into the private queue of the innermost
                // block reserving `target`; that queue is fresh per block,
                // so only the in-block call count matters.
                let saturates = if let Some(block) = open_blocks
                    .iter_mut()
                    .rev()
                    .find(|block| block.targets.contains(target))
                {
                    let count = block.calls_since_drain.entry(target.clone()).or_insert(0);
                    *count += 1;
                    capacity.is_some_and(|capacity| *count >= capacity)
                } else {
                    false
                };
                if saturates && target != client {
                    insert_edge(graph, client, target, WaitEdgeKind::BoundedMailbox);
                    note_blocking_pair(pairs, open_blocks, client, target);
                    for block in open_blocks.iter_mut() {
                        block.blocking_inside.insert(target.clone());
                    }
                }
            }
            Stmt::Query { target, .. } | Stmt::Wait(target) => {
                // A query on a read-held target executes on the client
                // against the shared state — no queue crossing, no wait, no
                // blocking edge (the whole point of the read downgrade).
                let read_held = open_blocks
                    .iter()
                    .any(|block| block.read && block.targets.contains(target));
                if read_held {
                    continue;
                }
                if target != client {
                    insert_edge(graph, client, target, WaitEdgeKind::Query);
                    note_blocking_pair(pairs, open_blocks, client, target);
                    for block in open_blocks.iter_mut() {
                        block.blocking_inside.insert(target.clone());
                    }
                }
                // A completed query implies the handler drained this
                // client's mailbox: the backpressure counter restarts.
                if let Some(block) = open_blocks
                    .iter_mut()
                    .rev()
                    .find(|block| block.targets.contains(target))
                {
                    block.calls_since_drain.insert(target.clone(), 0);
                }
            }
            _ => {}
        }
    }
}

/// Converts a capacity-aware assessment into compiler diagnostics, so the
/// static deadlock verdict reports through the same structured surface as
/// the effect lints of `qs-compiler`/`qs-lang`.
///
/// A flagged cycle becomes one `QS-W002` warning spelling the cycle out with
/// the same edge-kind labels the runtime monitor uses, plus a `QS-W002` note
/// when the cycle exists *only* because of the mailbox bound (the topology
/// is safe unbounded).  A clean assessment produces no diagnostics.
pub fn assessment_diagnostics(assessment: &BoundedAssessment) -> Vec<Diagnostic> {
    let Some(cycle) = &assessment.cycle else {
        return Vec::new();
    };
    let mut rendered = String::new();
    for (node, kind) in cycle {
        rendered.push_str(node);
        rendered.push_str(" --");
        rendered.push_str(kind.label());
        rendered.push_str("--> ");
    }
    rendered.push_str(&cycle[0].0);
    let mut diagnostics = vec![Diagnostic::warning(
        "QS-W002",
        format!("static deadlock hazard: potential wait cycle {rendered}"),
    )];
    if assessment.bounded_edges_on_cycle() {
        let capacity = assessment.capacity.expect("bounded edge implies a bound");
        diagnostics.push(Diagnostic::note(
            "QS-W002",
            format!(
                "the cycle depends on bounded-mailbox backpressure \
                 (capacity {capacity}); unbounded mailboxes are safe here"
            ),
        ));
    }
    diagnostics
}

/// Finds a simple cycle in the labeled graph, skipping the benign immediate
/// bounce `c --[query/push]--> t --[open-block]--> c` for pairs in
/// `benign` (see [`assess_with_mailbox_capacity`]).  Returns each node with
/// the kind of the edge it follows, rotated so the smallest node is first.
fn find_nonbenign_cycle(
    graph: &LabeledHandlerGraph,
    benign: &BTreeSet<(HandlerName, HandlerName)>,
) -> Option<Vec<(HandlerName, WaitEdgeKind)>> {
    /// The benign bounce, checked on a *closed* cycle so it is independent
    /// of which node the DFS happened to start from: a 2-cycle pairing a
    /// client-blocking edge `c → t` with the open-block commitment `t → c`
    /// for a single-block (benign) pair resolves by construction and is not
    /// a deadlock.
    fn is_benign_bounce(
        cycle: &[(HandlerName, WaitEdgeKind)],
        benign: &BTreeSet<(HandlerName, HandlerName)>,
    ) -> bool {
        let [(a, a_kind), (b, b_kind)] = cycle else {
            return false;
        };
        // Commitment edges are the handler-side kinds: the exclusive
        // open-block pin and the reader-hold writer-wait.  A client edge
        // bounced straight back by its own commitment (the reservation the
        // wait itself goes through / the gate the client already acquired)
        // resolves by construction for single-block pairs.
        let is_commitment =
            |kind: WaitEdgeKind| matches!(kind, WaitEdgeKind::OpenBlock | WaitEdgeKind::WriterWait);
        let client_then_commit = |client: &HandlerName,
                                  client_kind: WaitEdgeKind,
                                  target: &HandlerName,
                                  target_kind: WaitEdgeKind| {
            !is_commitment(client_kind)
                && is_commitment(target_kind)
                && benign.contains(&(client.clone(), target.clone()))
        };
        client_then_commit(a, *a_kind, b, *b_kind) || client_then_commit(b, *b_kind, a, *a_kind)
    }

    fn search(
        graph: &LabeledHandlerGraph,
        benign: &BTreeSet<(HandlerName, HandlerName)>,
        start: &HandlerName,
        current: &HandlerName,
        path: &mut Vec<(HandlerName, WaitEdgeKind)>,
        budget: &mut usize,
    ) -> Option<Vec<(HandlerName, WaitEdgeKind)>> {
        let successors = graph.get(current)?;
        for (next, &kind) in successors {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            if next == start {
                let mut cycle = path.clone();
                cycle.push((current.clone(), kind));
                if is_benign_bounce(&cycle, benign) {
                    continue;
                }
                return Some(cycle);
            }
            if path.iter().any(|(node, _)| node == next) {
                continue;
            }
            path.push((current.clone(), kind));
            let found = search(graph, benign, start, next, path, budget);
            path.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }

    // The analysed graphs are program-sized (a handful of nodes), so a
    // simple-path DFS per start node is plenty; the budget is a safety rail
    // against pathological inputs, not a tuning knob.
    let mut budget = 200_000usize;
    for start in graph.keys() {
        let mut path = Vec::new();
        if let Some(mut cycle) = search(graph, benign, start, start, &mut path, &mut budget) {
            if let Some(min_index) = cycle
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.cmp(&b.1 .0))
                .map(|(index, _)| index)
            {
                cycle.rotate_left(min_index);
            }
            return Some(cycle);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{fig6_program, Program, Stmt};
    use crate::explore::{explore_all, random_run};

    #[test]
    fn cycle_detection_finds_simple_cycles() {
        let mut graph: HandlerGraph = BTreeMap::new();
        graph.entry("a".into()).or_default().insert("b".into());
        graph.entry("b".into()).or_default().insert("c".into());
        assert_eq!(find_cycle(&graph), None);
        graph.entry("c".into()).or_default().insert("a".into());
        let cycle = find_cycle(&graph).expect("cycle exists");
        assert_eq!(
            cycle,
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn self_loops_are_cycles() {
        let mut graph: HandlerGraph = BTreeMap::new();
        graph.entry("a".into()).or_default().insert("a".into());
        assert_eq!(find_cycle(&graph), Some(vec!["a".to_string()]));
    }

    #[test]
    fn fig6_without_queries_cannot_deadlock_under_qs() {
        let assessment = assess_reservation_order(&fig6_program(false));
        // The inconsistent reservation order is there …
        assert!(assessment.lock_based_deadlock_possible());
        assert!(assessment.reservation_cycle.is_some());
        // … but without blocking queries SCOOP/Qs cannot deadlock.
        assert!(!assessment.qs_deadlock_possible());

        // Cross-check dynamically: exhaustive exploration finds no deadlock.
        let report = explore_all(fig6_program(false), 200_000, 300, 16);
        assert!(
            report.deadlock_free(),
            "Fig. 6 must be deadlock-free under Qs"
        );
        assert!(report.finished_runs > 0);
    }

    #[test]
    fn fig6_with_queries_can_deadlock_under_qs() {
        let programs = fig6_program(true);
        let assessment = assess_reservation_order(&programs);
        assert!(assessment.lock_based_deadlock_possible());
        assert!(assessment.qs_deadlock_possible());

        // Dynamically, at least one schedule deadlocks.
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(
            !report.deadlock_free(),
            "expected at least one deadlocking schedule"
        );
    }

    #[test]
    fn wait_for_graph_captures_outstanding_queries() {
        // client1 waits on x, which never releases (x is passive with an
        // artificial wait): construct directly to exercise the graph builder.
        let programs = vec![
            Program::passive("x"),
            Program::new("c", vec![Stmt::Wait("x".to_string())]),
        ];
        let config = Configuration::new(programs);
        let graph = wait_for_graph(&config);
        assert_eq!(graph["c"], ["x".to_string()].into_iter().collect());
        assert!(is_deadlocked_now(&config));
    }

    #[test]
    fn straight_line_programs_have_no_reservation_edges() {
        let programs = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::call("x", "f"), Stmt::query("x", "g")],
                )],
            ),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(assessment.reservation_order.is_empty());
        assert!(!assessment.lock_based_deadlock_possible());
        assert!(!assessment.qs_deadlock_possible());
        // And the run really terminates.
        let (outcome, _) = random_run(programs, 7, 500);
        assert_eq!(outcome, crate::explore::RunOutcome::Finished);
    }

    #[test]
    fn consistent_nesting_with_queries_can_still_deadlock_under_qs() {
        // Both clients nest x-then-y.  Under the lock-based semantics the
        // consistent order rules a deadlock out; under SCOOP/Qs nested
        // registrations are not atomic, so the clients can still enqueue in
        // opposite orders on x and y and deadlock once they block on queries.
        let client = |name: &str| {
            Program::new(
                name,
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::separate(
                        "y",
                        vec![Stmt::query("x", "qx"), Stmt::query("y", "qy")],
                    )],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        // Consistent nesting: no reservation-order cycle.
        assert!(!assessment.lock_based_deadlock_possible());
        // But both clients block while holding nested reservations.
        assert!(assessment.qs_deadlock_possible());
        assert_eq!(assessment.nested_blocking_clients.len(), 2);
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(
            !report.deadlock_free(),
            "registration-order inversion deadlock exists"
        );
    }

    #[test]
    fn atomic_multi_reservation_with_queries_is_deadlock_free() {
        // The §2.4 cure: reserve x and y together.  A single multi-handler
        // block does not count as nesting, and exploration confirms there is
        // no deadlock.
        let client = |name: &str| {
            Program::new(
                name,
                vec![Stmt::separate_many(
                    &["x", "y"],
                    vec![Stmt::query("x", "qx"), Stmt::query("y", "qy")],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(!assessment.lock_based_deadlock_possible());
        assert!(!assessment.qs_deadlock_possible());
        assert!(assessment.nested_blocking_clients.is_empty());
        let report = explore_all(programs, 500_000, 300, 16);
        assert!(report.deadlock_free(), "deadlocks: {:?}", report.deadlocks);
    }

    #[test]
    fn fig6_without_queries_is_flagged_only_under_a_tight_bound() {
        let programs = fig6_program(false);
        // The paper's semantics: unbounded mailboxes, calls never block, and
        // without queries there is nothing that can cycle.
        let unbounded = assess_with_mailbox_capacity(&programs, None);
        assert!(!unbounded.deadlock_possible(), "{:?}", unbounded.cycle);
        assert!(!unbounded.bounded_edges_on_cycle());

        // Capacity 1: each client's single call per target can already hit
        // backpressure while both handlers are committed to the *other*
        // client's open block — the cyclic topology is only safe unbounded.
        let tight = assess_with_mailbox_capacity(&programs, Some(1));
        assert!(tight.deadlock_possible());
        let cycle = tight.cycle.clone().expect("cycle");
        assert!(
            cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::BoundedMailbox),
            "the cycle must report the mailbox edge kind: {cycle:?}"
        );
        assert!(
            cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::OpenBlock),
            "… alternating with handler open-block commitments: {cycle:?}"
        );
        assert!(tight.bounded_edges_on_cycle());
        assert_eq!(tight.capacity, Some(1));

        // Capacity 2 clears it: no block logs two calls onto one target, so
        // no push can ever wait for space.
        let roomy = assess_with_mailbox_capacity(&programs, Some(2));
        assert!(!roomy.deadlock_possible(), "{:?}", roomy.cycle);
    }

    #[test]
    fn fig6_with_queries_is_flagged_even_unbounded() {
        let assessment = assess_with_mailbox_capacity(&fig6_program(true), None);
        assert!(assessment.deadlock_possible());
        let cycle = assessment.cycle.expect("cycle");
        assert!(cycle.iter().any(|(_, kind)| *kind == WaitEdgeKind::Query));
        assert!(
            !cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::BoundedMailbox),
            "unbounded: no mailbox edges exist: {cycle:?}"
        );
        assert_eq!(WaitEdgeKind::BoundedMailbox.label(), "bounded-mailbox");
    }

    #[test]
    fn cyclic_logging_ring_is_only_safe_unbounded() {
        // Three handlers logging bursts of two onto the next around a ring —
        // the topology of the runtime's `cyclic_logging` example.
        let node = |name: &str, next: &str| {
            Program::new(
                name,
                vec![Stmt::separate(
                    next,
                    vec![Stmt::call(next, "log"), Stmt::call(next, "log")],
                )],
            )
        };
        let programs = vec![node("a", "b"), node("b", "c"), node("c", "a")];
        assert!(!assess_with_mailbox_capacity(&programs, None).deadlock_possible());
        assert!(!assess_with_mailbox_capacity(&programs, Some(16)).deadlock_possible());
        let tight = assess_with_mailbox_capacity(&programs, Some(2));
        assert!(tight.deadlock_possible());
        let cycle = tight.cycle.expect("cycle");
        assert_eq!(cycle.len(), 3, "pure push ring: {cycle:?}");
        assert!(
            cycle
                .iter()
                .all(|(_, kind)| *kind == WaitEdgeKind::BoundedMailbox),
            "{cycle:?}"
        );
    }

    #[test]
    fn benign_bounce_is_skipped_from_either_rotation() {
        // Regression: the open-block edge `x → c` makes the DFS that starts
        // at `x` close the benign 2-cycle from the other side; the bounce
        // filter must be rotation-independent.  Here `c`'s block on x also
        // queries y (so the x → c commitment edge is emitted), but the only
        // cycle in the graph is the benign single-block bounce c ⇄ x.
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::query("x", "qx"), Stmt::query("y", "qy")],
                )],
            ),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, None);
        assert!(
            !assessment.deadlock_possible(),
            "benign bounce reported as a cycle: {:?}",
            assessment.cycle
        );
        // The commitment edge itself is present — only the bounce is
        // filtered.
        assert_eq!(
            assessment.wait_graph["x"]["c"],
            WaitEdgeKind::OpenBlock,
            "{:?}",
            assessment.wait_graph
        );
    }

    #[test]
    fn single_block_bounce_is_benign_but_nested_rereservation_is_not() {
        // A client saturating / querying the handler of its only open block
        // resolves by construction.
        let safe = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![
                        Stmt::call("x", "f"),
                        Stmt::call("x", "f"),
                        Stmt::query("x", "g"),
                    ],
                )],
            ),
        ];
        assert!(!assess_with_mailbox_capacity(&safe, Some(1)).deadlock_possible());

        // Nested re-reservation of the same handler self-deadlocks under
        // queue-of-queues: the inner private queue waits behind the outer
        // forever.
        let nested = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![
                        Stmt::query("x", "g"),
                        Stmt::separate("x", vec![Stmt::query("x", "g")]),
                    ],
                )],
            ),
        ];
        let assessment = assess_with_mailbox_capacity(&nested, None);
        assert!(
            assessment.deadlock_possible(),
            "{:?}",
            assessment.wait_graph
        );
    }

    #[test]
    fn atomic_multi_reservation_stays_safe_even_bounded() {
        let client = |name: &str| {
            Program::new(
                name,
                vec![Stmt::separate_many(
                    &["x", "y"],
                    vec![
                        Stmt::call("x", "f"),
                        Stmt::call("x", "f"),
                        Stmt::call("y", "g"),
                        Stmt::call("y", "g"),
                        Stmt::query("x", "q"),
                    ],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, Some(1));
        assert!(!assessment.deadlock_possible(), "{:?}", assessment.cycle);
    }

    #[test]
    fn read_held_queries_do_not_block_but_the_gate_acquisition_does() {
        // A pure read block: acquiring the gate is a read-wait, but the
        // queries inside execute client-side and add no blocking edges, so
        // nothing can cycle.
        let programs = vec![
            Program::passive("x"),
            Program::new(
                "r",
                vec![Stmt::separate_read(
                    "x",
                    vec![Stmt::query("x", "at"), Stmt::query("x", "mean")],
                )],
            ),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, None);
        assert_eq!(
            assessment.wait_graph["r"]["x"],
            WaitEdgeKind::ReadWait,
            "{:?}",
            assessment.wait_graph
        );
        // No query edge was recorded (ReadWait would have been overwritten:
        // Query is the stronger kind), and no writer-wait either — the block
        // never stalls on another handler.
        assert!(!assessment.wait_graph.contains_key("x"));
        assert!(!assessment.deadlock_possible(), "{:?}", assessment.cycle);
        assert!(assessment_diagnostics(&assessment).is_empty());
    }

    #[test]
    fn read_block_stalling_elsewhere_commits_a_writer_wait_edge() {
        // The reader holds x's gate while blocking on y: writers on x wait
        // for the reader (writer-wait), but a single such block cannot cycle
        // on its own.
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            Program::new(
                "r",
                vec![Stmt::separate_read("x", vec![Stmt::query("y", "q")])],
            ),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, None);
        assert_eq!(assessment.wait_graph["x"]["r"], WaitEdgeKind::WriterWait);
        assert_eq!(assessment.wait_graph["r"]["y"], WaitEdgeKind::Query);
        assert!(!assessment.deadlock_possible(), "{:?}", assessment.cycle);
    }

    #[test]
    fn crossed_read_blocks_are_flagged_with_read_edge_kinds() {
        // Two readers acquiring each other's held gate in opposite orders:
        // under the writer-preferring gate a pending writer can wedge
        // between a reader's hold and its next acquisition, so the cross
        // wait is a (conservative) hazard.  The cycle must name the same
        // edge kinds as the runtime monitor: read-wait and writer-wait.
        let nested_reader = |name: &str, held: &str, wanted: &str| {
            Program::new(
                name,
                vec![Stmt::separate_read(
                    held,
                    vec![Stmt::separate_read(wanted, vec![])],
                )],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            nested_reader("c1", "x", "y"),
            nested_reader("c2", "y", "x"),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, None);
        assert!(assessment.deadlock_possible());
        let cycle = assessment.cycle.clone().expect("cycle");
        assert_eq!(cycle.len(), 4, "{cycle:?}");
        assert!(
            cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::ReadWait),
            "{cycle:?}"
        );
        assert!(
            cycle
                .iter()
                .any(|(_, kind)| *kind == WaitEdgeKind::WriterWait),
            "{cycle:?}"
        );
        assert_eq!(WaitEdgeKind::ReadWait.label(), "read-wait");
        assert_eq!(WaitEdgeKind::WriterWait.label(), "writer-wait");

        // The unified diagnostics surface reports the cycle as QS-W002 with
        // the runtime monitor's edge labels.
        let diagnostics = assessment_diagnostics(&assessment);
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, "QS-W002");
        assert!(diagnostics[0].message.contains("read-wait"));
        assert!(diagnostics[0].message.contains("writer-wait"));
    }

    #[test]
    fn reader_writer_cross_wait_is_flagged() {
        // A reader holding y's gate while acquiring x, against a writer
        // holding x while querying y: the classic reader/writer cross.
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            Program::new(
                "r",
                vec![Stmt::separate_read(
                    "y",
                    vec![Stmt::separate_read("x", vec![])],
                )],
            ),
            Program::new("w", vec![Stmt::separate("x", vec![Stmt::query("y", "q")])]),
        ];
        let assessment = assess_with_mailbox_capacity(&programs, None);
        assert!(
            assessment.deadlock_possible(),
            "{:?}",
            assessment.wait_graph
        );
        let kinds: BTreeSet<WaitEdgeKind> = assessment
            .cycle
            .expect("cycle")
            .into_iter()
            .map(|(_, kind)| kind)
            .collect();
        assert!(
            kinds.contains(&WaitEdgeKind::ReadWait) || kinds.contains(&WaitEdgeKind::WriterWait),
            "{kinds:?}"
        );
    }

    #[test]
    fn bounded_cycle_diagnostics_note_the_capacity_dependency() {
        let assessment = assess_with_mailbox_capacity(&fig6_program(false), Some(1));
        let diagnostics = assessment_diagnostics(&assessment);
        assert_eq!(diagnostics.len(), 2);
        assert_eq!(diagnostics[0].code, "QS-W002");
        assert!(diagnostics[0].message.contains("bounded-mailbox"));
        assert!(diagnostics[1].message.contains("capacity 1"));
    }

    #[test]
    fn read_reservations_participate_in_the_reservation_order() {
        // The unbounded §2.5 analysis treats the writer-preferring gate as a
        // lock for ordering purposes: crossed read nesting is an
        // inconsistent reservation order.
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            Program::new(
                "c1",
                vec![Stmt::separate_read(
                    "x",
                    vec![Stmt::separate_read("y", vec![Stmt::query("y", "q")])],
                )],
            ),
            Program::new(
                "c2",
                vec![Stmt::separate_read(
                    "y",
                    vec![Stmt::separate_read("x", vec![Stmt::query("x", "q")])],
                )],
            ),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(assessment.lock_based_deadlock_possible());
        assert!(assessment.qs_deadlock_possible());
    }

    #[test]
    fn single_reservation_queries_never_deadlock() {
        let client = |name: &str| {
            Program::new(
                name,
                vec![
                    Stmt::separate("x", vec![Stmt::call("x", "put"), Stmt::query("x", "get")]),
                    Stmt::separate("y", vec![Stmt::query("y", "get")]),
                ],
            )
        };
        let programs = vec![
            Program::passive("x"),
            Program::passive("y"),
            client("c1"),
            client("c2"),
        ];
        let assessment = assess_reservation_order(&programs);
        assert!(!assessment.qs_deadlock_possible());
        assert!(!assessment.blocking_targets.is_empty());
        let report = explore_all(programs, 500_000, 400, 16);
        assert!(report.deadlock_free());
    }
}
