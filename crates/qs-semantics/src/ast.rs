//! Statement syntax of the SCOOP/Qs execution model (§2.3).
//!
//! ```text
//! s ::= separate X s | separate read X s | call(x, f) | query(x, f)
//!     | wait h | release h | end | skip
//! ```
//!
//! `separate`, `separate read`, `call` and `query` model program
//! instructions; `wait`, `release`, `end` and `skip` only arise at runtime.
//! `separate read` is the shared-read extension of the runtime (and the
//! target of the effect-inference pass in `qs-lang`): the block promises to
//! only *query* the reserved handlers, so multiple readers may hold the
//! reservation simultaneously while writers wait.

use std::fmt;

/// Name of a handler (processor).  Handlers are identified by small strings
/// in the model (e.g. `"x"`, `"client1"`).
pub type HandlerName = String;

/// Name of a method (feature) being called; purely symbolic in the model.
pub type Method = String;

/// A statement of the execution model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `separate X s`: reserve every handler in `X`, run the body, then send
    /// each of them `end` (the generalised rule of §2.4; a single-element `X`
    /// is the basic rule of Fig. 3).
    Separate {
        /// Handlers reserved by this block.
        targets: Vec<HandlerName>,
        /// Body of the block.
        body: Vec<Stmt>,
    },
    /// `separate read X s`: reserve every handler in `X` in *shared read*
    /// mode, run the body (which must only query the reserved handlers),
    /// then release them.  Readers coexist; a reader waits for active
    /// writers ([`crate::deadlock::WaitEdgeKind::ReadWait`]) and stalls
    /// later writers while it holds the gate
    /// ([`crate::deadlock::WaitEdgeKind::WriterWait`]).
    SeparateRead {
        /// Handlers reserved in read mode by this block.
        targets: Vec<HandlerName>,
        /// Body of the block (queries only).
        body: Vec<Stmt>,
    },
    /// `call(x, f)`: asynchronously log method `f` on handler `x`.
    Call {
        /// Target handler.
        target: HandlerName,
        /// Logged method.
        method: Method,
    },
    /// `query(x, f)`: synchronously request `f` from handler `x` and wait.
    Query {
        /// Target handler.
        target: HandlerName,
        /// Requested method.
        method: Method,
    },
    /// A local (non-separate) computation executed immediately by the
    /// handler running it (guarantee 1 of §2.2); symbolic.
    Local {
        /// Label used in traces.
        label: Method,
    },
    /// Runtime statement: wait for `release` from the named handler.
    Wait(HandlerName),
    /// Runtime statement: release the named waiting handler.
    Release(HandlerName),
    /// Runtime statement: end of a group of requests.
    End,
    /// Runtime statement: no behaviour.
    Skip,
}

impl Stmt {
    /// Convenience constructor for a single-handler separate block.
    pub fn separate(target: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::Separate {
            targets: vec![target.to_string()],
            body,
        }
    }

    /// Convenience constructor for a multi-handler separate block.
    pub fn separate_many(targets: &[&str], body: Vec<Stmt>) -> Stmt {
        Stmt::Separate {
            targets: targets.iter().map(|t| t.to_string()).collect(),
            body,
        }
    }

    /// Convenience constructor for a single-handler shared-read block.
    pub fn separate_read(target: &str, body: Vec<Stmt>) -> Stmt {
        Stmt::SeparateRead {
            targets: vec![target.to_string()],
            body,
        }
    }

    /// Convenience constructor for a multi-handler shared-read block.
    pub fn separate_read_many(targets: &[&str], body: Vec<Stmt>) -> Stmt {
        Stmt::SeparateRead {
            targets: targets.iter().map(|t| t.to_string()).collect(),
            body,
        }
    }

    /// Convenience constructor for `call(x, f)`.
    pub fn call(target: &str, method: &str) -> Stmt {
        Stmt::Call {
            target: target.to_string(),
            method: method.to_string(),
        }
    }

    /// Convenience constructor for `query(x, f)`.
    pub fn query(target: &str, method: &str) -> Stmt {
        Stmt::Query {
            target: target.to_string(),
            method: method.to_string(),
        }
    }

    /// Convenience constructor for a local computation.
    pub fn local(label: &str) -> Stmt {
        Stmt::Local {
            label: label.to_string(),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Separate { targets, body } => {
                write!(
                    f,
                    "separate {} do {} stmt(s) end",
                    targets.join(" "),
                    body.len()
                )
            }
            Stmt::SeparateRead { targets, body } => {
                write!(
                    f,
                    "separate read {} do {} stmt(s) end",
                    targets.join(" "),
                    body.len()
                )
            }
            Stmt::Call { target, method } => write!(f, "call({target}, {method})"),
            Stmt::Query { target, method } => write!(f, "query({target}, {method})"),
            Stmt::Local { label } => write!(f, "local({label})"),
            Stmt::Wait(h) => write!(f, "wait {h}"),
            Stmt::Release(h) => write!(f, "release {h}"),
            Stmt::End => write!(f, "end"),
            Stmt::Skip => write!(f, "skip"),
        }
    }
}

/// A named program: the statement list a handler starts with.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Handler executing this program.
    pub handler: HandlerName,
    /// Statements executed in sequence.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Creates a program for `handler` with the given statements.
    pub fn new(handler: &str, body: Vec<Stmt>) -> Self {
        Program {
            handler: handler.to_string(),
            body,
        }
    }

    /// Creates a passive handler (a supplier that only ever reacts to
    /// requests), i.e. a program consisting of `skip`.
    pub fn passive(handler: &str) -> Self {
        Program {
            handler: handler.to_string(),
            body: Vec::new(),
        }
    }
}

/// Builds the two-client program of Fig. 1 of the paper, used in tests to
/// check the allowed interleavings on handler `x`.
pub fn fig1_program() -> Vec<Program> {
    vec![
        Program::passive("x"),
        Program::new(
            "t1",
            vec![Stmt::separate(
                "x",
                vec![
                    Stmt::call("x", "foo"),
                    Stmt::local("long_comp"),
                    Stmt::call("x", "bar"),
                ],
            )],
        ),
        Program::new(
            "t2",
            vec![Stmt::separate(
                "x",
                vec![
                    Stmt::call("x", "bar"),
                    Stmt::local("short_comp"),
                    Stmt::query("x", "baz"),
                ],
            )],
        ),
    ]
}

/// Builds the multi-reservation colouring program of Fig. 5.
pub fn fig5_program() -> Vec<Program> {
    vec![
        Program::passive("x"),
        Program::passive("y"),
        Program::new(
            "t1",
            vec![Stmt::separate_many(
                &["x", "y"],
                vec![Stmt::call("x", "set_red"), Stmt::call("y", "set_red")],
            )],
        ),
        Program::new(
            "t2",
            vec![Stmt::separate_many(
                &["x", "y"],
                vec![Stmt::call("x", "set_blue"), Stmt::call("y", "set_blue")],
            )],
        ),
    ]
}

/// Builds the nested-reservation program of Fig. 6; with `with_queries` each
/// client additionally performs a query in its innermost block, which
/// reintroduces potential deadlock (§2.5).
///
/// Without queries the program is deadlock-free under SCOOP/Qs because the
/// reservations are non-blocking.  With queries, each client blocks on the
/// handler it reserved in its *inner* block; a schedule in which each
/// handler's queue-of-queues has the *other* client's still-open private
/// queue at its head produces a circular wait (client 1 waits on `y` whose
/// head is client 2's open queue, client 2 waits on `x` whose head is client
/// 1's open queue).
pub fn fig6_program(with_queries: bool) -> Vec<Program> {
    let inner = |outer: &str, inner_target: &str| {
        let mut body = vec![Stmt::call("x", "foo"), Stmt::call("y", "bar")];
        let _ = outer;
        if with_queries {
            body.push(Stmt::query(inner_target, "q"));
        }
        vec![Stmt::separate(inner_target, body)]
    };
    vec![
        Program::passive("x"),
        Program::passive("y"),
        Program::new("c1", vec![Stmt::separate("x", inner("x", "y"))]),
        Program::new("c2", vec![Stmt::separate("y", inner("y", "x"))]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_shapes() {
        let s = Stmt::separate("x", vec![Stmt::call("x", "f")]);
        match s {
            Stmt::Separate { targets, body } => {
                assert_eq!(targets, vec!["x"]);
                assert_eq!(body.len(), 1);
            }
            _ => panic!("expected separate"),
        }
        assert_eq!(Stmt::call("x", "f").to_string(), "call(x, f)");
        assert_eq!(Stmt::query("y", "g").to_string(), "query(y, g)");
        assert_eq!(Stmt::Skip.to_string(), "skip");
    }

    #[test]
    fn read_constructors_build_expected_shapes() {
        let s = Stmt::separate_read("x", vec![Stmt::query("x", "f")]);
        match &s {
            Stmt::SeparateRead { targets, body } => {
                assert_eq!(targets, &vec!["x".to_string()]);
                assert_eq!(body.len(), 1);
            }
            _ => panic!("expected separate read"),
        }
        assert_eq!(s.to_string(), "separate read x do 1 stmt(s) end");
        let m = Stmt::separate_read_many(&["x", "y"], vec![]);
        assert_eq!(m.to_string(), "separate read x y do 0 stmt(s) end");
    }

    #[test]
    fn example_programs_have_expected_participants() {
        assert_eq!(fig1_program().len(), 3);
        assert_eq!(fig5_program().len(), 4);
        assert_eq!(fig6_program(false).len(), 4);
        let with_q = fig6_program(true);
        // The inner blocks contain a query when requested.
        let c1 = &with_q[2];
        let text = format!("{:?}", c1);
        assert!(text.contains("Query"));
    }

    #[test]
    fn programs_clone_and_compare() {
        let p = Program::new("h", vec![Stmt::separate("x", vec![Stmt::call("x", "f")])]);
        let q = p.clone();
        assert_eq!(p, q);
        assert_ne!(p, Program::passive("h"));
    }
}
