//! Configurations and transition rules of the SCOOP/Qs operational semantics
//! (Fig. 3 of the paper, plus the generalised `separate` rule of §2.4).
//!
//! A configuration is a parallel composition of handler triples
//! `(h, q_h, s)`: the handler's name, its *request queue* (a queue of
//! handler-tagged private queues — the queue-of-queues) and the program it is
//! currently executing.  The transition rules are implemented as an
//! `enabled_transitions` / `apply` pair so that schedulers (deterministic,
//! random, exhaustive) can drive the system and properties can be checked on
//! the produced traces.

use std::collections::{BTreeMap, VecDeque};

use crate::ast::{HandlerName, Method, Program, Stmt};
use crate::trace::Event;

/// The reserved method name that models the `end` feature sent by the
/// `separate` rule (`call(x, end)` in the paper).
pub const END_METHOD: &str = "end";

/// Entries of a private queue: the actions a client logs on a handler.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// A logged feature call.
    Invoke(Method),
    /// The END marker terminating the client's group of requests.
    End,
    /// `release h`: the second half of a query's wait/release pair.
    Release(HandlerName),
}

/// One handler triple `(h, q_h, s)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HandlerState {
    /// The handler's name.
    pub name: HandlerName,
    /// The request queue: a FIFO of `(client, private queue)` pairs.  Lookup
    /// and update act on the *last* occurrence of a client, insertion and
    /// removal are FIFO (a queue of queues, §2.3).
    pub queue: Vec<(HandlerName, VecDeque<Action>)>,
    /// The program being executed; the front element is the current
    /// statement (sequential composition is kept flattened).
    pub program: VecDeque<Stmt>,
}

impl HandlerState {
    fn new(program: Program) -> Self {
        HandlerState {
            name: program.handler,
            program: program.body.into(),
            queue: Vec::new(),
        }
    }

    /// Appends an action to the *last* private queue belonging to `client`,
    /// which is the one that client is currently filling (§2.3: "both lookup
    /// and updating work on the last occurrence").
    fn log_for_client(&mut self, client: &str, action: Action) -> bool {
        if let Some((_, private)) = self
            .queue
            .iter_mut()
            .rev()
            .find(|(owner, _)| owner == client)
        {
            private.push_back(action);
            true
        } else {
            false
        }
    }

    /// Registers a fresh, empty private queue for `client` (the `separate`
    /// rule's `q_x + [h ↦ []]`).
    fn register_client(&mut self, client: &str) {
        self.queue.push((client.to_string(), VecDeque::new()));
    }

    /// Returns `true` if this handler is idle (no program to execute).
    pub fn is_idle(&self) -> bool {
        self.program.is_empty()
    }
}

/// A transition of the system; one application of an inference rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transition {
    /// The handler executes the statement at the front of its program
    /// (covers the `separate`, `call`, `query`, `seqSkip` rules as well as
    /// executing dequeued actions and the `end` rule).
    Execute(HandlerName),
    /// The `run` rule: an idle handler dequeues the next action from the
    /// private queue at the head of its request queue.
    Run(HandlerName),
    /// The `sync` rule: `waiter` is blocked on `wait releaser` and
    /// `releaser`'s current statement is `release waiter`; both step.
    Sync {
        /// Handler executing `wait`.
        waiter: HandlerName,
        /// Handler executing `release`.
        releaser: HandlerName,
    },
}

/// Result of asking the configuration for a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// A transition was applied; the events it produced.
    Stepped(Vec<Event>),
    /// No transition is enabled and every program has terminated.
    Finished,
    /// No transition is enabled but some handler still has work: a deadlock.
    Deadlock(Vec<HandlerName>),
}

/// A parallel composition of handlers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    /// Handlers by name (ordered map so configurations hash deterministically).
    pub handlers: BTreeMap<HandlerName, HandlerState>,
}

impl Configuration {
    /// Builds the initial configuration from a set of programs.
    pub fn new(programs: Vec<Program>) -> Self {
        let mut handlers = BTreeMap::new();
        for program in programs {
            let state = HandlerState::new(program);
            handlers.insert(state.name.clone(), state);
        }
        Configuration { handlers }
    }

    /// Returns every transition currently enabled.
    pub fn enabled_transitions(&self) -> Vec<Transition> {
        let mut enabled = Vec::new();
        for (name, handler) in &self.handlers {
            match handler.program.front() {
                None => {
                    // run rule: idle handler with a non-empty private queue at
                    // the head of its request queue.
                    if let Some((_, private)) = handler.queue.first() {
                        if !private.is_empty() {
                            enabled.push(Transition::Run(name.clone()));
                        }
                    }
                }
                Some(Stmt::Wait(target)) => {
                    // sync rule: the target's current statement must be
                    // `release <us>`.
                    if let Some(target_state) = self.handlers.get(target) {
                        if matches!(target_state.program.front(),
                            Some(Stmt::Release(who)) if who == name)
                        {
                            enabled.push(Transition::Sync {
                                waiter: name.clone(),
                                releaser: target.clone(),
                            });
                        }
                    }
                }
                Some(Stmt::Release(_)) => {
                    // Only progresses jointly through a Sync transition, which
                    // is generated from the waiter's side above.
                }
                Some(Stmt::End) => {
                    // end rule: requires the head of the request queue to be
                    // an (exhausted) empty private queue.
                    if matches!(handler.queue.first(), Some((_, private)) if private.is_empty()) {
                        enabled.push(Transition::Execute(name.clone()));
                    }
                }
                Some(Stmt::Separate { targets, .. }) | Some(Stmt::SeparateRead { targets, .. }) => {
                    // separate rule: purely asynchronous, always enabled as
                    // long as all targets exist.  The shared-read variant is
                    // modelled conservatively as an exclusive registration:
                    // the abstract machine over-approximates the schedules of
                    // the runtime's reader gate (a reader admits strictly
                    // more interleavings, never fewer orderings per queue).
                    if targets.iter().all(|t| self.handlers.contains_key(t)) {
                        enabled.push(Transition::Execute(name.clone()));
                    }
                }
                Some(Stmt::Call { target, .. }) | Some(Stmt::Query { target, .. }) => {
                    // call/query rules: the client must have a registered
                    // private queue on the target.
                    if self
                        .handlers
                        .get(target)
                        .map(|t| t.queue.iter().any(|(owner, _)| owner == name))
                        .unwrap_or(false)
                    {
                        enabled.push(Transition::Execute(name.clone()));
                    }
                }
                Some(Stmt::Local { .. }) | Some(Stmt::Skip) => {
                    enabled.push(Transition::Execute(name.clone()));
                }
            }
        }
        enabled
    }

    /// Applies `transition`, returning the events it produced.
    ///
    /// Panics if the transition is not currently enabled (schedulers must
    /// only apply transitions obtained from [`enabled_transitions`]).
    pub fn apply(&mut self, transition: &Transition) -> Vec<Event> {
        match transition {
            Transition::Run(handler) => self.apply_run(handler),
            Transition::Sync { waiter, releaser } => self.apply_sync(waiter, releaser),
            Transition::Execute(handler) => self.apply_execute(handler),
        }
    }

    fn apply_run(&mut self, name: &str) -> Vec<Event> {
        let handler = self.handlers.get_mut(name).expect("handler exists");
        assert!(handler.is_idle(), "run rule requires an idle handler");
        let (client, private) = handler.queue.first_mut().expect("non-empty request queue");
        let client = client.clone();
        let action = private.pop_front().expect("non-empty private queue");
        let event = Event::Dequeued {
            handler: name.to_string(),
            client: client.clone(),
            action: format!("{action:?}"),
        };
        let stmt = match action {
            Action::Invoke(method) => Stmt::Local { label: method },
            Action::End => Stmt::End,
            Action::Release(h) => Stmt::Release(h),
        };
        handler.program.push_front(stmt);
        let mut events = vec![event];
        // Executing the dequeued Invoke immediately would be a separate
        // Execute step; keep it separate so schedulers control interleaving,
        // but record the dequeue now.
        if let Some(Stmt::Local { label }) = handler.program.front() {
            events.push(Event::Scheduled {
                handler: name.to_string(),
                client,
                method: label.clone(),
            });
        }
        events
    }

    fn apply_sync(&mut self, waiter: &str, releaser: &str) -> Vec<Event> {
        {
            let w = self.handlers.get_mut(waiter).expect("waiter exists");
            assert!(matches!(w.program.front(), Some(Stmt::Wait(t)) if t == releaser));
            w.program.pop_front();
        }
        {
            let r = self.handlers.get_mut(releaser).expect("releaser exists");
            assert!(matches!(r.program.front(), Some(Stmt::Release(t)) if t == waiter));
            r.program.pop_front();
        }
        vec![Event::Synced {
            client: waiter.to_string(),
            handler: releaser.to_string(),
        }]
    }

    fn apply_execute(&mut self, name: &str) -> Vec<Event> {
        // Take the current statement out first to appease the borrow checker;
        // effects on *other* handlers are applied afterwards.
        let stmt = {
            let handler = self.handlers.get_mut(name).expect("handler exists");
            handler.program.pop_front().expect("non-empty program")
        };
        match stmt {
            Stmt::Skip => vec![],
            Stmt::Local { label } => {
                // Executed immediately and synchronously (guarantee 1, §2.2).
                vec![Event::Executed {
                    handler: name.to_string(),
                    method: label,
                }]
            }
            Stmt::Separate { targets, body } | Stmt::SeparateRead { targets, body } => {
                // Generalised separate rule: register with every target
                // atomically, then run the body followed by `call(t, end)`
                // for each target.  `separate read` shares this rule: the
                // machine keeps the per-queue orderings and lets the
                // deadlock analysis distinguish the gate semantics.
                for target in &targets {
                    self.handlers
                        .get_mut(target)
                        .expect("target exists")
                        .register_client(name);
                }
                let handler = self.handlers.get_mut(name).expect("handler exists");
                for target in targets.iter().rev() {
                    handler.program.push_front(Stmt::Call {
                        target: target.clone(),
                        method: END_METHOD.to_string(),
                    });
                }
                for stmt in body.into_iter().rev() {
                    handler.program.push_front(stmt);
                }
                vec![Event::Reserved {
                    client: name.to_string(),
                    handlers: targets,
                }]
            }
            Stmt::Call { target, method } => {
                let action = if method == END_METHOD {
                    Action::End
                } else {
                    Action::Invoke(method.clone())
                };
                let logged = self
                    .handlers
                    .get_mut(&target)
                    .expect("target exists")
                    .log_for_client(name, action);
                assert!(logged, "call without a registered private queue");
                vec![Event::Logged {
                    client: name.to_string(),
                    handler: target,
                    method,
                }]
            }
            Stmt::Query { target, method } => {
                // query rule: log the feature plus `release <us>`, then wait.
                let target_state = self.handlers.get_mut(&target).expect("target exists");
                let ok1 = target_state.log_for_client(name, Action::Invoke(method.clone()));
                let ok2 = target_state.log_for_client(name, Action::Release(name.to_string()));
                assert!(ok1 && ok2, "query without a registered private queue");
                let handler = self.handlers.get_mut(name).expect("handler exists");
                handler.program.push_front(Stmt::Wait(target.clone()));
                vec![Event::Logged {
                    client: name.to_string(),
                    handler: target,
                    method,
                }]
            }
            Stmt::End => {
                // end rule: retire the exhausted private queue at the head of
                // the request queue.
                let handler = self.handlers.get_mut(name).expect("handler exists");
                let (client, private) = handler.queue.remove(0);
                assert!(
                    private.is_empty(),
                    "end rule requires an empty private queue"
                );
                vec![Event::QueueRetired {
                    handler: name.to_string(),
                    client,
                }]
            }
            Stmt::Wait(_) | Stmt::Release(_) => {
                unreachable!("wait/release only step through the sync rule")
            }
        }
    }

    /// Attempts one step using the scheduler-chosen index into the enabled
    /// transitions; returns what happened.
    pub fn step_with<F>(&mut self, mut choose: F) -> StepResult
    where
        F: FnMut(&[Transition]) -> usize,
    {
        let enabled = self.enabled_transitions();
        if enabled.is_empty() {
            let stuck: Vec<_> = self
                .handlers
                .values()
                .filter(|h| !h.program.is_empty())
                .map(|h| h.name.clone())
                .collect();
            return if stuck.is_empty() {
                StepResult::Finished
            } else {
                StepResult::Deadlock(stuck)
            };
        }
        let index = choose(&enabled).min(enabled.len() - 1);
        StepResult::Stepped(self.apply(&enabled[index]))
    }

    /// Returns `true` if every handler has an empty program (all client code
    /// has run to completion).
    pub fn all_programs_finished(&self) -> bool {
        self.handlers.values().all(|h| h.program.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{fig1_program, Program, Stmt};

    fn run_to_completion(mut config: Configuration) -> (Configuration, Vec<Event>) {
        let mut events = Vec::new();
        loop {
            match config.step_with(|_| 0) {
                StepResult::Stepped(mut e) => events.append(&mut e),
                StepResult::Finished => return (config, events),
                StepResult::Deadlock(stuck) => panic!("unexpected deadlock: {stuck:?}"),
            }
        }
    }

    #[test]
    fn single_client_logs_and_handler_executes() {
        let programs = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::call("x", "foo"), Stmt::call("x", "bar")],
                )],
            ),
        ];
        let (config, events) = run_to_completion(Configuration::new(programs));
        let executed: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Executed { handler, method } if handler == "x" => Some(method.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(executed, vec!["foo", "bar"]);
        // The private queue was retired by the end rule.
        assert!(config.handlers["x"].queue.is_empty());
    }

    #[test]
    fn query_synchronises_client_and_handler() {
        let programs = vec![
            Program::passive("x"),
            Program::new(
                "c",
                vec![Stmt::separate(
                    "x",
                    vec![Stmt::call("x", "put"), Stmt::query("x", "get")],
                )],
            ),
        ];
        let (_, events) = run_to_completion(Configuration::new(programs));
        assert!(events.iter().any(|e| matches!(e, Event::Synced { .. })));
        // The query's feature executes on the handler before the sync.
        let exec_pos = events
            .iter()
            .position(|e| matches!(e, Event::Executed { method, .. } if method == "get"))
            .expect("query feature executed");
        let sync_pos = events
            .iter()
            .position(|e| matches!(e, Event::Synced { .. }))
            .unwrap();
        assert!(exec_pos < sync_pos);
    }

    #[test]
    fn fig1_first_come_first_served_schedule() {
        let (_, events) = run_to_completion(Configuration::new(fig1_program()));
        let on_x: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Executed { handler, method } if handler == "x" => Some(method.as_str()),
                _ => None,
            })
            .collect();
        // Under any schedule the projection on x must be one of the two
        // allowed interleavings of §2.1.
        assert!(
            on_x == ["foo", "bar", "bar", "baz"] || on_x == ["bar", "baz", "foo", "bar"],
            "disallowed interleaving {on_x:?}"
        );
    }

    #[test]
    fn calls_without_reservation_are_not_enabled() {
        let programs = vec![
            Program::passive("x"),
            Program::new("c", vec![Stmt::call("x", "foo")]),
        ];
        let config = Configuration::new(programs);
        // The only handler with a program is `c`, but its call is not enabled
        // because it never reserved `x`.
        assert!(config.enabled_transitions().is_empty());
    }

    #[test]
    fn deadlock_is_reported_for_unmatched_wait() {
        let programs = vec![
            Program::passive("x"),
            Program::new("c", vec![Stmt::Wait("x".to_string())]),
        ];
        let mut config = Configuration::new(programs);
        match config.step_with(|_| 0) {
            StepResult::Deadlock(stuck) => assert_eq!(stuck, vec!["c".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
