//! A small software transactional memory (the Haskell-STM stand-in).
//!
//! The paper's Haskell benchmarks use GHC's STM for the coordination tasks;
//! "Haskell tends to perform the worst, which is likely due to the use of
//! STM, which incurs an extra level of bookkeeping on every operation"
//! (§5.3).  To reproduce that data point on equal footing we implement a
//! small TL2-style STM from scratch:
//!
//! * every [`TVar`] carries a version stamp;
//! * a transaction records a read set (variable, seen version) and buffers
//!   writes;
//! * commit takes a global commit lock, validates the read set and publishes
//!   the writes with fresh version stamps;
//! * [`retry`] aborts the transaction and re-runs it after a short backoff,
//!   giving the blocking behaviour used by the producer/consumer and
//!   condition benchmarks.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use qs_sync::Backoff;

/// Global commit lock + version clock shared by all TVars in the process.
static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(1);
static COMMIT_LOCK: Mutex<()> = Mutex::new(());
static NEXT_TVAR_ID: AtomicU64 = AtomicU64::new(1);

/// Errors terminating a transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmError {
    /// A read or the commit-time validation observed an inconsistent
    /// snapshot; the transaction will be re-executed.
    Conflict,
    /// The transaction called [`retry`]: its preconditions do not hold yet.
    Retry,
}

trait AnyTVar: Send + Sync {
    fn version(&self) -> u64;
    fn store_any(&self, value: Box<dyn Any>, new_version: u64);
}

struct TVarInner<T> {
    id: u64,
    version: AtomicU64,
    value: RwLock<T>,
}

impl<T: Clone + Send + Sync + 'static> AnyTVar for TVarInner<T> {
    fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    fn store_any(&self, value: Box<dyn Any>, new_version: u64) {
        let value = *value.downcast::<T>().expect("write log type matches TVar");
        // The version is updated while holding the value's write lock so that
        // readers (who load the version under the read lock) always see a
        // (value, version) pair that belongs together.
        let mut guard = self.value.write();
        *guard = value;
        self.version.store(new_version, Ordering::Release);
    }
}

/// A transactional variable holding a value of type `T`.
///
/// ```
/// use qs_baselines::stm::{TVar, atomically};
/// let account = TVar::new(100i64);
/// atomically(|tx| {
///     let balance = tx.read(&account)?;
///     tx.write(&account, balance - 30);
///     Ok(())
/// });
/// assert_eq!(account.read_atomic(), 70);
/// ```
pub struct TVar<T> {
    inner: Arc<TVarInner<T>>,
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a new transactional variable.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner {
                id: NEXT_TVAR_ID.fetch_add(1, Ordering::Relaxed),
                version: AtomicU64::new(0),
                value: RwLock::new(value),
            }),
        }
    }

    /// Reads the current value outside of any transaction (a consistent
    /// single-variable snapshot).
    pub fn read_atomic(&self) -> T {
        self.inner.value.read().clone()
    }

    /// Replaces the value outside of any transaction.
    pub fn write_atomic(&self, value: T) {
        let _commit = COMMIT_LOCK.lock();
        // The global clock is only advanced *after* the value is published so
        // that a transaction starting mid-commit cannot adopt a snapshot
        // number that makes the half-finished commit look consistent.
        let version = GLOBAL_CLOCK.load(Ordering::Acquire) + 1;
        let mut guard = self.inner.value.write();
        *guard = value;
        self.inner.version.store(version, Ordering::Release);
        drop(guard);
        GLOBAL_CLOCK.store(version, Ordering::Release);
    }
}

type WriteSet = HashMap<u64, (Arc<dyn AnyTVar>, Box<dyn Any>)>;

/// A running transaction: read set + write buffer.
pub struct Transaction {
    start_version: u64,
    reads: Vec<(Arc<dyn AnyTVar>, u64)>,
    writes: WriteSet,
}

impl Transaction {
    fn new() -> Self {
        Transaction {
            start_version: GLOBAL_CLOCK.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: HashMap::new(),
        }
    }

    /// Reads a [`TVar`] inside the transaction.
    pub fn read<T: Clone + Send + Sync + 'static>(
        &mut self,
        tvar: &TVar<T>,
    ) -> Result<T, StmError> {
        // Reads observe earlier writes of the same transaction.
        if let Some((_, buffered)) = self.writes.get(&tvar.inner.id) {
            let value = buffered
                .downcast_ref::<T>()
                .expect("buffered write type matches TVar")
                .clone();
            return Ok(value);
        }
        // Read (value, version) as a consistent pair under the read lock;
        // committers update both while holding the write lock.
        let (value, version) = {
            let guard = tvar.inner.value.read();
            let version = tvar.inner.version.load(Ordering::Acquire);
            (guard.clone(), version)
        };
        if version > self.start_version {
            // The variable changed after the transaction's snapshot; abort so
            // the caller only ever observes a consistent state (opacity).
            return Err(StmError::Conflict);
        }
        self.reads
            .push((tvar.inner.clone() as Arc<dyn AnyTVar>, version));
        Ok(value)
    }

    /// Buffers a write to a [`TVar`]; it becomes visible only on commit.
    pub fn write<T: Clone + Send + Sync + 'static>(&mut self, tvar: &TVar<T>, value: T) {
        self.writes.insert(
            tvar.inner.id,
            (tvar.inner.clone() as Arc<dyn AnyTVar>, Box::new(value)),
        );
    }

    /// Convenience: read-modify-write.
    pub fn modify<T: Clone + Send + Sync + 'static>(
        &mut self,
        tvar: &TVar<T>,
        f: impl FnOnce(T) -> T,
    ) -> Result<(), StmError> {
        let value = self.read(tvar)?;
        self.write(tvar, f(value));
        Ok(())
    }

    fn commit(self) -> Result<(), StmError> {
        if self.writes.is_empty() {
            // Read-only transactions validated their reads as they went.
            return Ok(());
        }
        let _commit = COMMIT_LOCK.lock();
        // Validate the read set.
        for (tvar, seen_version) in &self.reads {
            if tvar.version() != *seen_version {
                return Err(StmError::Conflict);
            }
        }
        // Publish the write set with a fresh version stamp.  The global clock
        // is advanced only after every write is in place: a reader that
        // starts while this commit is in flight keeps the old snapshot number
        // and will observe version > snapshot on any variable we touched,
        // aborting instead of seeing a torn update.
        let version = GLOBAL_CLOCK.load(Ordering::Acquire) + 1;
        for (_, (tvar, value)) in self.writes {
            tvar.store_any(value, version);
        }
        GLOBAL_CLOCK.store(version, Ordering::Release);
        Ok(())
    }
}

/// Aborts the current transaction attempt because its preconditions do not
/// hold (e.g. a consumer finding an empty queue); [`atomically`] re-runs it.
pub fn retry<T>() -> Result<T, StmError> {
    Err(StmError::Retry)
}

/// Runs `body` as a transaction, retrying on conflicts and on [`retry`] until
/// it commits, and returns its result.
pub fn atomically<R>(mut body: impl FnMut(&mut Transaction) -> Result<R, StmError>) -> R {
    let backoff = Backoff::new();
    loop {
        let mut tx = Transaction::new();
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => return result,
                Err(_) => {
                    backoff.snooze();
                }
            },
            Err(StmError::Conflict) => {
                backoff.spin();
            }
            Err(StmError::Retry) => {
                // Blocking retry: wait a little for another thread to change
                // the world.  GHC waits on the read set; a bounded backoff
                // plus yield approximates that behaviour.
                backoff.snooze();
                if backoff.is_completed() {
                    std::thread::yield_now();
                    backoff.reset();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn single_threaded_read_write() {
        let v = TVar::new(1);
        let seen = atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1);
            tx.read(&v)
        });
        // Reads observe the transaction's own buffered writes.
        assert_eq!(seen, 2);
        assert_eq!(v.read_atomic(), 2);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let counter = TVar::new(0u64);
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let counter = counter.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    atomically(|tx| tx.modify(&counter, |n| n + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.read_atomic(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn multi_variable_invariant_is_preserved() {
        // Transfers between two accounts keep the sum constant under
        // concurrent observation.
        let a = TVar::new(500i64);
        let b = TVar::new(500i64);
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let (a, b) = (a.clone(), b.clone());
                thread::spawn(move || {
                    for i in 0..1_000i64 {
                        let amount = i % 7;
                        atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, x - amount);
                            tx.write(&b, y + amount);
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        let observer = {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                for _ in 0..2_000 {
                    let sum = atomically(|tx| {
                        let x = tx.read(&a)?;
                        let y = tx.read(&b)?;
                        Ok(x + y)
                    });
                    assert_eq!(sum, 1_000, "observed a torn transfer");
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        observer.join().unwrap();
    }

    #[test]
    fn retry_blocks_until_condition_holds() {
        let slot: TVar<Option<u32>> = TVar::new(None);
        let producer = {
            let slot = slot.clone();
            thread::spawn(move || {
                thread::sleep(std::time::Duration::from_millis(30));
                atomically(|tx| {
                    tx.write(&slot, Some(42));
                    Ok(())
                });
            })
        };
        let value = atomically(|tx| match tx.read(&slot)? {
            Some(v) => Ok(v),
            None => retry(),
        });
        assert_eq!(value, 42);
        producer.join().unwrap();
    }

    #[test]
    fn write_atomic_is_visible_to_transactions() {
        let v = TVar::new(10);
        v.write_atomic(11);
        assert_eq!(atomically(|tx| tx.read(&v)), 11);
    }

    #[test]
    fn stm_queue_behaves_fifo_under_concurrency() {
        // A tiny STM queue like the one the prodcons benchmark uses.
        let queue: TVar<Vec<u32>> = TVar::new(Vec::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let queue = queue.clone();
                thread::spawn(move || {
                    for i in 0..500 {
                        atomically(|tx| {
                            tx.modify(&queue, |mut q| {
                                q.push(p * 500 + i);
                                q
                            })
                        });
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let queue = queue.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..500 {
                        let item = atomically(|tx| {
                            let mut q = tx.read(&queue)?;
                            if q.is_empty() {
                                return retry();
                            }
                            let item = q.remove(0);
                            tx.write(&queue, q);
                            Ok(item)
                        });
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2_000).collect::<Vec<_>>());
    }
}
