//! Tasks + channels (the Go stand-in).
//!
//! Go programs in the paper's benchmark suite structure everything as
//! goroutines communicating over channels, with shared memory available but
//! not race-checked (Table 3).  This module provides the same vocabulary:
//! [`go`] spawns a task on a shared work-stealing pool (goroutines are
//! multiplexed onto OS threads, as are our pool workers), and channels come
//! from `crossbeam` (unbounded and bounded/rendezvous, like Go's buffered and
//! unbuffered channels).

use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use qs_exec::ThreadPool;
use qs_sync::WaitGroup;

/// A handle to a group of "goroutines" spawned with [`Spawner::go`]; waiting
/// on it joins them all (like a `sync.WaitGroup`).
pub struct Spawner {
    pool: Arc<ThreadPool>,
    wait_group: Arc<WaitGroup>,
}

impl Spawner {
    /// Creates a spawner multiplexing tasks over `threads` OS threads.
    pub fn new(threads: usize) -> Self {
        Spawner {
            pool: Arc::new(ThreadPool::new(threads)),
            wait_group: Arc::new(WaitGroup::new()),
        }
    }

    /// Spawns a task ("goroutine").
    pub fn go<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.wait_group.add(1);
        let wait_group = Arc::clone(&self.wait_group);
        self.pool.spawn(move || {
            task();
            wait_group.done();
        });
    }

    /// Waits for every spawned task to finish.
    pub fn wait(&self) {
        self.wait_group.wait();
    }

    /// Number of worker threads backing this spawner.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

/// Creates an unbuffered (rendezvous) channel, like `make(chan T)`.
pub fn chan<T>() -> (Sender<T>, Receiver<T>) {
    bounded(0)
}

/// Creates a buffered channel, like `make(chan T, capacity)`.
pub fn chan_buffered<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    bounded(capacity)
}

/// Creates an unbounded channel (no direct Go equivalent, used where the
/// paper's Go code relies on a large buffer).
pub fn chan_unbounded<T>() -> (Sender<T>, Receiver<T>) {
    unbounded()
}

/// Spawns a dedicated OS thread for a long-running "goroutine" — used by the
/// coordination benchmarks where each participant blocks on channel receives
/// for the whole run (threadring, chameneos).
pub fn go_thread<F, R>(task: F) -> std::thread::JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    std::thread::spawn(task)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawner_runs_and_joins_tasks() {
        let spawner = Spawner::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            spawner.go(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        spawner.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert!(spawner.threads() >= 1);
    }

    #[test]
    fn rendezvous_channel_synchronises() {
        let (tx, rx) = chan::<u32>();
        let sender = go_thread(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let received: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(received, (0..10).collect::<Vec<_>>());
        sender.join().unwrap();
    }

    #[test]
    fn buffered_channel_decouples_producer() {
        let (tx, rx) = chan_buffered(8);
        for i in 0..8 {
            tx.send(i).unwrap(); // does not block up to the capacity
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
    }

    #[test]
    fn pipeline_of_goroutines() {
        // A small producer -> transformer -> consumer pipeline, the idiom the
        // Go versions of the Cowichan problems use.
        let spawner = Spawner::new(3);
        let (raw_tx, raw_rx) = chan_unbounded::<u64>();
        let (sq_tx, sq_rx) = chan_unbounded::<u64>();
        spawner.go(move || {
            for i in 0..100 {
                raw_tx.send(i).unwrap();
            }
        });
        spawner.go(move || {
            while let Ok(v) = raw_rx.recv() {
                sq_tx.send(v * v).unwrap();
            }
        });
        let total: u64 = sq_rx.iter().sum();
        spawner.wait();
        assert_eq!(total, (0..100u64).map(|v| v * v).sum());
    }
}
