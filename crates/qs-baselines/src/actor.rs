//! Copying actors with mailboxes (the Erlang stand-in).
//!
//! Erlang processes share nothing: every message is copied into the
//! receiver's heap (Table 3, "Non-shared").  The actors here reproduce that
//! discipline: messages must be `Clone` and are deep-copied on send, each
//! actor owns its state exclusively, and the only way to get data out is to
//! send a message back.

use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Whether the actor keeps running after handling a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorExit {
    /// Keep processing messages.
    Continue,
    /// Stop the actor; its thread terminates after this message.
    Stop,
}

/// A handle for sending messages to an actor.
///
/// Cloning the handle gives another sender to the same mailbox.  Messages are
/// cloned on send to model Erlang's copying semantics even when the sender
/// still holds the original.
pub struct ActorRef<M: Clone + Send + 'static> {
    sender: Sender<M>,
}

impl<M: Clone + Send + 'static> Clone for ActorRef<M> {
    fn clone(&self) -> Self {
        ActorRef {
            sender: self.sender.clone(),
        }
    }
}

impl<M: Clone + Send + 'static> ActorRef<M> {
    /// Sends a message (copying it), ignoring the error if the actor has
    /// already terminated — matching Erlang's fire-and-forget `!`.
    pub fn send(&self, message: &M) {
        let _ = self.sender.send(message.clone());
    }

    /// Sends an owned message (still conceptually a copy: the sender gives
    /// up its reference, the receiver gets its own).
    pub fn send_owned(&self, message: M) {
        let _ = self.sender.send(message);
    }

    /// Returns `true` if the actor's mailbox has been disconnected.
    pub fn is_terminated(&self) -> bool {
        // A crossbeam sender cannot observe disconnection directly without
        // sending; approximate by checking the channel's receiver count via a
        // zero-capacity probe: not available, so report false.  Kept for API
        // completeness; tests rely on join handles instead.
        false
    }
}

/// A running actor: the handle to its mailbox plus its join handle.
pub struct Actor<M: Clone + Send + 'static, S: Send + 'static> {
    /// Mailbox handle.
    pub actor_ref: ActorRef<M>,
    handle: JoinHandle<S>,
}

impl<M: Clone + Send + 'static, S: Send + 'static> Actor<M, S> {
    /// Waits for the actor to stop and returns its final state.
    pub fn join(self) -> S {
        drop(self.actor_ref);
        self.handle.join().expect("actor thread panicked")
    }

    /// A clonable reference to the actor's mailbox.
    pub fn reference(&self) -> ActorRef<M> {
        self.actor_ref.clone()
    }
}

/// Spawns an actor with initial `state`; `behaviour` is invoked for every
/// received message and decides whether to continue.
///
/// The actor terminates when `behaviour` returns [`ActorExit::Stop`] or when
/// every [`ActorRef`] to it has been dropped.
pub fn spawn_actor<M, S, F>(state: S, behaviour: F) -> Actor<M, S>
where
    M: Clone + Send + 'static,
    S: Send + 'static,
    F: FnMut(&mut S, M) -> ActorExit + Send + 'static,
{
    let (sender, receiver): (Sender<M>, Receiver<M>) = unbounded();
    let mut state = state;
    let mut behaviour = behaviour;
    let handle = std::thread::Builder::new()
        .name("qs-actor".to_string())
        .spawn(move || {
            while let Ok(message) = receiver.recv() {
                if behaviour(&mut state, message) == ActorExit::Stop {
                    break;
                }
            }
            state
        })
        .expect("failed to spawn actor thread");
    Actor {
        actor_ref: ActorRef { sender },
        handle,
    }
}

/// A request/reply helper: sends `request` built from a fresh reply channel
/// and waits for the answer — the Erlang `gen_server:call` pattern.
pub fn call_actor<M, R>(target: &ActorRef<M>, make_request: impl FnOnce(Sender<R>) -> M) -> R
where
    M: Clone + Send + 'static,
    R: Send + 'static,
{
    let (reply_tx, reply_rx) = unbounded();
    target.send_owned(make_request(reply_tx));
    reply_rx.recv().expect("actor dropped the reply channel")
}

/// A shared, copyable payload used by workloads that ship whole arrays
/// between actors (Erlang copies the entire term; `Arc` would be cheating, so
/// workloads use `Vec` clones — this alias documents the intent).
pub type CopiedChunk = Vec<u64>;

/// Convenience: spawns `n` worker actors with the same behaviour factory.
pub fn spawn_workers<M, S, F>(n: usize, mut make: impl FnMut(usize) -> (S, F)) -> Vec<Actor<M, S>>
where
    M: Clone + Send + 'static,
    S: Send + 'static,
    F: FnMut(&mut S, M) -> ActorExit + Send + 'static,
{
    (0..n)
        .map(|i| {
            let (state, behaviour) = make(i);
            spawn_actor(state, behaviour)
        })
        .collect()
}

/// An `Arc`-free deep copy helper making the copying cost explicit at call
/// sites that transfer large data between actors.
pub fn deep_copy<T: Clone>(value: &T) -> T {
    value.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Clone)]
    enum CounterMsg {
        Add(u64),
        Get(Sender<u64>),
        Stop,
    }

    #[test]
    fn actor_processes_messages_in_order() {
        let actor = spawn_actor(Vec::new(), |log: &mut Vec<u64>, msg: u64| {
            log.push(msg);
            ActorExit::Continue
        });
        for i in 0..100 {
            actor.actor_ref.send(&i);
        }
        let log = actor.join();
        assert_eq!(log, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn request_reply_round_trip() {
        let actor = spawn_actor(0u64, |state, msg: CounterMsg| match msg {
            CounterMsg::Add(n) => {
                *state += n;
                ActorExit::Continue
            }
            CounterMsg::Get(reply) => {
                let _ = reply.send(*state);
                ActorExit::Continue
            }
            CounterMsg::Stop => ActorExit::Stop,
        });
        for _ in 0..10 {
            actor.actor_ref.send_owned(CounterMsg::Add(3));
        }
        let value = call_actor(&actor.actor_ref, CounterMsg::Get);
        assert_eq!(value, 30);
        actor.actor_ref.send_owned(CounterMsg::Stop);
        assert_eq!(actor.join(), 30);
    }

    #[test]
    fn actor_stops_when_all_refs_drop() {
        let actor = spawn_actor(0usize, |state, _msg: ()| {
            *state += 1;
            ActorExit::Continue
        });
        let extra_ref = actor.reference();
        extra_ref.send(&());
        drop(extra_ref);
        assert_eq!(actor.join(), 1);
    }

    #[test]
    fn messages_are_copied_not_shared() {
        static CLONES: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Payload(u64);
        impl Clone for Payload {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::SeqCst);
                Payload(self.0)
            }
        }
        let actor = spawn_actor(0u64, |state, msg: std::sync::Arc<Payload>| {
            *state += msg.0;
            ActorExit::Continue
        });
        // Even when the caller wraps data in Arc, `send` clones the message
        // value; workloads pass owned Vecs so the clone is a deep copy.
        let payload = std::sync::Arc::new(Payload(5));
        actor.actor_ref.send(&payload);
        drop(payload);
        assert_eq!(actor.join(), 5);

        let direct = spawn_actor(0u64, |state, msg: Payload| {
            *state += msg.0;
            ActorExit::Continue
        });
        direct.actor_ref.send(&Payload(7));
        assert!(CLONES.load(Ordering::SeqCst) >= 1);
        assert_eq!(direct.join(), 7);
    }

    #[test]
    fn spawn_workers_creates_independent_actors() {
        let workers = spawn_workers(4, |i| {
            (i as u64, move |state: &mut u64, msg: u64| {
                *state += msg;
                ActorExit::Continue
            })
        });
        for (n, w) in workers.iter().enumerate() {
            w.actor_ref.send(&(n as u64 * 10));
        }
        let finals: Vec<u64> = workers.into_iter().map(|w| w.join()).collect();
        assert_eq!(finals, vec![0, 11, 22, 33]);
    }

    #[test]
    fn deep_copy_is_a_real_copy() {
        let original = vec![1u64, 2, 3];
        let mut copy = deep_copy(&original);
        copy.push(4);
        assert_eq!(original.len(), 3);
        assert_eq!(copy.len(), 4);
        let a = ActorRef::<u8> {
            sender: unbounded().0,
        };
        assert!(!a.is_terminated());
    }
}
