//! # qs-baselines — the comparison paradigms of §5
//!
//! The paper compares SCOOP/Qs against C++/TBB, Go, Haskell and Erlang
//! (Table 3).  Shipping four foreign toolchains is outside the scope of a
//! Rust reproduction, so this crate provides *paradigm baselines* implemented
//! in Rust that occupy the same points in the design space:
//!
//! | Paper language | Baseline module | Shared memory | Race-free | Mechanism |
//! |---|---|---|---|---|
//! | C++/TBB | [`shared`] | shared | no | threads + locks + parallel loops |
//! | Go | [`channel`] | shared | no | lightweight tasks + channels |
//! | Haskell (STM/Repa) | [`stm`] | transactional | yes | software transactional memory |
//! | Erlang | [`actor`] | none (copied) | yes | copying actors with mailboxes |
//! | SCOOP/Qs | `qs-runtime` | handler-owned | yes | active objects, queue-of-queues |
//!
//! The workloads in `qs-workloads` implement every benchmark of §4/§5 on top
//! of each of these baselines, which is what lets the harness regenerate
//! Tables 4–5 and Figures 18–20 with the same qualitative axes as the paper.

#![warn(missing_docs)]

pub mod actor;
pub mod channel;
pub mod shared;
pub mod stm;

pub use actor::{spawn_actor, ActorExit, ActorRef};
pub use shared::SharedCounter;
pub use stm::{atomically, retry, StmError, TVar, Transaction};

/// The paradigm a benchmark implementation belongs to; used by the harness
/// to label series the way the paper labels languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Threads + shared memory + locks (stands in for C++/TBB).
    Shared,
    /// Tasks + channels (stands in for Go).
    Channel,
    /// Software transactional memory (stands in for Haskell).
    Stm,
    /// Copying actors (stands in for Erlang).
    Actor,
    /// The SCOOP/Qs runtime itself.
    ScoopQs,
}

impl Paradigm {
    /// All paradigms, in the order the paper's tables list the languages.
    pub const ALL: [Paradigm; 5] = [
        Paradigm::Shared,
        Paradigm::Channel,
        Paradigm::Stm,
        Paradigm::Actor,
        Paradigm::ScoopQs,
    ];

    /// The label used in tables (mirrors the paper's language names).
    pub fn label(self) -> &'static str {
        match self {
            Paradigm::Shared => "shared (cxx/TBB-like)",
            Paradigm::Channel => "channel (Go-like)",
            Paradigm::Stm => "stm (Haskell-like)",
            Paradigm::Actor => "actor (Erlang-like)",
            Paradigm::ScoopQs => "SCOOP/Qs",
        }
    }

    /// Whether the paradigm statically excludes data races (Table 3's
    /// "Races" column).
    pub fn race_free(self) -> bool {
        matches!(self, Paradigm::Stm | Paradigm::Actor | Paradigm::ScoopQs)
    }
}

impl std::fmt::Display for Paradigm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paradigm_labels_and_safety() {
        assert_eq!(Paradigm::ALL.len(), 5);
        assert!(Paradigm::ScoopQs.race_free());
        assert!(Paradigm::Actor.race_free());
        assert!(Paradigm::Stm.race_free());
        assert!(!Paradigm::Shared.race_free());
        assert!(!Paradigm::Channel.race_free());
        assert!(Paradigm::Shared.to_string().contains("TBB"));
    }
}
