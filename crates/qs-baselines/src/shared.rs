//! Threads + shared memory + locks (the C++/TBB stand-in).
//!
//! The C++/TBB versions of the paper's benchmarks use `parallel_for`-style
//! loops over shared arrays for the Cowichan problems and plain mutexes /
//! condition variables for the coordination problems.  This module provides
//! the same ingredients on top of the `qs-exec` work-stealing pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use qs_exec::{parallel_for, ThreadPool};

/// A shared counter protected by a mutex with a condition variable, the
/// building block of the mutex/condition coordination benchmarks.
#[derive(Debug, Default)]
pub struct SharedCounter {
    value: Mutex<u64>,
    changed: Condvar,
}

impl SharedCounter {
    /// Creates a counter starting at `value`.
    pub fn new(value: u64) -> Arc<Self> {
        Arc::new(SharedCounter {
            value: Mutex::new(value),
            changed: Condvar::new(),
        })
    }

    /// Adds one and wakes waiters; returns the new value.
    pub fn increment(&self) -> u64 {
        let mut guard = self.value.lock();
        *guard += 1;
        let value = *guard;
        drop(guard);
        self.changed.notify_all();
        value
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.value.lock()
    }

    /// Blocks until `predicate` holds for the counter value, then applies
    /// `update` under the lock and wakes waiters.  Returns the updated value.
    pub fn wait_and_update(
        &self,
        predicate: impl Fn(u64) -> bool,
        update: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut guard = self.value.lock();
        while !predicate(*guard) {
            self.changed.wait(&mut guard);
        }
        *guard = update(*guard);
        let value = *guard;
        drop(guard);
        self.changed.notify_all();
        value
    }
}

/// Fills `output[i] = f(i)` in parallel over `threads` workers — the
/// `parallel_for` idiom of the TBB versions of randmat/outer/product.
pub fn par_map_index<T: Send>(
    pool: &ThreadPool,
    output: &mut [T],
    threads: usize,
    f: impl Fn(usize) -> T + Sync + Send,
) {
    let base = output.as_mut_ptr() as usize;
    let f = &f;
    parallel_for(pool, output.len(), threads, move |range| {
        // SAFETY: each range is disjoint, so the writes do not overlap; the
        // pointer stays valid because `parallel_for` joins before returning
        // (and before `output` can be dropped).
        let ptr = base as *mut T;
        for i in range {
            unsafe { ptr.add(i).write(f(i)) };
        }
    });
}

/// Parallel sum-reduction of `f(i)` over `0..len`.
pub fn par_reduce_sum(
    pool: &ThreadPool,
    len: usize,
    threads: usize,
    f: impl Fn(usize) -> u64 + Sync + Send,
) -> u64 {
    let partials: Vec<AtomicU64> = (0..threads.max(1)).map(|_| AtomicU64::new(0)).collect();
    let f = &f;
    let partials_ref = &partials;
    let chunk = len.div_ceil(threads.max(1)).max(1);
    parallel_for(pool, len, threads, move |range| {
        let slot = (range.start / chunk).min(partials_ref.len() - 1);
        let mut local = 0u64;
        for i in range {
            local = local.wrapping_add(f(i));
        }
        partials_ref[slot].fetch_add(local, Ordering::Relaxed);
    });
    partials.iter().map(|p| p.load(Ordering::Relaxed)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_increments_and_waits() {
        let counter = SharedCounter::new(0);
        let waiter = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || counter.wait_and_update(|v| v >= 5, |v| v + 100))
        };
        for _ in 0..5 {
            counter.increment();
        }
        assert_eq!(waiter.join().unwrap(), 105);
        assert_eq!(counter.get(), 105);
    }

    #[test]
    fn par_map_index_fills_every_slot() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 10_000];
        par_map_index(&pool, &mut data, 8, |i| i * 3);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn par_map_handles_small_and_empty_inputs() {
        let pool = ThreadPool::new(4);
        let mut empty: Vec<u32> = Vec::new();
        par_map_index(&pool, &mut empty, 8, |_| 1);
        assert!(empty.is_empty());
        let mut tiny = vec![0u32; 3];
        par_map_index(&pool, &mut tiny, 8, |i| i as u32 + 1);
        assert_eq!(tiny, vec![1, 2, 3]);
    }

    #[test]
    fn par_reduce_sum_matches_sequential() {
        let pool = ThreadPool::new(4);
        let len = 100_000;
        let parallel = par_reduce_sum(&pool, len, 8, |i| (i as u64) % 7);
        let sequential: u64 = (0..len as u64).map(|i| i % 7).sum();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn par_reduce_sum_single_thread_and_zero_len() {
        let pool = ThreadPool::new(1);
        assert_eq!(par_reduce_sum(&pool, 0, 4, |_| 1), 0);
        assert_eq!(par_reduce_sum(&pool, 10, 1, |_| 2), 20);
    }
}
