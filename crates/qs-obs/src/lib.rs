//! # qs-obs — observability for the SCOOP/Qs runtime
//!
//! The runtime's performance story (West, Nanz, Meyer — PPoPP 2015, §5)
//! rests on attributing gains to specific mechanisms: sync elision, query
//! pipelining, queue structure.  This crate supplies the instrumentation
//! discipline that makes such attribution possible on the grown system:
//!
//! * **[`trace`]** — a low-overhead event-tracing layer: per-thread
//!   lock-free ring buffers of typed [`TraceKind`] events with monotonic
//!   timestamps, exportable as Chrome `trace_event` JSON
//!   ([`chrome_trace_json`]) and dumpable as a flight recorder
//!   ([`flight_recorder`]) when something goes wrong.
//! * **[`metrics`]** — a process-wide registry ([`registry`]) of counters,
//!   gauges and log-bucketed latency [`Histogram`]s (p50/p95/p99/max),
//!   exposable as JSON and Prometheus-style text.
//! * **[`json`]** — the hand-rolled JSON writer/parser the exposition and
//!   its validation use (the workspace is offline; no serde).
//!
//! Everything is gated behind a process-global [`ObservabilityMode`]:
//! `Off` (the default) costs one relaxed atomic load and a predicted
//! branch per instrumentation site; `Counters` arms the metric
//! histograms/counters; `Full` additionally records trace events.  The
//! runtime raises the mode from `RuntimeConfig::observability`
//! ([`raise_mode`]); benchmarks and tests may set it explicitly
//! ([`set_mode`]).  The mode is deliberately global, like a `tracing`
//! subscriber: lower layers (queues, executor, remote transport) record
//! events without threading a handle through every constructor.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

pub use json::{parse_json, JsonValue};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use trace::{
    chrome_trace_json, flight_recorder, now_nanos, reset_trace, trace, trace_always, trace_events,
    TraceEvent, TraceKind,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much the process records.  `Off` is the default and keeps every
/// instrumentation site down to a relaxed load and a predicted branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum ObservabilityMode {
    /// Record nothing (the zero-cost default).
    #[default]
    Off = 0,
    /// Arm the metrics registry: counters, gauges, latency histograms.
    Counters = 1,
    /// Additionally record trace events into the per-thread ring buffers.
    Full = 2,
}

impl ObservabilityMode {
    /// Every mode, in increasing order of cost.
    pub const ALL: [ObservabilityMode; 3] = [
        ObservabilityMode::Off,
        ObservabilityMode::Counters,
        ObservabilityMode::Full,
    ];

    /// Display label (also accepted by [`parse`](Self::parse)).
    pub fn label(self) -> &'static str {
        match self {
            ObservabilityMode::Off => "off",
            ObservabilityMode::Counters => "counters",
            ObservabilityMode::Full => "full",
        }
    }

    /// Parses a label; unknown names mean `None`.
    pub fn parse(name: &str) -> Option<ObservabilityMode> {
        match name {
            "off" => Some(ObservabilityMode::Off),
            "counters" => Some(ObservabilityMode::Counters),
            "full" => Some(ObservabilityMode::Full),
            _ => None,
        }
    }

    fn from_u8(raw: u8) -> ObservabilityMode {
        match raw {
            2 => ObservabilityMode::Full,
            1 => ObservabilityMode::Counters,
            _ => ObservabilityMode::Off,
        }
    }
}

impl std::fmt::Display for ObservabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The process-global mode.  Relaxed everywhere: a site observing a stale
/// mode for a few loads merely records (or skips) a handful of events.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The current process-global observability mode.
#[inline]
pub fn mode() -> ObservabilityMode {
    ObservabilityMode::from_u8(MODE.load(Ordering::Relaxed))
}

/// Sets the process-global mode (benchmarks, tests, examples).
pub fn set_mode(mode: ObservabilityMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Raises the process-global mode to at least `mode` (never lowers it) —
/// what `Runtime::new` does with `RuntimeConfig::observability`, so one
/// `Full` runtime in a process of `Off` runtimes records its events.
pub fn raise_mode(mode: ObservabilityMode) {
    MODE.fetch_max(mode as u8, Ordering::Relaxed);
}

/// Whether counters/gauges/histograms should record (`Counters` or `Full`).
#[inline(always)]
pub fn counters_enabled() -> bool {
    MODE.load(Ordering::Relaxed) >= ObservabilityMode::Counters as u8
}

/// Whether trace events should record (`Full` only).
#[inline(always)]
pub fn tracing_enabled() -> bool {
    MODE.load(Ordering::Relaxed) >= ObservabilityMode::Full as u8
}

/// The process-wide metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

/// The sampling period hot per-request sites use with [`sampled`].
///
/// Per-request instrumentation (the enqueue→execute latency stamp, the
/// mailbox-enqueue trace event) fires once per [`HOT_SAMPLE`] requests per
/// thread instead of on every request: a uniform 1-in-N sample preserves
/// the latency distribution's percentiles while keeping the armed-mode
/// cost on a sub-microsecond hot path within the overhead gate's budget
/// (full instrumentation of every request was measured at 2-4x that).
/// Low-frequency events (reservation acquire, guard park/resume, query and
/// remote round trips, drains, stalls, deadlock scans) stay unsampled.
pub const HOT_SAMPLE: u32 = 32;

thread_local! {
    static SAMPLE_TICK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Per-thread 1-in-`n` sampling tick for hot-path instrumentation: true on
/// a thread's first call and then every `n`-th.  The tick is shared by all
/// call sites on the thread (it is a statistical sample, not a schedule),
/// and each call costs one thread-local increment.
#[inline]
pub fn sampled(n: u32) -> bool {
    SAMPLE_TICK.with(|tick| {
        let t = tick.get();
        tick.set(t.wrapping_add(1));
        n <= 1 || t % n == 0
    })
}

/// A latency stopwatch that is armed only when counters are enabled, so
/// disabled call sites never pay for `Instant::now()`.
#[derive(Debug)]
#[must_use = "a timer records nothing unless finished with record()"]
pub struct Timer(Option<std::time::Instant>);

/// Starts a [`Timer`]; unarmed (free) when the mode is `Off`.
#[inline]
pub fn timer() -> Timer {
    if counters_enabled() {
        Timer(Some(std::time::Instant::now()))
    } else {
        Timer(None)
    }
}

impl Timer {
    /// A timer that never records, regardless of mode.
    pub fn disarmed() -> Timer {
        Timer(None)
    }

    /// Whether the timer was armed at creation.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Records the elapsed nanoseconds into `histogram` (if armed) and
    /// returns them.
    #[inline]
    pub fn record(self, histogram: &Histogram) -> Option<u64> {
        self.0.map(|start| {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            histogram.record(nanos);
            nanos
        })
    }
}

/// Caches a registry histogram in a per-call-site static, so hot paths pay
/// one `OnceLock` check instead of a registry lock per event.
#[macro_export]
macro_rules! obs_histogram {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<std::sync::Arc<$crate::Histogram>> =
            std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Caches a registry counter in a per-call-site static (see
/// [`obs_histogram!`]).
#[macro_export]
macro_rules! obs_counter {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Bumps a named counter by `n` when counters are enabled.
#[macro_export]
macro_rules! obs_count {
    ($name:expr, $n:expr) => {
        if $crate::counters_enabled() {
            $crate::obs_counter!($name).add($n);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_orderings_and_labels() {
        assert!(ObservabilityMode::Off < ObservabilityMode::Counters);
        assert!(ObservabilityMode::Counters < ObservabilityMode::Full);
        for mode in ObservabilityMode::ALL {
            assert_eq!(ObservabilityMode::parse(mode.label()), Some(mode));
            assert_eq!(ObservabilityMode::from_u8(mode as u8), mode);
        }
        assert_eq!(ObservabilityMode::parse("verbose"), None);
        assert_eq!(ObservabilityMode::default(), ObservabilityMode::Off);
    }

    #[test]
    fn raise_never_lowers() {
        // Serialised against other mode tests by running in one process;
        // restore Off at the end either way.
        set_mode(ObservabilityMode::Full);
        raise_mode(ObservabilityMode::Counters);
        assert_eq!(mode(), ObservabilityMode::Full);
        set_mode(ObservabilityMode::Off);
        assert!(!counters_enabled());
        assert!(!tracing_enabled());
        raise_mode(ObservabilityMode::Counters);
        assert!(counters_enabled());
        assert!(!tracing_enabled());
        set_mode(ObservabilityMode::Off);
    }

    #[test]
    fn timer_is_free_when_off() {
        set_mode(ObservabilityMode::Off);
        assert!(!timer().is_armed());
        let h = Histogram::new();
        assert_eq!(timer().record(&h), None);
        assert_eq!(h.snapshot().count, 0);
        assert!(!Timer::disarmed().is_armed());
    }
}
