//! The event-tracing layer: per-thread lock-free ring buffers of typed
//! events with monotonic timestamps, exportable as Chrome `trace_event`
//! JSON (`chrome://tracing`, Perfetto) and dumpable as a flight recorder.
//!
//! Recording is wait-free for the owning thread: each thread writes its
//! own ring through relaxed atomic stores and publishes with one release
//! store of the head index.  Readers (trace export, flight dumps) may run
//! concurrently; the event being overwritten at that instant can read
//! torn, which a post-mortem recorder accepts in exchange for never
//! stalling the traced hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::escape_json;

/// The typed events the runtime records (one per instrumented mechanism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A handler came to life (`a` = handler id).
    HandlerSpawn,
    /// A handler retired (`a` = handler id).
    HandlerRetire,
    /// A reservation (separate block) was acquired (`a` = handler id,
    /// `b` = 1 for read mode, 0 for exclusive).
    ReserveAcquire,
    /// A reservation was released (`a` = handler id, `b` = read flag).
    ReserveRelease,
    /// The read gate admitted a reader (`a` = handler id).
    ReadAcquire,
    /// A reader left the read gate (`a` = handler id).
    ReadRelease,
    /// A request was enqueued into a private queue (`a` = handler id).
    MailboxEnqueue,
    /// A handler drained a batch (`a` = handler id, `b` = batch size).
    MailboxDrain,
    /// A producer stalled on a full mailbox (`a` = handler id).
    MailboxStall,
    /// A scheduler worker stole work (`a` = worker, `b` = victim).
    SchedSteal,
    /// A scheduler worker parked idle (`a` = worker).
    SchedPark,
    /// A handler went through the pressure lane (`a` = handler id).
    SchedPressure,
    /// A handler signalled its guard-waiter registry (`a` = handler id,
    /// `b` = waiters signalled).
    GuardSignal,
    /// A parked waiter woke to re-evaluate its condition (`a` = handler id).
    GuardWakeup,
    /// The deadlock monitor scanned the wait-for graph (`a` = edges).
    DeadlockScan,
    /// The deadlock monitor confirmed a cycle (`a` = cycle length).
    DeadlockReport,
    /// A wire frame was sent (`a` = payload bytes).
    FrameSend,
    /// A wire frame was received (`a` = payload bytes).
    FrameRecv,
}

impl TraceKind {
    /// Every kind (docs, tests, exporters).
    pub const ALL: [TraceKind; 18] = [
        TraceKind::HandlerSpawn,
        TraceKind::HandlerRetire,
        TraceKind::ReserveAcquire,
        TraceKind::ReserveRelease,
        TraceKind::ReadAcquire,
        TraceKind::ReadRelease,
        TraceKind::MailboxEnqueue,
        TraceKind::MailboxDrain,
        TraceKind::MailboxStall,
        TraceKind::SchedSteal,
        TraceKind::SchedPark,
        TraceKind::SchedPressure,
        TraceKind::GuardSignal,
        TraceKind::GuardWakeup,
        TraceKind::DeadlockScan,
        TraceKind::DeadlockReport,
        TraceKind::FrameSend,
        TraceKind::FrameRecv,
    ];

    /// Dotted event name, `category.event`.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::HandlerSpawn => "handler.spawn",
            TraceKind::HandlerRetire => "handler.retire",
            TraceKind::ReserveAcquire => "reserve.acquire",
            TraceKind::ReserveRelease => "reserve.release",
            TraceKind::ReadAcquire => "read.acquire",
            TraceKind::ReadRelease => "read.release",
            TraceKind::MailboxEnqueue => "mailbox.enqueue",
            TraceKind::MailboxDrain => "mailbox.drain",
            TraceKind::MailboxStall => "mailbox.stall",
            TraceKind::SchedSteal => "sched.steal",
            TraceKind::SchedPark => "sched.park",
            TraceKind::SchedPressure => "sched.pressure",
            TraceKind::GuardSignal => "guard.signal",
            TraceKind::GuardWakeup => "guard.wakeup",
            TraceKind::DeadlockScan => "deadlock.scan",
            TraceKind::DeadlockReport => "deadlock.report",
            TraceKind::FrameSend => "remote.frame_send",
            TraceKind::FrameRecv => "remote.frame_recv",
        }
    }

    /// The Chrome-trace category (the part before the dot).
    pub fn category(self) -> &'static str {
        let label = self.label();
        &label[..label.find('.').expect("labels are dotted")]
    }

    fn from_u8(raw: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(raw as usize).copied()
    }
}

/// One recorded event, as read back out of a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Recording thread's trace id (dense, assigned at first event).
    pub tid: u64,
    /// Recording thread's name ("" when unnamed).
    pub thread: String,
    /// What happened.
    pub kind: TraceKind,
    /// Nanoseconds since the process's trace epoch.
    pub ts_nanos: u64,
    /// First event argument (see [`TraceKind`] docs).
    pub a: u64,
    /// Second event argument.
    pub b: u64,
}

/// Events each thread retains (ring capacity): enough history to see the
/// run-up to a stall or deadlock without unbounded memory.
pub const RING_CAPACITY: usize = 4096;

struct Slot {
    /// `kind as u64 + 1`; 0 marks a never-written slot.
    kind: AtomicU64,
    ts: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// One thread's ring.  Written only by its owning thread; read by anyone.
struct ThreadRing {
    tid: u64,
    name: String,
    /// Monotone count of events ever written (next write position).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn record(&self, kind: TraceKind, ts: u64, a: u64, b: u64) {
        let head = self.head.load(Ordering::Relaxed);
        // RING_CAPACITY is a power of two: mask, don't divide (the div was
        // visible in the overhead gate's Full cell).
        debug_assert!(self.slots.len().is_power_of_two());
        let slot = &self.slots[head as usize & (self.slots.len() - 1)];
        slot.kind.store(kind as u64 + 1, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    /// The retained events, oldest first.
    fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let len = self.slots.len() as u64;
        let start = head.saturating_sub(len);
        (start..head)
            .filter_map(|i| {
                let slot = &self.slots[i as usize % self.slots.len()];
                let kind = slot.kind.load(Ordering::Relaxed);
                let kind = TraceKind::from_u8(kind.checked_sub(1)? as u8)?;
                Some(TraceEvent {
                    tid: self.tid,
                    thread: self.name.clone(),
                    kind,
                    ts_nanos: slot.ts.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

#[derive(Default)]
struct TraceRegistry {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    next_tid: AtomicU64,
}

fn trace_registry() -> &'static TraceRegistry {
    static REGISTRY: OnceLock<TraceRegistry> = OnceLock::new();
    REGISTRY.get_or_init(TraceRegistry::default)
}

/// The process's trace epoch (fixed at the first timestamp request).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch — the timestamp base every recorded
/// event and cross-thread latency stamp shares.
#[inline]
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let registry = trace_registry();
            let ring = Arc::new(ThreadRing {
                tid: registry.next_tid.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current().name().unwrap_or("").to_string(),
                head: AtomicU64::new(0),
                slots: (0..RING_CAPACITY)
                    .map(|_| Slot {
                        kind: AtomicU64::new(0),
                        ts: AtomicU64::new(0),
                        a: AtomicU64::new(0),
                        b: AtomicU64::new(0),
                    })
                    .collect(),
            });
            registry
                .rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// Records one event into the current thread's ring — if the mode is
/// `Full`; otherwise a relaxed load and a predicted branch.
#[inline]
pub fn trace(kind: TraceKind, a: u64, b: u64) {
    if crate::tracing_enabled() {
        trace_always(kind, a, b);
    }
}

/// Records unconditionally (exporter tests; prefer [`trace`]).
pub fn trace_always(kind: TraceKind, a: u64, b: u64) {
    let ts = now_nanos();
    with_ring(|ring| ring.record(kind, ts, a, b));
}

/// Every retained event from every thread that ever recorded, oldest
/// first per thread.
pub fn trace_events() -> Vec<TraceEvent> {
    let rings: Vec<Arc<ThreadRing>> = trace_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut events: Vec<TraceEvent> = rings.iter().flat_map(|r| r.events()).collect();
    events.sort_by_key(|e| e.ts_nanos);
    events
}

/// Clears every ring (the threads keep their registrations).  Benchmarks
/// and examples use this to scope an export to one phase.
pub fn reset_trace() {
    let rings: Vec<Arc<ThreadRing>> = trace_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    for ring in rings {
        for slot in ring.slots.iter() {
            slot.kind.store(0, Ordering::Relaxed);
        }
        ring.head.store(0, Ordering::Release);
    }
}

/// Exports every retained event as Chrome `trace_event` JSON (the
/// "JSON Array Format" object with `traceEvents`): open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>.  Events are instants
/// (`ph:"i"`, thread scope); threads are named via `M` metadata records.
pub fn chrome_trace_json() -> String {
    let rings: Vec<Arc<ThreadRing>> = trace_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for ring in &rings {
        push(
            format!(
                "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                ring.tid,
                escape_json(if ring.name.is_empty() {
                    "unnamed"
                } else {
                    &ring.name
                })
            ),
            &mut out,
        );
    }
    for ring in &rings {
        for event in ring.events() {
            push(
                format!(
                    "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                     \"ts\": {:.3}, \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"a\": {}, \"b\": {}}}}}",
                    event.kind.label(),
                    event.kind.category(),
                    event.ts_nanos as f64 / 1_000.0,
                    event.tid,
                    event.a,
                    event.b,
                ),
                &mut out,
            );
        }
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
    out
}

/// The flight recorder: the last `per_thread` retained events of every
/// thread, globally ordered by timestamp and formatted one per line —
/// what a `DeadlockReport` attaches so a cycle arrives with the event
/// history that led into it.
pub fn flight_recorder(per_thread: usize) -> Vec<String> {
    let rings: Vec<Arc<ThreadRing>> = trace_registry()
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let mut events: Vec<TraceEvent> = rings
        .iter()
        .flat_map(|ring| {
            let events = ring.events();
            let skip = events.len().saturating_sub(per_thread);
            events.into_iter().skip(skip)
        })
        .collect();
    events.sort_by_key(|e| e.ts_nanos);
    events
        .into_iter()
        .map(|e| {
            let name = if e.thread.is_empty() {
                String::new()
            } else {
                format!(" {}", e.thread)
            };
            format!(
                "[+{:>12}ns tid={}{}] {} a={} b={}",
                e.ts_nanos,
                e.tid,
                name,
                e.kind.label(),
                e.a,
                e.b
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    #[test]
    fn kinds_have_unique_dotted_labels() {
        let mut labels: Vec<&str> = TraceKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate labels");
        for kind in TraceKind::ALL {
            assert!(kind.label().contains('.'));
            assert!(!kind.category().is_empty());
            assert_eq!(TraceKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(TraceKind::from_u8(200), None);
    }

    #[test]
    fn recorded_events_come_back_in_order_and_wrap() {
        // Record from a dedicated named thread so this test owns its ring.
        std::thread::Builder::new()
            .name("obs-trace-test".into())
            .spawn(|| {
                for i in 0..(RING_CAPACITY as u64 + 10) {
                    trace_always(TraceKind::MailboxEnqueue, i, 0);
                }
                RING.with(|cell| {
                    let ring = cell.get().expect("ring exists after recording");
                    let events = ring.events();
                    assert_eq!(events.len(), RING_CAPACITY, "ring retains its capacity");
                    // The 10 oldest were overwritten.
                    assert_eq!(events.first().unwrap().a, 10);
                    assert_eq!(events.last().unwrap().a, RING_CAPACITY as u64 + 9);
                    assert!(events.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
                    assert_eq!(events[0].thread, "obs-trace-test");
                });
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        std::thread::Builder::new()
            .name("obs-chrome-test".into())
            .spawn(|| {
                trace_always(TraceKind::SchedSteal, 1, 2);
                trace_always(TraceKind::DeadlockReport, 3, 0);
            })
            .unwrap()
            .join()
            .unwrap();
        let json = chrome_trace_json();
        let doc = parse_json(&json).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("sched.steal"))
            .expect("recorded event exported");
        assert_eq!(steal.get("cat").and_then(|c| c.as_str()), Some("sched"));
        assert_eq!(
            steal
                .get("args")
                .and_then(|a| a.get("a"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn flight_recorder_limits_and_formats() {
        std::thread::Builder::new()
            .name("obs-flight-test".into())
            .spawn(|| {
                for i in 0..50 {
                    trace_always(TraceKind::GuardSignal, i, 1);
                }
                let lines = flight_recorder(8);
                // Other test threads may contribute, but this thread caps at 8.
                let mine: Vec<&String> = lines
                    .iter()
                    .filter(|l| l.contains("obs-flight-test"))
                    .collect();
                assert!(mine.len() <= 8);
                assert!(!mine.is_empty());
                assert!(mine.iter().all(|l| l.contains("guard.signal")));
            })
            .unwrap()
            .join()
            .unwrap();
    }
}
