//! Counters, gauges and log-bucketed latency histograms, collected in a
//! name-keyed registry exposable as JSON and Prometheus-style text.
//!
//! Everything records through relaxed atomics: a metric is a statistical
//! summary, not a synchronisation device, and the hot paths it instruments
//! must never serialise on it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::escape_json;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (benchmark harness use; not linearisable against
    /// concurrent recorders).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level that can move both ways (queue depths, live
/// handler counts).  Levels are *kept*, not subtracted, when comparing two
/// points in time — the same rule `StatsSnapshot::since` applies to its
/// gauge fields.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// Buckets per histogram: one per power of two of a `u64`, plus the zero
/// bucket.  Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds the
/// half-open range `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds by
/// convention).  Power-of-two buckets trade ≤2× value resolution for a
/// fixed-size, lock-free, mergeable structure — the standard trade for
/// runtime latency tracking.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("p50", &snap.percentile(50.0))
            .field("p99", &snap.percentile(99.0))
            .field("max", &snap.max)
            .finish()
    }
}

/// The bucket index a value records into.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive `(low, high)` range of values a bucket covers.
pub fn bucket_range(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    if index == 0 {
        (0, 0)
    } else if index == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (index - 1), (1u64 << index) - 1)
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy.  Taken with relaxed loads: concurrent
    /// recorders may straddle the copy, skewing `count` against the bucket
    /// total by in-flight samples — a summary, not a barrier.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Folds another histogram's current contents into this one.
    pub fn absorb(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, &n) in snap.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Clears every bucket (benchmark harness use; not linearisable
    /// against concurrent recorders).
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-data copy of a [`Histogram`], with the percentile arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_range`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The value at percentile `p` (0–100): the upper bound of the bucket
    /// containing the `⌈p/100 · count⌉`-th smallest sample, clamped to the
    /// recorded maximum so `percentile(100.0) == max`.  0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_range(i).1.min(self.max);
            }
        }
        self.max
    }

    /// The arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// A pure merge of two snapshots (the distributive view used for
    /// per-thread recording; associative and commutative).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Serialises the snapshot as a JSON object (non-empty buckets only).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
        );
        let mut first = true;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (low, high) = bucket_range(i);
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("[{low}, {high}, {n}]"));
        }
        out.push_str("]}");
        out
    }
}

/// One named metric in a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A name-keyed collection of metrics.  Lookup takes a lock; hot paths
/// cache the returned `Arc` (see `obs_histogram!` / `obs_counter!`).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// A fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use (panics on a kind
    /// clash, like [`counter`](Self::counter)).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use (panics on a kind
    /// clash, like [`counter`](Self::counter)).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// A sorted copy of every metric (name, handle).
    pub fn all(&self) -> Vec<(String, Metric)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Resets every metric to zero (benchmark harness use).
    pub fn reset(&self) {
        for (_, metric) in self.all() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// The registry as one JSON object:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}`.
    pub fn to_json(&self) -> String {
        let all = self.all();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in &all {
            let name = escape_json(name);
            match metric {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push_str(", ");
                    }
                    counters.push_str(&format!("\"{name}\": {}", c.get()));
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push_str(", ");
                    }
                    gauges.push_str(&format!("\"{name}\": {}", g.get()));
                }
                Metric::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push_str(", ");
                    }
                    histograms.push_str(&format!("\"{name}\": {}", h.snapshot().to_json()));
                }
            }
        }
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \
             \"histograms\": {{{histograms}}}}}"
        )
    }

    /// The registry as Prometheus-style exposition text: counters and
    /// gauges as plain samples, histograms as summary quantiles plus
    /// `_count`/`_sum`/`_max`.  Metric names are sanitised to
    /// `[a-zA-Z0-9_]` as the format requires.
    pub fn to_prometheus_text(&self) -> String {
        let sanitize = |name: &str| -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        };
        let mut out = String::new();
        for (name, metric) in self.all() {
            let name = sanitize(&name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{q}\"}} {}\n",
                            snap.percentile(p)
                        ));
                    }
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                    out.push_str(&format!("{name}_sum {}\n", snap.sum));
                    out.push_str(&format!("{name}_max {}\n", snap.max));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    #[test]
    fn bucket_index_matches_bucket_range() {
        for value in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let (low, high) = bucket_range(bucket_index(value));
            assert!(
                low <= value && value <= high,
                "{value} not in [{low},{high}]"
            );
        }
        assert_eq!(bucket_range(0), (0, 0));
        assert_eq!(bucket_range(1), (1, 1));
        assert_eq!(bucket_range(2), (2, 3));
        assert_eq!(bucket_range(64).1, u64::MAX);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100);
        assert_eq!(snap.percentile(100.0), 100);
        // p50 = 50th smallest sample = 50, reported as its bucket's upper
        // bound (bucket [32,63]).
        assert_eq!(snap.percentile(50.0), 63);
        assert_eq!(snap.percentile(0.0), bucket_range(bucket_index(1)).1);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.percentile(50.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn absorb_and_reset() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(1000);
        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, 1000);
        a.reset();
        assert_eq!(a.snapshot().count, 0);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("qs.test.events").add(3);
        reg.gauge("qs.test.depth").set(-2);
        reg.histogram("qs.test.latency_ns").record(1500);
        let json = reg.to_json();
        let value = parse_json(&json).expect("registry JSON parses");
        assert_eq!(
            value.get("counters").and_then(|c| c.get("qs.test.events")),
            Some(&crate::JsonValue::Number(3.0))
        );
        assert_eq!(
            value.get("gauges").and_then(|g| g.get("qs.test.depth")),
            Some(&crate::JsonValue::Number(-2.0))
        );
        let hist = value
            .get("histograms")
            .and_then(|h| h.get("qs.test.latency_ns"))
            .expect("histogram present");
        assert_eq!(hist.get("count"), Some(&crate::JsonValue::Number(1.0)));
    }

    #[test]
    fn prometheus_text_has_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("qs.test.events").inc();
        reg.gauge("qs.test.depth").set(7);
        reg.histogram("qs.test.latency_ns").record(10);
        let text = reg.to_prometheus_text();
        assert!(text.contains("# TYPE qs_test_events counter"));
        assert!(text.contains("qs_test_events 1"));
        assert!(text.contains("# TYPE qs_test_depth gauge"));
        assert!(text.contains("qs_test_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("qs_test_latency_ns_count 1"));
    }

    #[test]
    fn registry_reuses_and_resets_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("qs.test.twice").inc();
        reg.counter("qs.test.twice").inc();
        assert_eq!(reg.counter("qs.test.twice").get(), 2);
        reg.reset();
        assert_eq!(reg.counter("qs.test.twice").get(), 0);
    }
}
