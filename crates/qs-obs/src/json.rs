//! A minimal JSON layer: string escaping for the hand-rolled writers and a
//! validating recursive-descent parser for the consumers (trace schema
//! checks, cluster metrics scraping, bench-file assertions).
//!
//! The workspace is offline — no serde — and every BENCH/metrics artefact
//! is hand-written JSON, so the *reader* side doubles as the validator
//! that keeps those writers honest.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string (escapes resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object members (`None` for non-objects).
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape_json(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing content at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through by consuming whole
                    // chars from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            JsonValue::Number(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "01x", "\"open", "{} trailing"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let raw = "tab\there \"quoted\" back\\slash\nnewline \u{1} unicode £";
        let doc = format!("{{\"k\": \"{}\"}}", escape_json(raw));
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse_json("\"\\u00a3 and \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("£ and A"));
    }

    #[test]
    fn committed_bench_files_parse() {
        // The hand-rolled writers across the workspace are kept honest by
        // parsing whatever BENCH_*.json files are committed at the repo
        // root (skipped silently if the test runs from elsewhere).
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..");
        if let Ok(entries) = std::fs::read_dir(&root) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    let text = std::fs::read_to_string(entry.path()).unwrap();
                    parse_json(&text).unwrap_or_else(|e| panic!("{name} invalid: {e}"));
                }
            }
        }
    }
}
