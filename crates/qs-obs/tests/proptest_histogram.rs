//! Property-based tests for the log-bucketed latency histogram.
//!
//! The histogram's contract — a value lands in the bucket whose range
//! covers it, merging per-thread histograms is associative, and reported
//! percentiles are monotone in `p` — is what the bench harness and the
//! metrics exposition rely on, so each clause is exercised with generated
//! sample sets, plus a concurrent-recording stress against the atomics.

use proptest::prelude::*;
use qs_obs::{metrics::bucket_range, Histogram, HistogramSnapshot};
use std::sync::Arc;

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every recorded value falls inside the (inclusive) range of the one
    /// bucket whose count it incremented, and totals are conserved.
    #[test]
    fn recorded_value_falls_in_its_reported_bucket(
        samples in proptest::collection::vec(any::<u64>(), 1..200)
    ) {
        for &value in &samples {
            let h = Histogram::new();
            h.record(value);
            let snap = h.snapshot();
            let hot: Vec<usize> = (0..snap.buckets.len())
                .filter(|&i| snap.buckets[i] > 0)
                .collect();
            prop_assert_eq!(hot.len(), 1, "exactly one bucket per sample");
            let (low, high) = bucket_range(hot[0]);
            prop_assert!(low <= value && value <= high,
                "{} outside its bucket [{}, {}]", value, low, high);
        }
        let snap = snapshot_of(&samples);
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
    }

    /// Merging is associative (and commutative), and equals recording the
    /// concatenated sample sets into one histogram.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&sa.merge(&sb), &sb.merge(&sa));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    /// `percentile` is monotone non-decreasing in `p`, pinned to the true
    /// max at p=100, and never reports above the recorded maximum.
    #[test]
    fn percentile_is_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..300)
    ) {
        let snap = snapshot_of(&samples);
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0];
        let values: Vec<u64> = ps.iter().map(|&p| snap.percentile(p)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "percentiles decreased: {:?}", values);
        }
        prop_assert_eq!(values[values.len() - 1], snap.max);
        prop_assert!(values.iter().all(|&v| v <= snap.max));
        // Each reported percentile is a valid bucket upper bound (or the
        // max it was clamped to): at least as large as the true rank value.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (&p, &reported) in ps.iter().zip(&values) {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            prop_assert!(reported >= exact,
                "p{} reported {} below the exact order statistic {}", p, reported, exact);
        }
    }
}

/// Concurrent recording: many threads hammering one histogram must lose
/// nothing — the atomics make every sample land exactly once.
#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                // Spread samples across many buckets; deterministic per thread.
                let mut x = (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    h.record(x >> (x % 40));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert!(snap.percentile(50.0) <= snap.percentile(99.0));
    assert_eq!(snap.percentile(100.0), snap.max);
}
