//! Multi-handler reservations (§2.4 of the paper).
//!
//! A client sometimes needs consistency across several handlers at once —
//! the red/blue example of Fig. 5: whoever reserves `x` and `y` together must
//! observe them with the same colour.  The generalised `separate` rule
//! registers the client's private queues with *all* requested handlers
//! atomically; §3.3 implements that atomicity with one spinlock per handler.
//!
//! This module provides [`separate2`], [`separate3`] for heterogeneous
//! handler types and [`separate_all`] for a homogeneous slice.  Atomicity is
//! obtained by acquiring each reserved handler's spinlock (or, on the
//! lock-based path, its handler lock) in increasing handler-id order, so two
//! overlapping multi-reservations can never deadlock against each other.

use qs_queues::spsc_channel;

use crate::handler::Handler;
use crate::separate::Separate;
use crate::stats::RuntimeStats;

/// Reserves two handlers atomically and runs `body` with both reservations.
///
/// ```
/// use qs_runtime::{Runtime, RuntimeConfig, separate2};
///
/// let rt = Runtime::new(RuntimeConfig::all_optimizations());
/// let x = rt.spawn_handler(0u32);
/// let y = rt.spawn_handler(0u32);
/// separate2(&x, &y, |sx, sy| {
///     sx.call(|v| *v = 1);
///     sy.call(|v| *v = 1);
/// });
/// ```
pub fn separate2<A, B, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>) -> R,
) -> R
where
    A: Send + 'static,
    B: Send + 'static,
{
    let core_a = a.core();
    let core_b = b.core();
    RuntimeStats::bump(&core_a.stats.multi_reservations);
    RuntimeStats::bump(&core_a.stats.separate_blocks);

    let qoq = core_a.config.queue_of_queues;
    let (mut sa, mut sb);
    if qoq {
        // Phase 1: take both reservation spinlocks in id order.
        let (first_lock, second_lock) = if core_a.id <= core_b.id {
            (&core_a.reservation_lock, &core_b.reservation_lock)
        } else {
            (&core_b.reservation_lock, &core_a.reservation_lock)
        };
        let g1 = first_lock.lock();
        let g2 = second_lock.lock();
        // Phase 2: register one private queue with each handler.
        let (pa, ca) = spsc_channel();
        let (pb, cb) = spsc_channel();
        core_a.qoq.enqueue(ca);
        core_b.qoq.enqueue(cb);
        RuntimeStats::bump(&core_a.stats.private_queues_enqueued);
        RuntimeStats::bump(&core_b.stats.private_queues_enqueued);
        // Phase 3: release the spinlocks; the reservation is now atomic.
        drop(g2);
        drop(g1);
        sa = Separate::from_parts(core_a, Some(pa), None);
        sb = Separate::from_parts(core_b, Some(pb), None);
    } else {
        // Lock-based path: take both handler locks in id order and hold them
        // for the whole block (this is where the Fig. 6 deadlock can come
        // from when programs nest single reservations in opposite orders;
        // the combined reservation here always orders by id).
        let (ga, gb) = if core_a.id <= core_b.id {
            let ga = core_a.client_lock.lock();
            let gb = core_b.client_lock.lock();
            (ga, gb)
        } else {
            let gb = core_b.client_lock.lock();
            let ga = core_a.client_lock.lock();
            (ga, gb)
        };
        sa = Separate::from_parts(core_a, None, Some(ga));
        sb = Separate::from_parts(core_b, None, Some(gb));
    }

    let result = body(&mut sa, &mut sb);
    sa.end();
    sb.end();
    result
}

/// Reserves three handlers atomically and runs `body` with the reservations.
pub fn separate3<A, B, C, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    c: &Handler<C>,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>, &mut Separate<'_, C>) -> R,
) -> R
where
    A: Send + 'static,
    B: Send + 'static,
    C: Send + 'static,
{
    let core_a = a.core();
    let core_b = b.core();
    let core_c = c.core();
    RuntimeStats::bump(&core_a.stats.multi_reservations);
    RuntimeStats::bump(&core_a.stats.separate_blocks);

    let qoq = core_a.config.queue_of_queues;
    let (mut sa, mut sb, mut sc);
    if qoq {
        // Sort the three spinlocks by handler id and lock in that order.
        let mut locks = [
            (core_a.id, &core_a.reservation_lock),
            (core_b.id, &core_b.reservation_lock),
            (core_c.id, &core_c.reservation_lock),
        ];
        locks.sort_by_key(|(id, _)| *id);
        let guards: Vec<_> = locks.iter().map(|(_, lock)| lock.lock()).collect();
        let (pa, ca) = spsc_channel();
        let (pb, cb) = spsc_channel();
        let (pc, cc) = spsc_channel();
        core_a.qoq.enqueue(ca);
        core_b.qoq.enqueue(cb);
        core_c.qoq.enqueue(cc);
        for core_stats in [&core_a.stats, &core_b.stats, &core_c.stats] {
            RuntimeStats::bump(&core_stats.private_queues_enqueued);
        }
        drop(guards);
        sa = Separate::from_parts(core_a, Some(pa), None);
        sb = Separate::from_parts(core_b, Some(pb), None);
        sc = Separate::from_parts(core_c, Some(pc), None);
    } else {
        // Acquire the three handler locks in id order.  Because the guards
        // have the same type we can collect them and hand them back by id.
        let mut order = [(core_a.id, 0usize), (core_b.id, 1), (core_c.id, 2)];
        order.sort_by_key(|(id, _)| *id);
        let mut guard_a = None;
        let mut guard_b = None;
        let mut guard_c = None;
        for (_, which) in order {
            match which {
                0 => guard_a = Some(core_a.client_lock.lock()),
                1 => guard_b = Some(core_b.client_lock.lock()),
                _ => guard_c = Some(core_c.client_lock.lock()),
            }
        }
        sa = Separate::from_parts(core_a, None, guard_a);
        sb = Separate::from_parts(core_b, None, guard_b);
        sc = Separate::from_parts(core_c, None, guard_c);
    }

    let result = body(&mut sa, &mut sb, &mut sc);
    sa.end();
    sb.end();
    sc.end();
    result
}

/// Reserves every handler in `handlers` atomically and runs `body` with one
/// reservation guard per handler, in the same order as the input slice.
pub fn separate_all<T, R>(
    handlers: &[Handler<T>],
    body: impl FnOnce(&mut [Separate<'_, T>]) -> R,
) -> R
where
    T: Send + 'static,
{
    if handlers.is_empty() {
        let mut empty: Vec<Separate<'_, T>> = Vec::new();
        return body(&mut empty);
    }
    let stats = &handlers[0].core().stats;
    RuntimeStats::bump(&stats.multi_reservations);
    RuntimeStats::bump(&stats.separate_blocks);

    let qoq = handlers[0].core().config.queue_of_queues;
    let mut order: Vec<usize> = (0..handlers.len()).collect();
    order.sort_by_key(|&i| handlers[i].id());

    let mut guards: Vec<Separate<'_, T>>;
    if qoq {
        let spin_guards: Vec<_> = order
            .iter()
            .map(|&i| handlers[i].core().reservation_lock.lock())
            .collect();
        guards = handlers
            .iter()
            .map(|h| {
                let (producer, consumer) = spsc_channel();
                h.core().qoq.enqueue(consumer);
                RuntimeStats::bump(&h.core().stats.private_queues_enqueued);
                Separate::from_parts(h.core(), Some(producer), None)
            })
            .collect();
        drop(spin_guards);
    } else {
        // Lock in id order, then restore the caller's ordering.
        let mut locked: Vec<(usize, parking_lot::MutexGuard<'_, ()>)> = order
            .iter()
            .map(|&i| (i, handlers[i].core().client_lock.lock()))
            .collect();
        locked.sort_by_key(|(i, _)| *i);
        guards = locked
            .into_iter()
            .map(|(i, guard)| Separate::from_parts(handlers[i].core(), None, Some(guard)))
            .collect();
    }

    let result = body(&mut guards);
    for mut guard in guards {
        guard.end();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizationLevel, RuntimeConfig};
    use crate::runtime::Runtime;

    #[test]
    fn separate2_sees_consistent_state() {
        // Fig. 5: two clients painting (x, y) red or blue; observers that
        // reserve both must never see mixed colours.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let x = rt.spawn_handler(0u8);
            let y = rt.spawn_handler(0u8);
            let mut painters = Vec::new();
            for colour in [1u8, 2u8] {
                let x = x.clone();
                let y = y.clone();
                painters.push(std::thread::spawn(move || {
                    for _ in 0..200 {
                        separate2(&x, &y, |sx, sy| {
                            sx.call(move |v| *v = colour);
                            sy.call(move |v| *v = colour);
                        });
                    }
                }));
            }
            let observer = {
                let x = x.clone();
                let y = y.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let (cx, cy) = separate2(&x, &y, |sx, sy| {
                            let cx = sx.query(|v| *v);
                            let cy = sy.query(|v| *v);
                            (cx, cy)
                        });
                        assert_eq!(cx, cy, "observed mixed colours under {level}");
                    }
                })
            };
            for p in painters {
                p.join().unwrap();
            }
            observer.join().unwrap();
        }
    }

    #[test]
    fn separate3_orders_heterogeneous_handlers() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(String::new());
        let c = rt.spawn_handler(Vec::<u32>::new());
        separate3(&a, &b, &c, |sa, sb, sc| {
            sa.call(|n| *n = 5);
            sb.call(|s| s.push('x'));
            sc.call(|v| v.push(9));
            assert_eq!(sa.query(|n| *n), 5);
            assert_eq!(sb.query(|s| s.len()), 1);
            assert_eq!(sc.query(|v| v[0]), 9);
        });
    }

    #[test]
    fn separate_all_handles_empty_and_many() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let none: Vec<crate::Handler<u32>> = Vec::new();
        assert_eq!(separate_all(&none, |guards| guards.len()), 0);

        let handlers: Vec<_> = (0..6).map(|i| rt.spawn_handler(i as u64)).collect();
        let sum = separate_all(&handlers, |guards| {
            guards.iter_mut().map(|g| g.query(|v| *v)).sum::<u64>()
        });
        assert_eq!(sum, (0..6).sum());
    }

    #[test]
    fn opposite_order_multi_reservations_do_not_deadlock() {
        // Two clients reserving (x, y) and (y, x) concurrently, many times.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let x = rt.spawn_handler(0u64);
            let y = rt.spawn_handler(0u64);
            let t1 = {
                let (x, y) = (x.clone(), y.clone());
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        separate2(&x, &y, |sx, sy| {
                            sx.call(|v| *v += 1);
                            sy.call(|v| *v += 1);
                        });
                    }
                })
            };
            let t2 = {
                let (x, y) = (x.clone(), y.clone());
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        separate2(&y, &x, |sy, sx| {
                            sy.call(|v| *v += 1);
                            sx.call(|v| *v += 1);
                        });
                    }
                })
            };
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(x.query_detached(|v| *v), 1_000);
            assert_eq!(y.query_detached(|v| *v), 1_000);
        }
    }
}
