//! Deprecated arity-specialised multi-reservation shims.
//!
//! The generalised `separate` rule (§2.4 of the paper) is now exposed through
//! the unified [`crate::reserve`] builder, which performs the id-ordered
//! atomic registration of §3.3 in one place for every arity and both runtime
//! configurations.  The free functions here are thin delegating shims kept so
//! existing code continues to compile; they will be removed in a later
//! release (see `ROADMAP.md`).

use crate::handler::Handler;
use crate::reserve::reserve;
use crate::separate::Separate;

/// Reserves two handlers atomically and runs `body` with both reservations.
///
/// ```
/// # #![allow(deprecated)]
/// use qs_runtime::{Runtime, RuntimeConfig, separate2};
///
/// let rt = Runtime::new(RuntimeConfig::all_optimizations());
/// let x = rt.spawn_handler(0u32);
/// let y = rt.spawn_handler(0u32);
/// separate2(&x, &y, |sx, sy| {
///     sx.call(|v| *v = 1);
///     sy.call(|v| *v = 1);
/// });
/// ```
#[deprecated(since = "0.2.0", note = "use `reserve((a, b)).run(|(sa, sb)| …)`")]
pub fn separate2<A, B, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>) -> R,
) -> R
where
    A: Send + 'static,
    B: Send + 'static,
{
    reserve((a, b)).run(|(sa, sb)| body(sa, sb))
}

/// Reserves three handlers atomically and runs `body` with the reservations.
#[deprecated(
    since = "0.2.0",
    note = "use `reserve((a, b, c)).run(|(sa, sb, sc)| …)`"
)]
pub fn separate3<A, B, C, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    c: &Handler<C>,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>, &mut Separate<'_, C>) -> R,
) -> R
where
    A: Send + 'static,
    B: Send + 'static,
    C: Send + 'static,
{
    reserve((a, b, c)).run(|(sa, sb, sc)| body(sa, sb, sc))
}

/// Reserves every handler in `handlers` atomically and runs `body` with one
/// reservation guard per handler, in the same order as the input slice.
#[deprecated(since = "0.2.0", note = "use `reserve(handlers).run(|guards| …)`")]
pub fn separate_all<T, R>(
    handlers: &[Handler<T>],
    body: impl FnOnce(&mut [Separate<'_, T>]) -> R,
) -> R
where
    T: Send + 'static,
{
    reserve(handlers).run(|guards| body(guards))
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;

    #[test]
    fn shims_delegate_to_the_unified_reservation() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(String::new());
        let c = rt.spawn_handler(Vec::<u32>::new());

        separate2(&a, &b, |sa, sb| {
            sa.call(|n| *n = 2);
            sb.call(|s| s.push('x'));
        });
        separate3(&a, &b, &c, |sa, sb, sc| {
            assert_eq!(sa.query(|n| *n), 2);
            assert_eq!(sb.query(|s| s.len()), 1);
            sc.call(|v| v.push(9));
            assert_eq!(sc.query(|v| v[0]), 9);
        });

        let homogeneous: Vec<_> = (0..3).map(|i| rt.spawn_handler(i as u64)).collect();
        let sum = separate_all(&homogeneous, |guards| {
            guards.iter_mut().map(|g| g.query(|v| *v)).sum::<u64>()
        });
        assert_eq!(sum, 3);
        assert_eq!(rt.stats_snapshot().multi_reservations, 3);
    }
}
