//! Requests exchanged between clients and handlers.
//!
//! A request corresponds to one entry in a private queue (QoQ configuration)
//! or in the handler's single request queue (lock-based configuration).  The
//! paper packages asynchronous calls with libffi (§3.2, Fig. 9); the Rust
//! equivalent is a boxed `FnOnce` closure, which carries the captured
//! arguments on the heap exactly as the libffi call structure does.

use std::sync::Arc;

use qs_sync::Handoff;

/// A closure applied to the handler-owned object.
pub type CallFn<T> = Box<dyn FnOnce(&mut T) + Send + 'static>;

/// One client request for a handler owning an object of type `T`.
pub enum Request<T> {
    /// An asynchronous command (`call` rule): execute the closure on the
    /// handler, no reply.
    Call(CallFn<T>),
    /// A handler-executed query (`query` rule without the §3.2 shift): the
    /// closure computes the result and completes the embedded handoff.
    Query(CallFn<T>),
    /// A synchronisation token (modified `query` rule of §3.2): the handler
    /// completes the handoff, signalling that every previous request from
    /// this client has been applied; the client then executes the query
    /// locally.
    Sync(Arc<Handoff<()>>),
    /// End of a group of requests (`end` rule).  Only used on the lock-based
    /// path, where the single request queue is shared by all clients and
    /// cannot be closed per-client; on the QoQ path the private queue's
    /// `close()` plays this role.
    End,
}

impl<T> Request<T> {
    /// A short label for tracing/debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Call(_) => "call",
            Request::Query(_) => "query",
            Request::Sync(_) => "sync",
            Request::End => "end",
        }
    }
}

impl<T> std::fmt::Debug for Request<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("kind", &self.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_reported() {
        let call: Request<u32> = Request::Call(Box::new(|n| *n += 1));
        let query: Request<u32> = Request::Query(Box::new(|_| {}));
        let sync: Request<u32> = Request::Sync(Arc::new(Handoff::new()));
        let end: Request<u32> = Request::End;
        assert_eq!(call.kind(), "call");
        assert_eq!(query.kind(), "query");
        assert_eq!(sync.kind(), "sync");
        assert_eq!(end.kind(), "end");
        assert!(format!("{call:?}").contains("call"));
    }

    #[test]
    fn call_closure_mutates_object() {
        let req: Request<Vec<u32>> = Request::Call(Box::new(|v| v.push(9)));
        let mut obj = vec![1, 2];
        if let Request::Call(f) = req {
            f(&mut obj);
        }
        assert_eq!(obj, vec![1, 2, 9]);
    }

    #[test]
    fn sync_request_completes_handoff() {
        let handoff = Arc::new(Handoff::new());
        let req: Request<()> = Request::Sync(Arc::clone(&handoff));
        if let Request::Sync(h) = req {
            h.complete(());
        }
        assert!(handoff.is_ready());
    }
}
