//! Requests exchanged between clients and handlers.
//!
//! A request corresponds to one entry in a private queue (QoQ configuration)
//! or in the handler's single request queue (lock-based configuration).  The
//! paper packages asynchronous calls with libffi (§3.2, Fig. 9); the Rust
//! equivalent is a boxed `FnOnce` closure, which carries the captured
//! arguments on the heap exactly as the libffi call structure does.

use std::sync::Arc;

use qs_sync::Handoff;

/// A closure applied to the handler-owned object.
pub type CallFn<T> = Box<dyn FnOnce(&mut T) + Send + 'static>;

/// Producer-side guard of a request's result handoff, shared by sync tokens
/// (`R = ()`) and handler-executed/pipelined queries: either the request
/// executes and [`complete`](CompletionGuard::complete)s the handoff, or —
/// if it is dropped unexecuted (its mailbox abandoned mid-shutdown before
/// the handler reached it) or unwinds mid-execution (a panicking closure,
/// or a nested push failed by `DeadlockPolicy::Break`) — the drop abandons
/// it, waking the parked client into a panic instead of leaving it waiting
/// forever on a completion that will never come.
pub struct CompletionGuard<R: Send + 'static> {
    handoff: Option<Arc<Handoff<R>>>,
}

impl<R: Send + 'static> CompletionGuard<R> {
    pub(crate) fn new(handoff: Arc<Handoff<R>>) -> Self {
        CompletionGuard {
            handoff: Some(handoff),
        }
    }

    /// Deposits the result (for a sync token: the bare acknowledgement that
    /// every previous request from the client has been applied).
    pub(crate) fn complete(mut self, value: R) {
        self.handoff
            .take()
            .expect("a request completes at most once")
            .complete(value);
    }
}

impl<R: Send + 'static> Drop for CompletionGuard<R> {
    fn drop(&mut self) {
        if let Some(handoff) = self.handoff.take() {
            handoff.abandon();
        }
    }
}

/// One client request for a handler owning an object of type `T`.
pub enum Request<T> {
    /// An asynchronous command (`call` rule): execute the closure on the
    /// handler, no reply.
    Call(CallFn<T>),
    /// A handler-executed query (`query` rule without the §3.2 shift): the
    /// closure computes the result and completes the embedded handoff.
    Query(CallFn<T>),
    /// A synchronisation token (modified `query` rule of §3.2): the handler
    /// completes the handoff, signalling that every previous request from
    /// this client has been applied; the client then executes the query
    /// locally.
    Sync(CompletionGuard<()>),
    /// End of a group of requests (`end` rule).  Only used on the lock-based
    /// path, where the single request queue is shared by all clients and
    /// cannot be closed per-client; on the QoQ path the private queue's
    /// `close()` plays this role.
    End,
}

impl<T> Request<T> {
    /// A short label for tracing/debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Call(_) => "call",
            Request::Query(_) => "query",
            Request::Sync(_) => "sync",
            Request::End => "end",
        }
    }
}

impl<T> std::fmt::Debug for Request<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Request")
            .field("kind", &self.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_reported() {
        let call: Request<u32> = Request::Call(Box::new(|n| *n += 1));
        let query: Request<u32> = Request::Query(Box::new(|_| {}));
        let sync: Request<u32> = Request::Sync(CompletionGuard::new(Arc::new(Handoff::new())));
        let end: Request<u32> = Request::End;
        assert_eq!(call.kind(), "call");
        assert_eq!(query.kind(), "query");
        assert_eq!(sync.kind(), "sync");
        assert_eq!(end.kind(), "end");
        assert!(format!("{call:?}").contains("call"));
    }

    #[test]
    fn call_closure_mutates_object() {
        let req: Request<Vec<u32>> = Request::Call(Box::new(|v| v.push(9)));
        let mut obj = vec![1, 2];
        if let Request::Call(f) = req {
            f(&mut obj);
        }
        assert_eq!(obj, vec![1, 2, 9]);
    }

    #[test]
    fn sync_request_completes_handoff() {
        let handoff = Arc::new(Handoff::new());
        let req: Request<()> = Request::Sync(CompletionGuard::new(Arc::clone(&handoff)));
        if let Request::Sync(token) = req {
            token.complete(());
        }
        assert!(handoff.is_ready());
        assert!(!handoff.is_abandoned());
    }

    #[test]
    fn sync_request_dropped_unexecuted_abandons_the_handoff() {
        // A sync token lost to an abandoned mailbox (handler shut down
        // before reaching it) must wake its parked client into a panic, not
        // strand it forever.
        let handoff = Arc::new(Handoff::new());
        let req: Request<()> = Request::Sync(CompletionGuard::new(Arc::clone(&handoff)));
        drop(req);
        assert!(handoff.is_abandoned());
        assert!(!handoff.is_ready());
    }
}
