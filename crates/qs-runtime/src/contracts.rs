//! Contracts on separate objects: wait conditions and postconditions.
//!
//! The paper's motivation for SCOOP is that concurrent code should keep the
//! pre/postcondition reasoning of sequential code (§1, §2.2).  On a
//! *separate* target a precondition cannot simply fail — whether it holds
//! depends on what other clients have done — so SCOOP turns it into a **wait
//! condition**: the reservation is retried until the condition holds, and
//! once the body runs the condition is guaranteed because no other client's
//! requests can be interleaved with the block's (guarantee 2 of §2.2).
//!
//! The functions here implement that protocol on top of the queue-of-queues
//! runtime:
//!
//! * [`separate_when`] / [`try_separate_when`] — single-handler reservation
//!   guarded by a wait condition;
//! * [`separate2_when`] — a two-handler reservation guarded by a joint wait
//!   condition over both objects (the Fig. 5 consistency situation);
//! * [`check_postcondition`] / [`assert_postcondition`] — postcondition
//!   evaluation at the end of a block.
//!
//! A wait condition must be placed on the *reservation*, not inside an open
//! separate block: while a client's block is open the handler does not
//! process any other client, so a condition that depends on other clients'
//! progress could never become true — the classic way to build a deadlock
//! out of condition synchronisation.  The API makes the correct structure
//! the easy one: the condition is evaluated and the block body runs under
//! the same reservation, and between retries the reservation is released so
//! other clients can make the condition true.

use std::sync::Arc;

use qs_sync::Backoff;

use crate::handler::Handler;
use crate::reservation::separate2;
use crate::separate::Separate;
use crate::stats::RuntimeStats;

/// Retry policy for wait conditions.
#[derive(Debug, Clone, Copy)]
pub struct WaitConfig {
    /// Maximum number of failed condition evaluations before giving up;
    /// `None` retries forever (the SCOOP semantics).
    pub max_retries: Option<usize>,
    /// After this many spin-retries the client starts yielding the CPU
    /// between attempts.
    pub spin_retries: usize,
}

impl Default for WaitConfig {
    fn default() -> Self {
        WaitConfig {
            max_retries: None,
            spin_retries: 8,
        }
    }
}

impl WaitConfig {
    /// A policy that gives up after `max_retries` failed evaluations.
    pub fn bounded(max_retries: usize) -> Self {
        WaitConfig {
            max_retries: Some(max_retries),
            ..Default::default()
        }
    }
}

/// Returned by [`try_separate_when`] when the wait condition did not hold
/// within the configured retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout {
    /// How many times the condition was evaluated.
    pub attempts: usize,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wait condition still false after {} attempts", self.attempts)
    }
}

impl std::error::Error for WaitTimeout {}

/// Reserves `handler` once the wait condition holds, and runs `body` under
/// that same reservation.  Retries forever (releasing the reservation between
/// attempts so other clients can make the condition true).
pub fn separate_when<T, R>(
    handler: &Handler<T>,
    condition: impl Fn(&T) -> bool + Send + Sync + 'static,
    body: impl FnOnce(&mut Separate<'_, T>) -> R,
) -> R
where
    T: Send + 'static,
{
    match try_separate_when(handler, WaitConfig::default(), condition, body) {
        Ok(result) => result,
        Err(_) => unreachable!("unbounded wait config cannot time out"),
    }
}

/// Like [`separate_when`] but with an explicit retry policy.
pub fn try_separate_when<T, R>(
    handler: &Handler<T>,
    config: WaitConfig,
    condition: impl Fn(&T) -> bool + Send + Sync + 'static,
    body: impl FnOnce(&mut Separate<'_, T>) -> R,
) -> Result<R, WaitTimeout>
where
    T: Send + 'static,
{
    let condition = Arc::new(condition);
    let stats = Arc::clone(handler.stats());
    let mut body = Some(body);
    let mut attempts = 0usize;
    let backoff = Backoff::new();
    loop {
        attempts += 1;
        RuntimeStats::bump(&stats.wait_condition_checks);
        let outcome = handler.separate(|guard| {
            let predicate = Arc::clone(&condition);
            if guard.query(move |object| predicate(object)) {
                // The condition holds and, because the reservation stays
                // open, no other client can invalidate it before the body
                // has run (§2.2 guarantee 2).
                let body = body.take().expect("body consumed once");
                Some(body(guard))
            } else {
                None
            }
        });
        match outcome {
            Some(result) => return Ok(result),
            None => {
                RuntimeStats::bump(&stats.wait_condition_retries);
                if let Some(limit) = config.max_retries {
                    if attempts >= limit {
                        return Err(WaitTimeout { attempts });
                    }
                }
                if attempts <= config.spin_retries {
                    backoff.spin();
                } else {
                    std::thread::yield_now();
                    backoff.snooze();
                }
            }
        }
    }
}

/// Reserves two handlers atomically once the joint wait condition over both
/// objects holds, then runs `body` under that same reservation.
pub fn separate2_when<A, B, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    condition: impl Fn(&A, &B) -> bool + Send + Sync + 'static,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>) -> R,
) -> R
where
    A: Send + 'static,
    B: Send + 'static,
{
    match try_separate2_when(a, b, WaitConfig::default(), condition, body) {
        Ok(result) => result,
        Err(_) => unreachable!("unbounded wait config cannot time out"),
    }
}

/// Like [`separate2_when`] but with an explicit retry policy.
pub fn try_separate2_when<A, B, R>(
    a: &Handler<A>,
    b: &Handler<B>,
    config: WaitConfig,
    condition: impl Fn(&A, &B) -> bool + Send + Sync + 'static,
    body: impl FnOnce(&mut Separate<'_, A>, &mut Separate<'_, B>) -> R,
) -> Result<R, WaitTimeout>
where
    A: Send + 'static,
    B: Send + 'static,
{
    let stats = Arc::clone(a.stats());
    let mut body = Some(body);
    let mut attempts = 0usize;
    let backoff = Backoff::new();
    loop {
        attempts += 1;
        RuntimeStats::bump(&stats.wait_condition_checks);
        let outcome = separate2(a, b, |sa, sb| {
            // Evaluate the joint condition with both handlers synchronised:
            // after the two syncs both handlers are parked on this client's
            // (empty) private queues, so reading both objects together is
            // race-free and the pair is mutually consistent (Fig. 5).
            sa.sync();
            sb.sync();
            let holds = sa.query_unsynced(|object_a| {
                sb.query_unsynced(|object_b| condition(object_a, object_b))
            });
            if holds {
                let body = body.take().expect("body consumed once");
                Some(body(sa, sb))
            } else {
                None
            }
        });
        match outcome {
            Some(result) => return Ok(result),
            None => {
                RuntimeStats::bump(&stats.wait_condition_retries);
                if let Some(limit) = config.max_retries {
                    if attempts >= limit {
                        return Err(WaitTimeout { attempts });
                    }
                }
                if attempts <= config.spin_retries {
                    backoff.spin();
                } else {
                    std::thread::yield_now();
                    backoff.snooze();
                }
            }
        }
    }
}

/// Evaluates a postcondition at the current point of a separate block and
/// returns whether it holds.  All calls logged earlier in the block are
/// applied before the predicate runs (it is a query).
pub fn check_postcondition<T: Send + 'static>(
    guard: &mut Separate<'_, T>,
    predicate: impl Fn(&T) -> bool + Send + 'static,
) -> bool {
    let stats = Arc::clone(guard.stats());
    RuntimeStats::bump(&stats.postcondition_checks);
    let holds = guard.query(move |object| predicate(object));
    if !holds {
        RuntimeStats::bump(&stats.postcondition_failures);
    }
    holds
}

/// Like [`check_postcondition`] but panics with `message` when the
/// postcondition does not hold.
pub fn assert_postcondition<T: Send + 'static>(
    guard: &mut Separate<'_, T>,
    message: &str,
    predicate: impl Fn(&T) -> bool + Send + 'static,
) {
    assert!(
        check_postcondition(guard, predicate),
        "postcondition violated: {message}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizationLevel, RuntimeConfig};
    use crate::runtime::Runtime;

    #[derive(Default)]
    struct Buffer {
        items: Vec<u64>,
        capacity: usize,
    }

    #[test]
    fn producer_consumer_with_wait_conditions() {
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let buffer = rt.spawn_handler(Buffer {
                items: Vec::new(),
                capacity: 4,
            });
            let total_items = 200u64;

            let producer = {
                let buffer = buffer.clone();
                std::thread::spawn(move || {
                    for i in 0..total_items {
                        // Wait until there is room (bounded buffer).
                        separate_when(
                            &buffer,
                            |b: &Buffer| b.items.len() < b.capacity,
                            |guard| guard.call(move |b| b.items.push(i)),
                        );
                    }
                })
            };
            let consumer = {
                let buffer = buffer.clone();
                std::thread::spawn(move || {
                    let mut received = Vec::new();
                    while received.len() < total_items as usize {
                        // Wait until the buffer is non-empty, then drain it.
                        let batch = separate_when(
                            &buffer,
                            |b: &Buffer| !b.items.is_empty(),
                            |guard| guard.query(|b| std::mem::take(&mut b.items)),
                        );
                        received.extend(batch);
                    }
                    received
                })
            };

            producer.join().unwrap();
            let received = consumer.join().unwrap();
            assert_eq!(received, (0..total_items).collect::<Vec<_>>(), "level {level}");
            let snap = rt.stats_snapshot();
            assert!(snap.wait_condition_checks >= 2 * total_items);
        }
    }

    #[test]
    fn condition_already_true_runs_immediately() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(10u32);
        let doubled = separate_when(&cell, |n| *n >= 10, |guard| guard.query(|n| *n * 2));
        assert_eq!(doubled, 20);
        let snap = rt.stats_snapshot();
        assert_eq!(snap.wait_condition_retries, 0);
        assert_eq!(snap.wait_condition_checks, 1);
    }

    #[test]
    fn bounded_wait_times_out_when_nobody_helps() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(0u32);
        let result = try_separate_when(
            &cell,
            WaitConfig::bounded(5),
            |n| *n > 0,
            |guard| guard.query(|n| *n),
        );
        assert_eq!(result, Err(WaitTimeout { attempts: 5 }));
        assert!(rt.stats_snapshot().wait_condition_retries >= 5);
        assert!(WaitTimeout { attempts: 5 }.to_string().contains("5 attempts"));
    }

    #[test]
    fn wait_condition_released_between_retries_lets_others_progress() {
        // A waiter needs the flag to become true; a helper sets it after a
        // while.  If the waiter held its reservation while waiting this would
        // deadlock — the test passing is evidence the reservation is released
        // between attempts.
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let flag = rt.spawn_handler(false);
        let helper = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.call_detached(|f| *f = true);
            })
        };
        let observed = separate_when(&flag, |f| *f, |guard| guard.query(|f| *f));
        assert!(observed);
        helper.join().unwrap();
    }

    #[test]
    fn two_handler_wait_condition_sees_consistent_pair() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let source = rt.spawn_handler(100i64);
        let target = rt.spawn_handler(0i64);

        // Move money only when the source can afford it.
        let mover = {
            let (source, target) = (source.clone(), target.clone());
            std::thread::spawn(move || {
                for _ in 0..10 {
                    separate2_when(
                        &source,
                        &target,
                        |s, _t| *s >= 10,
                        |ss, st| {
                            ss.call(|s| *s -= 10);
                            st.call(|t| *t += 10);
                        },
                    );
                }
            })
        };
        mover.join().unwrap();
        let total = separate2(&source, &target, |ss, st| ss.query(|s| *s) + st.query(|t| *t));
        assert_eq!(total, 100);
        assert_eq!(target.query_detached(|t| *t), 100);
    }

    #[test]
    fn two_handler_bounded_wait_times_out() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(0u32);
        let result = try_separate2_when(
            &a,
            &b,
            WaitConfig::bounded(3),
            |x, y| *x + *y > 0,
            |_, _| 1u32,
        );
        assert_eq!(result, Err(WaitTimeout { attempts: 3 }));
    }

    #[test]
    fn postconditions_are_counted_and_asserted() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let account = rt.spawn_handler(50i64);
        account.separate(|guard| {
            guard.call(|balance| *balance += 25);
            assert!(check_postcondition(guard, |balance| *balance == 75));
            assert!(!check_postcondition(guard, |balance| *balance < 0));
            assert_postcondition(guard, "balance stays positive", |balance| *balance > 0);
        });
        let snap = rt.stats_snapshot();
        assert_eq!(snap.postcondition_checks, 3);
        assert_eq!(snap.postcondition_failures, 1);
    }

    #[test]
    #[should_panic(expected = "postcondition violated: never negative")]
    fn failed_assert_postcondition_panics() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(-1i32);
        cell.separate(|guard| {
            assert_postcondition(guard, "never negative", |n| *n >= 0);
        });
    }

    #[test]
    fn wait_conditions_work_on_every_optimization_level() {
        for level in [
            OptimizationLevel::None,
            OptimizationLevel::Dynamic,
            OptimizationLevel::Static,
            OptimizationLevel::QoQ,
            OptimizationLevel::All,
        ] {
            let rt = Runtime::new(level.config());
            let counter = rt.spawn_handler(0u32);
            let adder = {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        counter.call_detached(|n| *n += 1);
                    }
                })
            };
            let observed = separate_when(&counter, |n| *n >= 50, |guard| guard.query(|n| *n));
            assert!(observed >= 50, "level {level}");
            adder.join().unwrap();
        }
    }
}
