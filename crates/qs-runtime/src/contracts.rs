//! Contracts on separate objects: wait conditions and postconditions.
//!
//! The paper's motivation for SCOOP is that concurrent code should keep the
//! pre/postcondition reasoning of sequential code (§1, §2.2).  On a
//! *separate* target a precondition cannot simply fail — whether it holds
//! depends on what other clients have done — so SCOOP turns it into a **wait
//! condition**: the reservation is retried until the condition holds, and
//! once the body runs the condition is guaranteed because no other client's
//! requests can be interleaved with the block's (guarantee 2 of §2.2).
//!
//! Wait conditions are expressed through the unified reservation builder:
//! `reserve(set).when(condition)` — see [`crate::reserve`].  This module
//! provides the retry policy ([`WaitConfig`]), the timeout error
//! ([`WaitTimeout`]), and postcondition evaluation at the end of a block
//! ([`check_postcondition`] / [`assert_postcondition`]).
//!
//! A wait condition must be placed on the *reservation*, not inside an open
//! separate block: while a client's block is open the handler does not
//! process any other client, so a condition that depends on other clients'
//! progress could never become true — the classic way to build a deadlock
//! out of condition synchronisation.  The API makes the correct structure
//! the easy one: the condition is evaluated and the block body runs under
//! the same reservation, and between retries the reservation is released so
//! other clients can make the condition true.

use std::sync::Arc;
use std::time::Duration;

use crate::separate::Separate;
use crate::stats::RuntimeStats;

/// Retry policy for wait conditions.
#[derive(Debug, Clone, Copy)]
pub struct WaitConfig {
    /// Maximum number of failed condition evaluations before giving up;
    /// `None` retries forever (the SCOOP semantics).
    pub max_retries: Option<usize>,
    /// Maximum wall-clock time to keep retrying; `None` never expires.
    pub max_wait: Option<Duration>,
    /// After this many spin-retries the client starts yielding the CPU
    /// between attempts.
    pub spin_retries: usize,
}

impl Default for WaitConfig {
    fn default() -> Self {
        WaitConfig {
            max_retries: None,
            max_wait: None,
            spin_retries: 8,
        }
    }
}

impl WaitConfig {
    /// A policy that gives up after `max_retries` failed evaluations.
    pub fn bounded(max_retries: usize) -> Self {
        WaitConfig {
            max_retries: Some(max_retries),
            ..Default::default()
        }
    }

    /// A policy that gives up once `max_wait` wall-clock time has elapsed.
    pub fn wall_clock(max_wait: Duration) -> Self {
        WaitConfig {
            max_wait: Some(max_wait),
            ..Default::default()
        }
    }
}

/// Returned by a bounded reservation (`reserve(...).timeout(...)`) when the
/// wait condition did not hold within the configured budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout {
    /// How many times the condition was evaluated.
    pub attempts: usize,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wait condition still false after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for WaitTimeout {}

/// Evaluates a postcondition at the current point of a separate block and
/// returns whether it holds.  All calls logged earlier in the block are
/// applied before the predicate runs (it is a query).
pub fn check_postcondition<T: Send + 'static>(
    guard: &mut Separate<'_, T>,
    predicate: impl Fn(&T) -> bool + Send + 'static,
) -> bool {
    let stats = Arc::clone(guard.stats());
    RuntimeStats::bump(&stats.postcondition_checks);
    let holds = guard.query(move |object| predicate(object));
    if !holds {
        RuntimeStats::bump(&stats.postcondition_failures);
    }
    holds
}

/// Like [`check_postcondition`] but panics with `message` when the
/// postcondition does not hold.
pub fn assert_postcondition<T: Send + 'static>(
    guard: &mut Separate<'_, T>,
    message: &str,
    predicate: impl Fn(&T) -> bool + Send + 'static,
) {
    assert!(
        check_postcondition(guard, predicate),
        "postcondition violated: {message}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizationLevel, RuntimeConfig};
    use crate::reserve::reserve;
    use crate::runtime::Runtime;

    #[derive(Default)]
    struct Buffer {
        items: Vec<u64>,
        capacity: usize,
    }

    #[test]
    fn producer_consumer_with_wait_conditions() {
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let buffer = rt.spawn_handler(Buffer {
                items: Vec::new(),
                capacity: 4,
            });
            let total_items = 200u64;

            let producer = {
                let buffer = buffer.clone();
                std::thread::spawn(move || {
                    for i in 0..total_items {
                        // Wait until there is room (bounded buffer).
                        reserve(&buffer)
                            .when(|b: &Buffer| b.items.len() < b.capacity)
                            .run(|guard| guard.call(move |b| b.items.push(i)));
                    }
                })
            };
            let consumer = {
                let buffer = buffer.clone();
                std::thread::spawn(move || {
                    let mut received = Vec::new();
                    while received.len() < total_items as usize {
                        // Wait until the buffer is non-empty, then drain it.
                        let batch = reserve(&buffer)
                            .when(|b: &Buffer| !b.items.is_empty())
                            .run(|guard| guard.query(|b| std::mem::take(&mut b.items)));
                        received.extend(batch);
                    }
                    received
                })
            };

            producer.join().unwrap();
            let received = consumer.join().unwrap();
            assert_eq!(
                received,
                (0..total_items).collect::<Vec<_>>(),
                "level {level}"
            );
            let snap = rt.stats_snapshot();
            // The producer alone evaluates the condition once per item; the
            // consumer adds at least one check per drained batch (how many
            // depends on scheduling, so no exact bound).
            assert!(snap.wait_condition_checks > total_items);
        }
    }

    #[test]
    fn condition_already_true_runs_immediately() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(10u32);
        let doubled = reserve(&cell)
            .when(|n: &u32| *n >= 10)
            .run(|guard| guard.query(|n| *n * 2));
        assert_eq!(doubled, 20);
        let snap = rt.stats_snapshot();
        assert_eq!(snap.wait_condition_retries, 0);
        assert_eq!(snap.wait_condition_checks, 1);
    }

    #[test]
    fn bounded_wait_times_out_when_nobody_helps() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(0u32);
        let result = reserve(&cell)
            .when(|n: &u32| *n > 0)
            .timeout(WaitConfig::bounded(5))
            .try_run(|guard| guard.query(|n| *n));
        assert_eq!(result, Err(WaitTimeout { attempts: 5 }));
        assert!(rt.stats_snapshot().wait_condition_retries >= 5);
        assert!(WaitTimeout { attempts: 5 }
            .to_string()
            .contains("5 attempts"));
    }

    #[test]
    fn wait_condition_released_between_retries_lets_others_progress() {
        // A waiter needs the flag to become true; a helper sets it after a
        // while.  If the waiter held its reservation while waiting this would
        // deadlock — the test passing is evidence the reservation is released
        // between attempts.
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let flag = rt.spawn_handler(false);
        let helper = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.call_detached(|f| *f = true);
            })
        };
        let observed = reserve(&flag)
            .when(|f: &bool| *f)
            .run(|guard| guard.query(|f| *f));
        assert!(observed);
        helper.join().unwrap();
    }

    #[test]
    fn two_handler_wait_condition_sees_consistent_pair() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let source = rt.spawn_handler(100i64);
        let target = rt.spawn_handler(0i64);

        // Move money only when the source can afford it.
        let mover = {
            let (source, target) = (source.clone(), target.clone());
            std::thread::spawn(move || {
                for _ in 0..10 {
                    reserve((&source, &target))
                        .when(|s: &i64, _t: &i64| *s >= 10)
                        .run(|(ss, st)| {
                            ss.call(|s| *s -= 10);
                            st.call(|t| *t += 10);
                        });
                }
            })
        };
        mover.join().unwrap();
        let total = reserve((&source, &target)).run(|(ss, st)| ss.query(|s| *s) + st.query(|t| *t));
        assert_eq!(total, 100);
        assert_eq!(target.query_detached(|t| *t), 100);
    }

    #[test]
    fn postconditions_are_counted_and_asserted() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let account = rt.spawn_handler(50i64);
        account.separate(|guard| {
            guard.call(|balance| *balance += 25);
            assert!(check_postcondition(guard, |balance| *balance == 75));
            assert!(!check_postcondition(guard, |balance| *balance < 0));
            assert_postcondition(guard, "balance stays positive", |balance| *balance > 0);
        });
        let snap = rt.stats_snapshot();
        assert_eq!(snap.postcondition_checks, 3);
        assert_eq!(snap.postcondition_failures, 1);
    }

    #[test]
    #[should_panic(expected = "postcondition violated: never negative")]
    fn failed_assert_postcondition_panics() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(-1i32);
        cell.separate(|guard| {
            assert_postcondition(guard, "never negative", |n| *n >= 0);
        });
    }

    #[test]
    fn wait_conditions_work_on_every_optimization_level() {
        for level in [
            OptimizationLevel::None,
            OptimizationLevel::Dynamic,
            OptimizationLevel::Static,
            OptimizationLevel::QoQ,
            OptimizationLevel::All,
        ] {
            let rt = Runtime::new(level.config());
            let counter = rt.spawn_handler(0u32);
            let adder = {
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        counter.call_detached(|n| *n += 1);
                    }
                })
            };
            let observed = reserve(&counter)
                .when(|n: &u32| *n >= 50)
                .run(|guard| guard.query(|n| *n));
            assert!(observed >= 50, "level {level}");
            adder.join().unwrap();
        }
    }
}
