//! Shared-read reservations: commutativity-aware concurrency on hot
//! handlers.
//!
//! An exclusive reservation serialises *all* clients of a handler, even when
//! every one of them only reads — queries commute, so serialising them buys
//! nothing and costs a full reservation round-trip per client.  A
//! **shared-read reservation** ([`crate::reserve`]`(&h).read()`, or a
//! [`read`]`(&h)` member inside a multi-handler set) instead takes the
//! handler object's reader–writer gate ([`qs_sync::ReadGate`]) in read mode:
//! any number of readers hold it concurrently, and they query the object
//! *directly* on the client thread — zero queue crossings, zero handler
//! involvement, which is where the throughput win on read-mostly workloads
//! comes from.
//!
//! Safety comes from the gate, not the queues: every `&mut` access to the
//! object — the handler main loop applying a batch, a client-executed query
//! under an exclusive reservation — first takes the gate in write mode and
//! therefore excludes all readers (and vice versa).  The gate is
//! writer-preferring: once a writer announces itself, new readers are
//! refused until it gets through, so a steady read stream cannot starve
//! writes.
//!
//! Within a read block only commuting operations are available:
//! [`query`](ReadSeparate::query), [`query_async`](ReadSeparate::query_async)
//! and [`peek`](ReadSeparate::peek).  Commands are rejected with
//! [`MailboxError::ReadOnlyReservation`] — a read reservation never silently
//! upgrades to exclusive access.
//!
//! Deadlock integration: a reader blocked behind an announced writer
//! registers a [`ReadWait`](qs_deadlock::EdgeKind::ReadWait) edge (breakable
//! — the acquisition aborts with a [`MailboxError::DeadlockBroken`] panic
//! when the `Break` policy fails it), and a writer blocked behind readers
//! registers one [`WriterWait`](qs_deadlock::EdgeKind::WriterWait) edge per
//! concrete read holder, so reader/writer cycles are named, reported and
//! breakable like every other wait in the runtime.

use std::sync::Arc;

use qs_deadlock::{EdgeKind, WakerFn};
use qs_sync::{GateWake, Parker};

use crate::deadlock::current_waiter;
use crate::handler::{Handler, HandlerCore};
use crate::separate::{MailboxError, QueryToken};
use crate::stats::RuntimeStats;

/// Marks one member of a reservation set as shared-read: the builder
/// acquires the handler's gate in read mode instead of performing an
/// exclusive registration.
///
/// Obtained from [`read`] (for tuple members) or
/// [`crate::Reservation::read`] (for the single-handler form).  The marker
/// is `Copy` so reservation-set tuples stay as cheap to build as handler
/// references.
pub struct Read<'h, T: Send + 'static> {
    pub(crate) handler: &'h Handler<T>,
}

impl<T: Send + 'static> Clone for Read<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Send + 'static> Copy for Read<'_, T> {}

/// Marks a member of a reservation-set tuple as shared-read.
///
/// ```
/// use qs_runtime::{read, reserve, Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(RuntimeConfig::all_optimizations());
/// let config = rt.spawn_handler(10u64);
/// let audit = rt.spawn_handler(Vec::<u64>::new());
/// // `config` is only read — many clients can hold it concurrently while
/// // each appends to its own exclusive `audit` reservation.
/// reserve((read(&config), &audit)).run(|(cfg, log)| {
///     let threshold = cfg.query(|t| *t);
///     log.call(move |entries| entries.push(threshold));
/// });
/// ```
pub fn read<T: Send + 'static>(handler: &Handler<T>) -> Read<'_, T> {
    Read { handler }
}

/// Shared-read reservation guard for one handler within a separate block.
///
/// The read-mode counterpart of [`crate::Separate`]: obtained through
/// [`crate::reserve`]`(&h).read()` or a [`read`]-marked member of a
/// reservation set.  Holds the handler object's gate in read mode for the
/// duration of the block; queries execute directly on the client thread.
/// Not `Send`, like every reservation guard.
pub struct ReadSeparate<'a, T: Send + 'static> {
    core: &'a Arc<HandlerCore<T>>,
    /// This client's deadlock-tracking identity while registered as a read
    /// holder (tracking on and the gate-read held).
    holder: Option<qs_deadlock::ParticipantId>,
    /// Whether the gate is currently held in read mode by this guard.
    active: bool,
    /// Prevents `Send`/`Sync` auto-derivation.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<'a, T: Send + 'static> ReadSeparate<'a, T> {
    /// Begins a single-handler read reservation (the `reserve(&h).read()`
    /// fast path): no registration machinery, just the gate.
    pub(crate) fn begin_single(core: &'a Arc<HandlerCore<T>>) -> Self {
        RuntimeStats::bump(&core.stats.separate_blocks);
        let mut guard = Self::attach(core);
        guard.activate();
        guard
    }

    /// Creates the guard without acquiring the gate; the reservation
    /// protocol calls [`activate`](Self::activate) after every exclusive
    /// registration in the set has been released (acquiring a gate inside
    /// the registration's spinlocks could deadlock undetectably).  The
    /// set-level statistics were already recorded by the registration.
    pub(crate) fn attach(core: &'a Arc<HandlerCore<T>>) -> Self {
        ReadSeparate {
            core,
            holder: None,
            active: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Acquires the gate in read mode, blocking behind an active or
    /// announced writer.
    ///
    /// The blocking interval registers a breakable `ReadWait` wait-for
    /// edge; when the deadlock detector's `Break` policy fails it, the
    /// acquisition panics with [`MailboxError::DeadlockBroken`] instead of
    /// deadlocking.
    pub(crate) fn activate(&mut self) {
        debug_assert!(!self.active, "read reservation activated twice");
        if !self.core.gate.try_read() {
            self.block_for_read();
        }
        self.active = true;
        if let Some(tracking) = self.core.deadlock.as_ref() {
            let client = current_waiter(&tracking.registry);
            self.core.register_read_holder(client);
            self.holder = Some(client);
        }
        RuntimeStats::bump(&self.core.stats.read_reservations);
        RuntimeStats::bump_max(
            &self.core.stats.peak_concurrent_readers,
            u64::from(self.core.gate.readers()),
        );
    }

    /// The slow path of [`activate`](Self::activate): park until the gate
    /// admits readers again, honouring a deadlock-detector break.
    #[cold]
    fn block_for_read(&mut self) {
        let parker = Arc::new(Parker::new());
        // Breakable ReadWait edge: "this client is blocked until the
        // reserved handler's writer (the handler itself, or a client
        // mutating under an exclusive reservation) gets through and
        // leaves".  The probe re-validates writer contention at scan time;
        // the waker unparks us after a break.
        let edge = self.core.deadlock.as_ref().map(|tracking| {
            let waiter = current_waiter(&tracking.registry);
            let gate = Arc::clone(&self.core.gate);
            let wake_parker = Arc::clone(&parker);
            tracking.registry.register(
                waiter,
                tracking.participant,
                EdgeKind::ReadWait,
                Some(Arc::new(move || wake_parker.wake()) as WakerFn),
                Some(Arc::new(move || gate.writer_contended()) as qs_deadlock::ProbeFn),
            )
        });
        loop {
            if self.core.gate.try_read() {
                return;
            }
            if edge.as_ref().is_some_and(|edge| edge.is_broken()) {
                RuntimeStats::bump(&self.core.stats.deadlocks_broken);
                std::panic::panic_any(MailboxError::DeadlockBroken {
                    handler: self.core.id,
                });
            }
            // Lost-wake protocol: enlist, then re-try — either the retry
            // sees the gate free, or the releasing writer sees the waiter.
            self.core
                .gate
                .enlist(false, GateWake::Parker(Arc::clone(&parker)));
            if self.core.gate.try_read() {
                return;
            }
            let gate = &self.core.gate;
            let broken = &edge;
            parker.park_until(|| {
                !gate.writer_contended() || broken.as_ref().is_some_and(|edge| edge.is_broken())
            });
        }
    }

    /// Performs a query directly on the client thread and returns its
    /// result.
    ///
    /// No sync, no round-trip, no handler involvement: the gate-read hold
    /// guarantees no writer is mutating the object, so the closure reads it
    /// in place.  Because nothing crosses threads, the closure needs
    /// neither `Send` nor `'static`.
    pub fn query<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        RuntimeStats::bump(&self.core.stats.queries_client_executed);
        // SAFETY: this guard holds the gate in read mode; every `&mut` site
        // takes the gate in write mode first, so only other readers can be
        // touching the object concurrently.
        let object = unsafe { self.core.object_ref() };
        f(object)
    }

    /// The pipelined-query form, for API parity with
    /// [`crate::Separate::query_async`].
    ///
    /// Readers hold the object directly, so the query executes eagerly on
    /// this thread and the returned token is born completed:
    /// [`QueryToken::wait`] never blocks.
    pub fn query_async<R: Send + 'static>(&self, f: impl FnOnce(&T) -> R) -> QueryToken<R> {
        QueryToken::ready(self.query(f))
    }

    /// Reads the handler-owned object directly.  The borrow keeps the guard
    /// (and with it the gate-read hold) borrowed, so no writer can intervene
    /// while it is alive.
    pub fn peek(&self) -> &T {
        debug_assert!(self.active, "peek on an unactivated read reservation");
        // SAFETY: as in `query`; the returned lifetime is tied to `self`.
        unsafe { self.core.object_ref() }
    }

    /// Commands are not available through a read reservation: returns
    /// [`MailboxError::ReadOnlyReservation`] without enqueueing anything.
    ///
    /// The closure is accepted (and dropped) so call sites discover the
    /// misuse by switching a reservation from exclusive to read without
    /// rewriting every line — the error, not a type mismatch per call,
    /// tells them which operation needs the exclusive mode back.
    pub fn call(&self, _f: impl FnOnce(&mut T) + Send + 'static) -> Result<(), MailboxError> {
        Err(MailboxError::ReadOnlyReservation {
            handler: self.core.id,
        })
    }

    /// Non-blocking command form; rejected exactly like
    /// [`call`](Self::call).
    pub fn try_call(&self, f: impl FnOnce(&mut T) + Send + 'static) -> Result<(), MailboxError> {
        self.call(f)
    }

    /// The identifier of the reserved handler.
    pub fn handler_id(&self) -> crate::HandlerId {
        self.core.id
    }

    /// The runtime statistics block shared by the reserved handler.
    pub fn stats(&self) -> &Arc<RuntimeStats> {
        &self.core.stats
    }
}

impl<T: Send + 'static> Drop for ReadSeparate<'_, T> {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if let Some(holder) = self.holder.take() {
            self.core.deregister_read_holder(holder);
        }
        self.core.gate.end_read();
    }
}
