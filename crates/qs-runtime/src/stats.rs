//! Runtime statistics.
//!
//! §7 of the paper calls for "a SCOOP-specific instrumentation for the
//! runtime, providing detailed measurements for the internal components".
//! The counters here are cheap relaxed atomics and are used by the
//! experiment harness to report, e.g., how many sync round-trips each
//! optimisation level eliminates (the mechanism behind Fig. 16).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of batch-size histogram buckets; bucket `i` counts drained batches
/// whose size falls in [`batch_bucket_range`]`(i)`.
pub const BATCH_SIZE_BUCKETS: usize = 7;

/// The inclusive `(lo, hi)` batch-size range of histogram bucket `index`
/// (`hi = u64::MAX` for the open-ended last bucket): 1, 2, 3–4, 5–8, 9–16,
/// 17–32, 33+.
pub fn batch_bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (1, 1),
        1 => (2, 2),
        2 => (3, 4),
        3 => (5, 8),
        4 => (9, 16),
        5 => (17, 32),
        _ => (33, u64::MAX),
    }
}

fn batch_bucket_index(size: usize) -> usize {
    match size {
        0..=1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

/// Shared, monotonically increasing counters describing runtime activity.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Asynchronous calls enqueued on private queues / request queues.
    pub calls_enqueued: AtomicU64,
    /// Queries executed on the client after a sync (§3.2 optimisation).
    pub queries_client_executed: AtomicU64,
    /// Queries packaged, sent to and executed by the handler.
    pub queries_handler_executed: AtomicU64,
    /// Asynchronous (pipelined) queries logged via `query_async`.
    pub queries_pipelined: AtomicU64,
    /// Sync round-trips actually performed (client blocked on the handler).
    pub syncs_performed: AtomicU64,
    /// Sync operations elided by dynamic or static coalescing.
    pub syncs_elided: AtomicU64,
    /// Separate blocks entered (single reservations).
    pub separate_blocks: AtomicU64,
    /// Multi-handler reservations performed.
    pub multi_reservations: AtomicU64,
    /// Private queues enqueued into queue-of-queues.
    pub private_queues_enqueued: AtomicU64,
    /// Handlers spawned.
    pub handlers_spawned: AtomicU64,
    /// Calls whose execution panicked on the handler.
    pub call_panics: AtomicU64,
    /// Wait-condition evaluations performed at reservation time (§2 contracts).
    pub wait_condition_checks: AtomicU64,
    /// Reservations retried because their wait condition did not (yet) hold.
    pub wait_condition_retries: AtomicU64,
    /// Guard signals delivered to parked wait-condition waiters (one per
    /// waiter per signalling event; conservative, so a signal does not imply
    /// the condition now holds).
    pub guard_signals: AtomicU64,
    /// Parked wait-condition waiters woken by a guard signal into a
    /// re-evaluation.  `guard_signals - guard_wakeups` is the portion of
    /// conservative signalling that found the waiter already awake (spurious
    /// from the parking perspective); wakeups not followed by a successful
    /// round show up as `wait_condition_retries`.
    pub guard_wakeups: AtomicU64,
    /// Postcondition checks evaluated.
    pub postcondition_checks: AtomicU64,
    /// Postcondition checks that failed.
    pub postcondition_failures: AtomicU64,
    /// Batches drained from mailboxes by handler main loops.
    pub batches_drained: AtomicU64,
    /// Requests delivered inside drained batches.
    pub batch_requests_drained: AtomicU64,
    /// Requests (calls and handler-executed/pipelined queries) actually
    /// applied to a handler-owned object.
    pub requests_executed: AtomicU64,
    /// Enqueues that had to wait for mailbox space (bounded mailboxes only).
    pub backpressure_stalls: AtomicU64,
    /// Non-blocking `try_call`s rejected because the bounded mailbox was
    /// full.
    pub backpressure_rejections: AtomicU64,
    /// Pooled scheduling: idle→scheduled transitions (a producer's wake
    /// hook re-armed a parked handler).
    pub handler_wakeups: AtomicU64,
    /// Pooled scheduling: steps that exhausted their request budget and
    /// yielded the worker with work still pending.
    pub handler_yields: AtomicU64,
    /// Pooled scheduling: producer wakes that carried
    /// `WakeReason::Pressure` (a push crossed a bounded mailbox's half-full
    /// watermark or blocked for space), routing the handler through the
    /// scheduler's priority lane.
    pub pressure_wakes: AtomicU64,
    /// Pooled scheduling: yield budgets shrunk to one batch because the
    /// handler's mailbox reported backpressure.
    pub budget_shrinks: AtomicU64,
    /// Wait-for cycles confirmed by the deadlock detector (one per distinct
    /// cycle; requires `DeadlockPolicy::Report` or `Break`).
    pub deadlocks_detected: AtomicU64,
    /// Blocked bounded pushes failed by `DeadlockPolicy::Break` to unwind a
    /// confirmed cycle.
    pub deadlocks_broken: AtomicU64,
    /// Shared-read reservations acquired (`reserve(&h).read()` and
    /// read-marked members of tuple/slice sets).
    pub read_reservations: AtomicU64,
    /// High-water mark of concurrent read holds observed on any single
    /// handler's gate (a level, not a count — `since()` keeps the later
    /// snapshot's value).
    pub peak_concurrent_readers: AtomicU64,
    /// Handler main-loop steps that found their object's gate held by
    /// readers and had to wait (announcing writer preference) before
    /// applying a drained batch.
    pub writer_waits: AtomicU64,
    /// Histogram of drained batch sizes; see [`batch_bucket_range`].
    pub batch_size_buckets: [AtomicU64; BATCH_SIZE_BUCKETS],
}

impl RuntimeStats {
    /// Creates a zeroed statistics block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Increment helper used throughout the runtime.
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises a high-water-mark counter to `value` if it is below it.
    #[inline]
    pub(crate) fn bump_max(counter: &AtomicU64, value: u64) {
        counter.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one drained batch of `size` requests.
    #[inline]
    pub(crate) fn record_batch(&self, size: usize) {
        self.batches_drained.fetch_add(1, Ordering::Relaxed);
        self.batch_requests_drained
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_size_buckets[batch_bucket_index(size)].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            calls_enqueued: self.calls_enqueued.load(Ordering::Relaxed),
            queries_client_executed: self.queries_client_executed.load(Ordering::Relaxed),
            queries_handler_executed: self.queries_handler_executed.load(Ordering::Relaxed),
            queries_pipelined: self.queries_pipelined.load(Ordering::Relaxed),
            syncs_performed: self.syncs_performed.load(Ordering::Relaxed),
            syncs_elided: self.syncs_elided.load(Ordering::Relaxed),
            separate_blocks: self.separate_blocks.load(Ordering::Relaxed),
            multi_reservations: self.multi_reservations.load(Ordering::Relaxed),
            private_queues_enqueued: self.private_queues_enqueued.load(Ordering::Relaxed),
            handlers_spawned: self.handlers_spawned.load(Ordering::Relaxed),
            call_panics: self.call_panics.load(Ordering::Relaxed),
            wait_condition_checks: self.wait_condition_checks.load(Ordering::Relaxed),
            wait_condition_retries: self.wait_condition_retries.load(Ordering::Relaxed),
            guard_signals: self.guard_signals.load(Ordering::Relaxed),
            guard_wakeups: self.guard_wakeups.load(Ordering::Relaxed),
            postcondition_checks: self.postcondition_checks.load(Ordering::Relaxed),
            postcondition_failures: self.postcondition_failures.load(Ordering::Relaxed),
            batches_drained: self.batches_drained.load(Ordering::Relaxed),
            batch_requests_drained: self.batch_requests_drained.load(Ordering::Relaxed),
            requests_executed: self.requests_executed.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            backpressure_rejections: self.backpressure_rejections.load(Ordering::Relaxed),
            handler_wakeups: self.handler_wakeups.load(Ordering::Relaxed),
            handler_yields: self.handler_yields.load(Ordering::Relaxed),
            pressure_wakes: self.pressure_wakes.load(Ordering::Relaxed),
            budget_shrinks: self.budget_shrinks.load(Ordering::Relaxed),
            deadlocks_detected: self.deadlocks_detected.load(Ordering::Relaxed),
            deadlocks_broken: self.deadlocks_broken.load(Ordering::Relaxed),
            read_reservations: self.read_reservations.load(Ordering::Relaxed),
            peak_concurrent_readers: self.peak_concurrent_readers.load(Ordering::Relaxed),
            writer_waits: self.writer_waits.load(Ordering::Relaxed),
            scheduler_steals: 0,
            monitor_scans: 0,
            batch_size_buckets: std::array::from_fn(|i| {
                self.batch_size_buckets[i].load(Ordering::Relaxed)
            }),
        }
    }
}

/// A plain-data copy of [`RuntimeStats`] at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Asynchronous calls enqueued.
    pub calls_enqueued: u64,
    /// Queries executed client-side.
    pub queries_client_executed: u64,
    /// Queries executed handler-side.
    pub queries_handler_executed: u64,
    /// Pipelined queries logged without blocking (`query_async`).
    pub queries_pipelined: u64,
    /// Sync round-trips performed.
    pub syncs_performed: u64,
    /// Syncs elided by coalescing.
    pub syncs_elided: u64,
    /// Separate blocks entered.
    pub separate_blocks: u64,
    /// Multi-handler reservations.
    pub multi_reservations: u64,
    /// Private queues enqueued into queue-of-queues.
    pub private_queues_enqueued: u64,
    /// Handlers spawned.
    pub handlers_spawned: u64,
    /// Panicking calls.
    pub call_panics: u64,
    /// Wait-condition evaluations performed at reservation time.
    pub wait_condition_checks: u64,
    /// Reservations retried because their wait condition did not hold.
    pub wait_condition_retries: u64,
    /// Guard signals delivered to parked wait-condition waiters (per waiter
    /// per signalling event; conservative).
    pub guard_signals: u64,
    /// Parked wait-condition waiters woken by a guard signal into a
    /// re-evaluation.
    pub guard_wakeups: u64,
    /// Postcondition checks evaluated.
    pub postcondition_checks: u64,
    /// Postcondition checks that failed.
    pub postcondition_failures: u64,
    /// Batches drained from mailboxes by handler main loops.
    pub batches_drained: u64,
    /// Requests delivered inside drained batches.
    pub batch_requests_drained: u64,
    /// Requests (calls and handler-executed/pipelined queries) applied to a
    /// handler-owned object.
    pub requests_executed: u64,
    /// Enqueues that had to wait for mailbox space (bounded mailboxes only).
    pub backpressure_stalls: u64,
    /// Non-blocking `try_call`s rejected on a full bounded mailbox.
    pub backpressure_rejections: u64,
    /// Pooled scheduling: idle→scheduled handler transitions.
    pub handler_wakeups: u64,
    /// Pooled scheduling: steps that yielded on an exhausted budget.
    pub handler_yields: u64,
    /// Pooled scheduling: pressure wakes fired by bounded-mailbox producers
    /// at or past the half-full watermark (or blocking for space).
    pub pressure_wakes: u64,
    /// Pooled scheduling: yield budgets shrunk under mailbox backpressure.
    pub budget_shrinks: u64,
    /// Wait-for cycles confirmed by the deadlock detector.
    pub deadlocks_detected: u64,
    /// Blocked bounded pushes failed by `DeadlockPolicy::Break`.
    pub deadlocks_broken: u64,
    /// Shared-read reservations acquired.
    pub read_reservations: u64,
    /// High-water mark of concurrent read holds on any one handler's gate.
    /// A level, not a count: [`since`](StatsSnapshot::since) keeps the later
    /// snapshot's value instead of subtracting.
    pub peak_concurrent_readers: u64,
    /// Handler steps that had to wait for readers before applying a batch.
    pub writer_waits: u64,
    /// Pooled scheduling: tasks stolen across scheduler workers.  Tracked by
    /// the scheduler, merged in by [`crate::Runtime::stats_snapshot`]; zero
    /// in a snapshot taken directly from [`RuntimeStats`].
    pub scheduler_steals: u64,
    /// Full cycle-detection scans the deadlock monitor has run (adaptive
    /// tick; skipped idle ticks not included).  Tracked by the monitor,
    /// merged in by [`crate::Runtime::stats_snapshot`]; zero in a snapshot
    /// taken directly from [`RuntimeStats`].
    pub monitor_scans: u64,
    /// Histogram of drained batch sizes; see [`batch_bucket_range`].
    pub batch_size_buckets: [u64; BATCH_SIZE_BUCKETS],
}

impl StatsSnapshot {
    /// Total number of queries, independent of where they executed.
    pub fn total_queries(&self) -> u64 {
        self.queries_client_executed + self.queries_handler_executed + self.queries_pipelined
    }

    /// Mean number of requests per drained batch (0.0 before any batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches_drained == 0 {
            0.0
        } else {
            self.batch_requests_drained as f64 / self.batches_drained as f64
        }
    }

    /// Fraction of sync operations that were elided (0.0 if none occurred).
    pub fn sync_elision_ratio(&self) -> f64 {
        let total = self.syncs_performed + self.syncs_elided;
        if total == 0 {
            0.0
        } else {
            self.syncs_elided as f64 / total as f64
        }
    }

    /// Difference between two snapshots (self - earlier), saturating at zero.
    ///
    /// Every field is a monotone **counter** and subtracts — except
    /// `peak_concurrent_readers`, which is a **gauge** (a high-water level):
    /// subtracting two levels is meaningless (a peak of 7 before and 7 after
    /// does not mean "0 readers in between"), so the interval keeps the later
    /// snapshot's level.  Callers that want the peak *within* an interval
    /// must reset the underlying counter instead.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            calls_enqueued: self.calls_enqueued.saturating_sub(earlier.calls_enqueued),
            queries_client_executed: self
                .queries_client_executed
                .saturating_sub(earlier.queries_client_executed),
            queries_handler_executed: self
                .queries_handler_executed
                .saturating_sub(earlier.queries_handler_executed),
            queries_pipelined: self
                .queries_pipelined
                .saturating_sub(earlier.queries_pipelined),
            syncs_performed: self.syncs_performed.saturating_sub(earlier.syncs_performed),
            syncs_elided: self.syncs_elided.saturating_sub(earlier.syncs_elided),
            separate_blocks: self.separate_blocks.saturating_sub(earlier.separate_blocks),
            multi_reservations: self
                .multi_reservations
                .saturating_sub(earlier.multi_reservations),
            private_queues_enqueued: self
                .private_queues_enqueued
                .saturating_sub(earlier.private_queues_enqueued),
            handlers_spawned: self
                .handlers_spawned
                .saturating_sub(earlier.handlers_spawned),
            call_panics: self.call_panics.saturating_sub(earlier.call_panics),
            wait_condition_checks: self
                .wait_condition_checks
                .saturating_sub(earlier.wait_condition_checks),
            wait_condition_retries: self
                .wait_condition_retries
                .saturating_sub(earlier.wait_condition_retries),
            guard_signals: self.guard_signals.saturating_sub(earlier.guard_signals),
            guard_wakeups: self.guard_wakeups.saturating_sub(earlier.guard_wakeups),
            postcondition_checks: self
                .postcondition_checks
                .saturating_sub(earlier.postcondition_checks),
            postcondition_failures: self
                .postcondition_failures
                .saturating_sub(earlier.postcondition_failures),
            batches_drained: self.batches_drained.saturating_sub(earlier.batches_drained),
            batch_requests_drained: self
                .batch_requests_drained
                .saturating_sub(earlier.batch_requests_drained),
            requests_executed: self
                .requests_executed
                .saturating_sub(earlier.requests_executed),
            backpressure_stalls: self
                .backpressure_stalls
                .saturating_sub(earlier.backpressure_stalls),
            backpressure_rejections: self
                .backpressure_rejections
                .saturating_sub(earlier.backpressure_rejections),
            handler_wakeups: self.handler_wakeups.saturating_sub(earlier.handler_wakeups),
            handler_yields: self.handler_yields.saturating_sub(earlier.handler_yields),
            pressure_wakes: self.pressure_wakes.saturating_sub(earlier.pressure_wakes),
            budget_shrinks: self.budget_shrinks.saturating_sub(earlier.budget_shrinks),
            deadlocks_detected: self
                .deadlocks_detected
                .saturating_sub(earlier.deadlocks_detected),
            deadlocks_broken: self
                .deadlocks_broken
                .saturating_sub(earlier.deadlocks_broken),
            read_reservations: self
                .read_reservations
                .saturating_sub(earlier.read_reservations),
            // A high-water mark, not a monotone count: the difference of two
            // peaks is meaningless, so the interval keeps the later level.
            peak_concurrent_readers: self.peak_concurrent_readers,
            writer_waits: self.writer_waits.saturating_sub(earlier.writer_waits),
            scheduler_steals: self
                .scheduler_steals
                .saturating_sub(earlier.scheduler_steals),
            monitor_scans: self.monitor_scans.saturating_sub(earlier.monitor_scans),
            batch_size_buckets: std::array::from_fn(|i| {
                self.batch_size_buckets[i].saturating_sub(earlier.batch_size_buckets[i])
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = RuntimeStats::new();
        RuntimeStats::bump(&stats.calls_enqueued);
        RuntimeStats::bump(&stats.calls_enqueued);
        RuntimeStats::bump(&stats.syncs_performed);
        let snap = stats.snapshot();
        assert_eq!(snap.calls_enqueued, 2);
        assert_eq!(snap.syncs_performed, 1);
        assert_eq!(snap.total_queries(), 0);
    }

    #[test]
    fn elision_ratio_handles_zero() {
        assert_eq!(StatsSnapshot::default().sync_elision_ratio(), 0.0);
        let snap = StatsSnapshot {
            syncs_performed: 1,
            syncs_elided: 3,
            ..Default::default()
        };
        assert!((snap.sync_elision_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn batch_histogram_buckets_cover_all_sizes() {
        let stats = RuntimeStats::new();
        for size in [1usize, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33, 1000] {
            stats.record_batch(size);
        }
        let snap = stats.snapshot();
        assert_eq!(snap.batches_drained, 12);
        assert_eq!(snap.batch_size_buckets, [1, 1, 2, 2, 2, 2, 2]);
        assert_eq!(
            snap.batch_requests_drained,
            1 + 2 + 3 + 4 + 5 + 8 + 9 + 16 + 17 + 32 + 33 + 1000
        );
        assert!(snap.mean_batch_size() > 1.0);
        // Bucket ranges partition [1, ∞): each upper bound + 1 is the next
        // lower bound.
        for i in 0..BATCH_SIZE_BUCKETS - 1 {
            let (_, hi) = batch_bucket_range(i);
            let (lo_next, _) = batch_bucket_range(i + 1);
            assert_eq!(hi + 1, lo_next);
        }
    }

    #[test]
    fn mean_batch_size_handles_zero() {
        assert_eq!(StatsSnapshot::default().mean_batch_size(), 0.0);
    }

    #[test]
    fn read_reservation_counters_snapshot_and_diff() {
        let stats = RuntimeStats::new();
        RuntimeStats::bump(&stats.read_reservations);
        RuntimeStats::bump(&stats.read_reservations);
        RuntimeStats::bump(&stats.writer_waits);
        RuntimeStats::bump_max(&stats.peak_concurrent_readers, 3);
        RuntimeStats::bump_max(&stats.peak_concurrent_readers, 7);
        RuntimeStats::bump_max(&stats.peak_concurrent_readers, 5);
        let snap = stats.snapshot();
        assert_eq!(snap.read_reservations, 2);
        assert_eq!(snap.writer_waits, 1);
        assert_eq!(snap.peak_concurrent_readers, 7, "fetch_max keeps the peak");
        // since(): counts subtract, the peak is carried as a level.
        let earlier = StatsSnapshot {
            read_reservations: 1,
            writer_waits: 1,
            peak_concurrent_readers: 6,
            ..Default::default()
        };
        let diff = snap.since(&earlier);
        assert_eq!(diff.read_reservations, 1);
        assert_eq!(diff.writer_waits, 0);
        assert_eq!(diff.peak_concurrent_readers, 7);
    }

    /// Enumerates **every** `StatsSnapshot` field with a distinct value and
    /// checks the full `since()` result wholesale: counters subtract, the
    /// one gauge (`peak_concurrent_readers`) keeps the later level.  Adding
    /// a field without classifying it in `since()` fails this test (the
    /// struct literals below have no `..Default::default()` escape hatch).
    #[test]
    fn since_classifies_every_field_counter_or_gauge() {
        let early = StatsSnapshot {
            calls_enqueued: 100,
            queries_client_executed: 101,
            queries_handler_executed: 102,
            queries_pipelined: 103,
            syncs_performed: 104,
            syncs_elided: 105,
            separate_blocks: 106,
            multi_reservations: 107,
            private_queues_enqueued: 108,
            handlers_spawned: 109,
            call_panics: 110,
            wait_condition_checks: 111,
            wait_condition_retries: 112,
            guard_signals: 113,
            guard_wakeups: 114,
            postcondition_checks: 115,
            postcondition_failures: 116,
            batches_drained: 117,
            batch_requests_drained: 118,
            requests_executed: 119,
            backpressure_stalls: 120,
            backpressure_rejections: 121,
            handler_wakeups: 122,
            handler_yields: 123,
            pressure_wakes: 124,
            budget_shrinks: 125,
            deadlocks_detected: 126,
            deadlocks_broken: 127,
            read_reservations: 128,
            peak_concurrent_readers: 9, // gauge: early level, must be ignored
            writer_waits: 130,
            scheduler_steals: 131,
            monitor_scans: 132,
            batch_size_buckets: [1, 2, 3, 4, 5, 6, 7],
        };
        // Later snapshot: every counter advanced by a field-specific delta
        // (its index + 1), the gauge settled at a *lower* level than early's
        // peak — since() must still report the later level, not a difference.
        let late = StatsSnapshot {
            calls_enqueued: early.calls_enqueued + 1,
            queries_client_executed: early.queries_client_executed + 2,
            queries_handler_executed: early.queries_handler_executed + 3,
            queries_pipelined: early.queries_pipelined + 4,
            syncs_performed: early.syncs_performed + 5,
            syncs_elided: early.syncs_elided + 6,
            separate_blocks: early.separate_blocks + 7,
            multi_reservations: early.multi_reservations + 8,
            private_queues_enqueued: early.private_queues_enqueued + 9,
            handlers_spawned: early.handlers_spawned + 10,
            call_panics: early.call_panics + 11,
            wait_condition_checks: early.wait_condition_checks + 12,
            wait_condition_retries: early.wait_condition_retries + 13,
            guard_signals: early.guard_signals + 14,
            guard_wakeups: early.guard_wakeups + 15,
            postcondition_checks: early.postcondition_checks + 16,
            postcondition_failures: early.postcondition_failures + 17,
            batches_drained: early.batches_drained + 18,
            batch_requests_drained: early.batch_requests_drained + 19,
            requests_executed: early.requests_executed + 20,
            backpressure_stalls: early.backpressure_stalls + 21,
            backpressure_rejections: early.backpressure_rejections + 22,
            handler_wakeups: early.handler_wakeups + 23,
            handler_yields: early.handler_yields + 24,
            pressure_wakes: early.pressure_wakes + 25,
            budget_shrinks: early.budget_shrinks + 26,
            deadlocks_detected: early.deadlocks_detected + 27,
            deadlocks_broken: early.deadlocks_broken + 28,
            read_reservations: early.read_reservations + 29,
            peak_concurrent_readers: 6,
            writer_waits: early.writer_waits + 30,
            scheduler_steals: early.scheduler_steals + 31,
            monitor_scans: early.monitor_scans + 32,
            batch_size_buckets: [11, 12, 13, 14, 15, 16, 17],
        };
        let expected = StatsSnapshot {
            calls_enqueued: 1,
            queries_client_executed: 2,
            queries_handler_executed: 3,
            queries_pipelined: 4,
            syncs_performed: 5,
            syncs_elided: 6,
            separate_blocks: 7,
            multi_reservations: 8,
            private_queues_enqueued: 9,
            handlers_spawned: 10,
            call_panics: 11,
            wait_condition_checks: 12,
            wait_condition_retries: 13,
            guard_signals: 14,
            guard_wakeups: 15,
            postcondition_checks: 16,
            postcondition_failures: 17,
            batches_drained: 18,
            batch_requests_drained: 19,
            requests_executed: 20,
            backpressure_stalls: 21,
            backpressure_rejections: 22,
            handler_wakeups: 23,
            handler_yields: 24,
            pressure_wakes: 25,
            budget_shrinks: 26,
            deadlocks_detected: 27,
            deadlocks_broken: 28,
            read_reservations: 29,
            peak_concurrent_readers: 6, // the later level, not |6 - 9|
            writer_waits: 30,
            scheduler_steals: 31,
            monitor_scans: 32,
            batch_size_buckets: [10; BATCH_SIZE_BUCKETS],
        };
        assert_eq!(late.since(&early), expected);
        // The reverse interval saturates counters at zero but still carries
        // `self`'s gauge level.
        let reverse = early.since(&late);
        assert_eq!(reverse.calls_enqueued, 0);
        assert_eq!(reverse.peak_concurrent_readers, 9);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let early = StatsSnapshot {
            calls_enqueued: 10,
            syncs_performed: 4,
            ..Default::default()
        };
        let late = StatsSnapshot {
            calls_enqueued: 25,
            syncs_performed: 9,
            ..Default::default()
        };
        let diff = late.since(&early);
        assert_eq!(diff.calls_enqueued, 15);
        assert_eq!(diff.syncs_performed, 5);
        // Saturation instead of wrap-around.
        assert_eq!(early.since(&late).calls_enqueued, 0);
    }
}
