//! Event-driven wait conditions: per-handler registries of parked guard
//! waiters.
//!
//! "An Efficient Implementation of Guard-Based Synchronization" replaces the
//! classic evaluate-in-a-loop guard with parked waiters that state-changing
//! operations signal.  This module is that mechanism for `reserve().when`:
//!
//! * A client whose wait condition evaluated false registers one
//!   [`GuardWaiter`] with the [`GuardRegistry`] of **every** handler in its
//!   reservation set — *while the failing reservation is still open*.  While
//!   a condition is being evaluated all of the set's handlers are parked on
//!   the evaluating client's queues, so any state-changing block on those
//!   handlers is serialised after the evaluation; its completion signal
//!   therefore cannot fire before the waiter is registered, which is the
//!   lost-signal-freedom argument.
//! * When a handler processes the **end of a separate block** (the close of
//!   a private queue, or — lock-based — when the reserving client releases
//!   the handler lock), it conservatively signals every registered waiter:
//!   the block may have changed the state a condition depends on.  The woken
//!   client re-reserves and re-evaluates under a fresh reservation, so the
//!   §2.2 "the condition holds under the same reservation as the body"
//!   guarantee is untouched — only the wakeup discipline changed.
//! * The waiter's own evaluation rounds open *probe* reservations
//!   (thread-local flag, below) whose closes are silent — otherwise every
//!   re-evaluation by one waiter would wake all others and N waiters would
//!   livelock in an O(N²) signal storm.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use qs_sync::{Parker, SpinLock};

use crate::stats::RuntimeStats;

/// One client parked on a failed wait condition.  A single `GuardWaiter` is
/// shared by every handler registry of the client's reservation set.
#[derive(Debug, Default)]
pub(crate) struct GuardWaiter {
    /// Parking slot for the waiting client thread.
    pub(crate) parker: Parker,
    /// Set (before waking) by a handler signal; reset by the waiter under an
    /// open reservation, so a signal for a block the waiter has not yet
    /// observed can never be cleared.
    pub(crate) signaled: AtomicBool,
}

/// The parked guard waiters of one handler.
///
/// Not public API — exposed only because [`crate::reserve::ReservationSet`]
/// (a public trait) names it in a `#[doc(hidden)]` method.
#[derive(Debug)]
pub struct GuardRegistry {
    waiters: SpinLock<Vec<Arc<GuardWaiter>>>,
    /// Mirror of `waiters.len()`: lets the handler's hot close-processing
    /// path skip the lock entirely while nobody is waiting.
    count: AtomicUsize,
    stats: Arc<RuntimeStats>,
}

impl GuardRegistry {
    pub(crate) fn new(stats: Arc<RuntimeStats>) -> Self {
        GuardRegistry {
            waiters: SpinLock::new(Vec::new()),
            count: AtomicUsize::new(0),
            stats,
        }
    }

    /// Registers a waiter (idempotent).  Must be called while the waiter
    /// holds an open reservation of this registry's handler — see the module
    /// docs for why that makes signals lost-free.
    pub(crate) fn register(&self, waiter: &Arc<GuardWaiter>) {
        let mut waiters = self.waiters.lock();
        if !waiters.iter().any(|w| Arc::ptr_eq(w, waiter)) {
            waiters.push(Arc::clone(waiter));
            self.count.store(waiters.len(), Ordering::Release);
        }
    }

    /// Removes a waiter; harmless if it was never registered.
    pub(crate) fn deregister(&self, waiter: &Arc<GuardWaiter>) {
        let mut waiters = self.waiters.lock();
        if let Some(index) = waiters.iter().position(|w| Arc::ptr_eq(w, waiter)) {
            waiters.swap_remove(index);
            self.count.store(waiters.len(), Ordering::Release);
        }
    }

    /// Whether any guard waiter is currently registered (lock-free).
    pub(crate) fn has_waiters(&self) -> bool {
        self.count.load(Ordering::Acquire) > 0
    }

    /// Conservatively signals every registered waiter: some handler state
    /// they guard on may have changed.  Counted per waiter in
    /// `guard_signals`.  The no-waiter fast path is a single atomic load.
    pub(crate) fn signal_all(&self) {
        if !self.has_waiters() {
            return;
        }
        // Snapshot under the lock, wake outside it: a woken client may
        // immediately re-evaluate, succeed, and call `deregister` (which
        // takes this lock) before the iteration finishes.
        let snapshot: Vec<Arc<GuardWaiter>> = self.waiters.lock().clone();
        self.stats
            .guard_signals
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
        qs_obs::trace(qs_obs::TraceKind::GuardSignal, snapshot.len() as u64, 0);
        for waiter in snapshot {
            waiter.signaled.store(true, Ordering::Release);
            waiter.parker.wake();
        }
    }
}

/// One client's registration across its whole reservation set, removed on
/// drop (i.e. when `try_run` returns, however it returns).
pub(crate) struct ParkedWaiter {
    pub(crate) waiter: Arc<GuardWaiter>,
    registries: Vec<Arc<GuardRegistry>>,
}

impl ParkedWaiter {
    /// Creates the shared waiter and registers it with every registry.
    pub(crate) fn register(registries: &[Arc<GuardRegistry>]) -> ParkedWaiter {
        let waiter = Arc::new(GuardWaiter::default());
        for registry in registries {
            registry.register(&waiter);
        }
        ParkedWaiter {
            waiter,
            registries: registries.to_vec(),
        }
    }
}

impl Drop for ParkedWaiter {
    fn drop(&mut self) {
        for registry in &self.registries {
            registry.deregister(&self.waiter);
        }
    }
}

thread_local! {
    /// True while the wait-condition machinery is opening a *probe*
    /// reservation round (evaluate the condition, maybe run the body).  The
    /// blocks opened under it are marked silent — their closes do not signal
    /// guard waiters — because a failed evaluation changes nothing, and a
    /// successful round signals explicitly from `try_run` once the body has
    /// run and the guards have dropped.
    static PROBE_ROUND: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as opening a probe round until the returned
/// guard drops; restores the previous state, so nesting is safe.
pub(crate) fn enter_probe_round() -> ProbeRoundGuard {
    let previous = PROBE_ROUND.with(|flag| flag.replace(true));
    ProbeRoundGuard { previous }
}

/// Whether the current thread is opening a probe round right now.  Read by
/// `Separate::attach` to decide whether the block's completion should signal
/// guard waiters.
pub(crate) fn in_probe_round() -> bool {
    PROBE_ROUND.with(Cell::get)
}

pub(crate) struct ProbeRoundGuard {
    previous: bool,
}

impl Drop for ProbeRoundGuard {
    fn drop(&mut self) {
        PROBE_ROUND.with(|flag| flag.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counts_and_deduplicates_waiters() {
        let registry = GuardRegistry::new(RuntimeStats::new());
        assert!(!registry.has_waiters());
        let waiter = Arc::new(GuardWaiter::default());
        registry.register(&waiter);
        registry.register(&waiter);
        assert!(registry.has_waiters());
        registry.deregister(&waiter);
        assert!(!registry.has_waiters(), "duplicate registration collapsed");
        registry.deregister(&waiter);
    }

    #[test]
    fn signal_all_sets_the_flag_and_counts() {
        let stats = RuntimeStats::new();
        let registry = GuardRegistry::new(Arc::clone(&stats));
        let waiter = Arc::new(GuardWaiter::default());
        registry.register(&waiter);
        registry.signal_all();
        assert!(waiter.signaled.load(Ordering::Acquire));
        assert_eq!(stats.snapshot().guard_signals, 1);
        registry.deregister(&waiter);
        // No waiters: the fast path must not count anything.
        registry.signal_all();
        assert_eq!(stats.snapshot().guard_signals, 1);
    }

    #[test]
    fn parked_waiter_registers_everywhere_and_cleans_up() {
        let stats = RuntimeStats::new();
        let registries = vec![
            Arc::new(GuardRegistry::new(Arc::clone(&stats))),
            Arc::new(GuardRegistry::new(Arc::clone(&stats))),
        ];
        let parked = ParkedWaiter::register(&registries);
        assert!(registries.iter().all(|r| r.has_waiters()));
        drop(parked);
        assert!(registries.iter().all(|r| !r.has_waiters()));
    }

    #[test]
    fn probe_round_flag_nests_and_restores() {
        assert!(!in_probe_round());
        {
            let _outer = enter_probe_round();
            assert!(in_probe_round());
            {
                let _inner = enter_probe_round();
                assert!(in_probe_round());
            }
            assert!(in_probe_round());
        }
        assert!(!in_probe_round());
    }
}
