//! The unified reservation API: one composable [`reserve`] entry point.
//!
//! The paper's generalised `separate` rule (§2.4, §3.3) is a single concept —
//! atomically reserve a *set* of handlers, optionally guarded by a wait
//! condition — and this module exposes it as a single builder:
//!
//! ```
//! use qs_runtime::{reserve, Runtime, RuntimeConfig, WaitConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::all_optimizations());
//! let x = rt.spawn_handler(1u64);
//! let y = rt.spawn_handler(2u64);
//! let z = rt.spawn_handler(3u64);
//!
//! // Plain atomic multi-reservation.
//! let sum = reserve((&x, &y, &z)).run(|(sx, sy, sz)| {
//!     sx.query(|v| *v) + sy.query(|v| *v) + sz.query(|v| *v)
//! });
//! assert_eq!(sum, 6);
//!
//! // Guarded by a joint wait condition, with a retry budget.
//! let result = reserve((&x, &y, &z))
//!     .when(|x: &u64, y: &u64, z: &u64| x + y + z >= 6)
//!     .timeout(WaitConfig::bounded(100))
//!     .try_run(|(sx, _sy, _sz)| sx.query(|v| *v));
//! assert_eq!(result, Ok(1));
//! ```
//!
//! A [`ReservationSet`] is a single `&Handler<T>`, a heterogeneous tuple of
//! handler references up to arity 4, or a homogeneous `&[Handler<T>]` slice.
//! Whatever the shape, the atomic registration happens here, in one place,
//! for both the queue-of-queues and the lock-based configurations: the
//! reservation locks (§3.3) — or, lock-based, the handler locks themselves —
//! are acquired in increasing handler-id order, so two overlapping
//! reservations can never deadlock against each other, and the client's
//! private queues are enqueued while all locks are held, making the
//! registration atomic (Fig. 5's consistency guarantee).
//!
//! Wait conditions follow the SCOOP contract semantics (§2.2): the condition
//! is evaluated under the reservation, the body runs under that *same*
//! reservation when it holds, and the reservation is released between
//! attempts so other clients can make the condition true.  Between attempts
//! the client does not poll: it parks on a per-handler registry of guard
//! waiters ([`crate::guard`]) and is signalled when a handler finishes a
//! block that may have changed the condition's truth.  The legacy retry-poll
//! loop survives only for bounded-attempt policies and behind the
//! `wait-retry-poll` feature (differential testing).
//!
//! # Read members
//!
//! Every member of a set defaults to **exclusive**, but queries commute, so
//! a member that is only read can be marked shared-read:
//! [`reserve`]`(&h).read()` for the single-handler form, a
//! [`crate::read`]`(&h)` marker inside a tuple, or `.read()` on a slice
//! reservation.  Read members skip the queues entirely — they take the
//! handler object's reader–writer gate in read mode and query in place on
//! the client thread (see [`crate::read`] for the full semantics, including
//! the deadlock-detection story and why commands are rejected).
//!
//! Two protocol notes.  First, ordering: gate-reads are acquired only
//! *after* the set's registration locks are released (attach, then
//! activate) — blocking behind a writer while holding reservation spinlocks
//! would stall every other multi-reservation on those handlers in a way the
//! deadlock detector cannot observe.  Second, atomicity: exclusive members
//! of one set still observe the full Fig. 5 consistency guarantee among
//! themselves, but read members only get per-object isolation — their gates
//! are acquired one at a time, so a writer may slip between two
//! acquisitions and a *cross-member* read snapshot is not a single instant.
//! Use exclusive members where joint consistency across handlers matters.
//! Duplicate-handler rejection is mode-blind: the same handler may not
//! appear twice in a set, whatever the modes.

use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use qs_deadlock::{EdgeGuard, EdgeKind, ParticipantId, WaitRegistry};
use qs_sync::{Backoff, SpinLock, SpinLockGuard};

use crate::contracts::{WaitConfig, WaitTimeout};
use crate::deadlock::{current_waiter, Tracking};
use crate::guard::{enter_probe_round, GuardRegistry, ParkedWaiter};
use crate::handler::{Handler, HandlerCore, HandlerId};
use crate::read::{Read, ReadSeparate};
use crate::separate::Separate;
use crate::stats::RuntimeStats;

/// The deadlock-tracking identities of a reservation set's handlers, used
/// to register `ReserveWait` wait-for edges while a wait condition retries.
type DeadlockTargets = Vec<(Arc<WaitRegistry>, ParticipantId)>;

/// The guard-waiter registries of a reservation set's handlers, one per
/// handler, used to park a client whose wait condition failed.
type GuardRegistries = Vec<Arc<GuardRegistry>>;

/// After this many failed wait-condition attempts the *polling* wait loop
/// (bounded policies and the `wait-retry-poll` feature) sleeps
/// [`RETRY_SLEEP`] between evaluations instead of spinning/yielding: a
/// condition that failed hundreds of times is not latency-critical, a hot
/// loop burning a core forever is a bug of its own, and the wide sleep
/// windows are what lets the deadlock detector sample a genuinely stuck
/// reservation (its `waiting` probe is true throughout the sleep).
const RETRY_SLEEP_AFTER: usize = 256;

/// Inter-attempt sleep on the deep-retry path.
const RETRY_SLEEP: std::time::Duration = std::time::Duration::from_millis(1);

// ---------------------------------------------------------------------------
// Type-erased view of a handler used by the atomic registration protocol
// ---------------------------------------------------------------------------

/// The parts of a [`HandlerCore`] the id-ordered locking protocol needs,
/// independent of the owned object's type.
pub(crate) trait RawReservable {
    fn raw_id(&self) -> HandlerId;
    fn raw_queue_of_queues(&self) -> bool;
    fn raw_reservation_lock(&self) -> &SpinLock<()>;
    fn raw_client_lock(&self) -> &parking_lot::Mutex<()>;
    fn raw_lock_holder(&self) -> &std::sync::atomic::AtomicU64;
    fn raw_stats(&self) -> &RuntimeStats;
    fn raw_deadlock(&self) -> Option<&Tracking>;
}

impl<T> RawReservable for HandlerCore<T> {
    fn raw_id(&self) -> HandlerId {
        self.id
    }
    fn raw_queue_of_queues(&self) -> bool {
        self.config.queue_of_queues
    }
    fn raw_reservation_lock(&self) -> &SpinLock<()> {
        &self.reservation_lock
    }
    fn raw_client_lock(&self) -> &parking_lot::Mutex<()> {
        &self.client_lock
    }
    fn raw_lock_holder(&self) -> &std::sync::atomic::AtomicU64 {
        &self.lock_holder
    }
    fn raw_stats(&self) -> &RuntimeStats {
        &self.stats
    }
    fn raw_deadlock(&self) -> Option<&Tracking> {
        self.deadlock.as_ref()
    }
}

/// How one member of a reservation set is reserved.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReserveMode {
    /// The default: the member is registered exclusively (private queue or
    /// handler lock) and the guard exposes the full command/query surface.
    Exclusive,
    /// Shared-read: the member takes the object's reader–writer gate in
    /// read mode after registration; no queue, no handler lock, queries
    /// only.
    Read,
}

/// The type-erased view of one reservation-set member handed to the atomic
/// registration protocol: which handler, reserved how.
///
/// Appears in the [`ReserveMember`] trait's (hidden) surface so the tuple
/// implementations can be generic over member modes; user code never
/// constructs one.
pub struct MemberDescriptor<'h> {
    pub(crate) core: &'h dyn RawReservable,
    pub(crate) mode: ReserveMode,
}

/// The one place where multi-handler reservations acquire their locks.
///
/// §3.3: "a spinlock per handler" serialises multi-reservations on the
/// queue-of-queues path; the pre-Qs path takes the handler locks themselves.
/// Either way the locks are taken in increasing handler-id order, which makes
/// overlapping reservations deadlock-free regardless of the order the caller
/// listed the handlers in.
///
/// Public only because it appears in [`ReserveMember`]'s (hidden) plumbing
/// signatures; user code cannot construct or use one.
pub struct AtomicRegistration<'h> {
    /// Reservation spinlock guards (queue-of-queues path); held until drop,
    /// i.e. until every private queue of the set has been enqueued.
    _spin_guards: Vec<SpinLockGuard<'h, ()>>,
    /// Handler lock guards by *set position* (lock-based path); taken out by
    /// the caller and carried in the [`Separate`] guards for the whole block.
    lock_guards: Vec<Option<parking_lot::MutexGuard<'h, ()>>>,
}

/// Reservation sets rarely exceed the tuple arities; index buffers up to
/// this size stay on the stack.
const INLINE_SET: usize = 8;

/// The global lock-acquisition key of one handler: primarily its id (the
/// paper's protocol), with the core's address as tiebreaker so handlers from
/// *different* [`crate::Runtime`] instances — whose per-runtime ids may
/// collide — still fall into one total order.  Pointer equality (not id
/// equality) is what identifies "the same handler twice".
fn lock_key(core: &dyn RawReservable) -> (HandlerId, *const ()) {
    (core.raw_id(), core as *const dyn RawReservable as *const ())
}

impl<'h> AtomicRegistration<'h> {
    /// Acquires the reservation locks for `members` in handler-id order and
    /// records the set-level statistics.
    ///
    /// Read members are lock-free here on both paths: they neither enqueue
    /// a private queue (nothing to keep atomic) nor take the lock-based
    /// handler lock (the gate, acquired after this registration is
    /// released, is their entire protocol) — which is precisely why a set
    /// of one exclusive member plus any number of read members costs the
    /// same as a singleton reservation.
    ///
    /// # Panics
    ///
    /// Panics if the same handler appears twice in the set, whatever the
    /// modes — reserving a handler against itself would self-deadlock
    /// (exclusive/exclusive), or upgrade/downgrade ambiguously
    /// (exclusive/read), so it is rejected eagerly.
    pub(crate) fn acquire(members: &[MemberDescriptor<'h>]) -> Self {
        let acquire_timer = qs_obs::timer();
        let first = members.first().expect("reservation sets are non-empty");
        let stats = first.core.raw_stats();
        RuntimeStats::bump(&stats.separate_blocks);
        if members.len() > 1 {
            RuntimeStats::bump(&stats.multi_reservations);
        }

        // Index-sort the set by its global lock key; small sets (every tuple
        // arity) sort in a stack buffer.
        let mut inline_buffer = [0usize; INLINE_SET];
        let mut spill_buffer;
        let order: &mut [usize] = if members.len() <= INLINE_SET {
            let order = &mut inline_buffer[..members.len()];
            for (slot, index) in order.iter_mut().zip(0..) {
                *slot = index;
            }
            order
        } else {
            spill_buffer = (0..members.len()).collect::<Vec<usize>>();
            &mut spill_buffer
        };
        order.sort_by_key(|&i| lock_key(members[i].core));
        for pair in order.windows(2) {
            assert!(
                lock_key(members[pair[0]].core).1 != lock_key(members[pair[1]].core).1,
                "a reservation set must not contain the same handler twice"
            );
        }

        let exclusive = members
            .iter()
            .filter(|member| member.mode == ReserveMode::Exclusive)
            .count();
        let mut spin_guards = Vec::new();
        let mut lock_guards = Vec::new();
        if first.core.raw_queue_of_queues() {
            // Phase 1 of §3.3: take the reservation spinlocks in id order.
            // A single exclusive registration enqueues lock-free and skips
            // them (read members never count: they enqueue nothing).
            if exclusive > 1 {
                spin_guards.reserve_exact(exclusive);
                spin_guards.extend(
                    order
                        .iter()
                        .filter(|&&i| members[i].mode == ReserveMode::Exclusive)
                        .map(|&i| members[i].core.raw_reservation_lock().lock()),
                );
            }
        } else {
            // Pre-Qs path: take the handler locks themselves, in id order,
            // and hold them for the whole block (Fig. 2 semantics).  Each
            // contended acquisition is a reportable HandlerLock edge.
            lock_guards.resize_with(members.len(), || None);
            for &i in order.iter() {
                if members[i].mode == ReserveMode::Exclusive {
                    lock_guards[i] = Some(crate::deadlock::lock_handler(
                        members[i].core.raw_client_lock(),
                        members[i].core.raw_lock_holder(),
                        members[i].core.raw_deadlock(),
                    ));
                }
            }
        }
        acquire_timer.record(qs_obs::obs_histogram!("reserve.acquire_ns"));
        qs_obs::trace(
            qs_obs::TraceKind::ReserveAcquire,
            first.core.raw_id(),
            members.len() as u64,
        );
        AtomicRegistration {
            _spin_guards: spin_guards,
            lock_guards,
        }
    }

    /// Takes the handler-lock guard for the handler at `set_index` (always
    /// `None` on the queue-of-queues path).
    pub(crate) fn take_lock(
        &mut self,
        set_index: usize,
    ) -> Option<parking_lot::MutexGuard<'h, ()>> {
        self.lock_guards.get_mut(set_index).and_then(Option::take)
    }
}

// ---------------------------------------------------------------------------
// ReservationSet: the shapes that can be reserved
// ---------------------------------------------------------------------------

/// A set of handlers that can be reserved atomically by [`reserve`].
///
/// Implemented for `&Handler<T>` (arity 1), heterogeneous tuples of handler
/// references up to arity 4, and homogeneous `&[Handler<T>]` /
/// `&Vec<Handler<T>>` slices.  `Guards` is the matching shape of
/// [`Separate`] reservation guards handed to the block body.
pub trait ReservationSet<'h>: Copy {
    /// The reservation guards for this set: a single [`Separate`], a tuple
    /// of them, or a `Vec` for slices.
    type Guards;

    /// Performs the atomic registration and returns the guards.
    #[doc(hidden)]
    fn begin(self) -> Self::Guards;

    /// The statistics block reservation retries are accounted to.
    #[doc(hidden)]
    fn shared_stats(self) -> Option<Arc<RuntimeStats>>;

    /// The deadlock-tracking identities of the set's handlers (empty while
    /// the runtime's `DeadlockPolicy` is `Off`).
    #[doc(hidden)]
    fn deadlock_targets(self) -> DeadlockTargets;

    /// The guard-waiter registries of the set's handlers, one per handler —
    /// where a client parks while its wait condition is false.
    #[doc(hidden)]
    fn guard_registries(self) -> GuardRegistries;
}

fn deadlock_target<T: Send + 'static>(
    handler: &Handler<T>,
) -> Option<(Arc<WaitRegistry>, ParticipantId)> {
    handler
        .core()
        .deadlock
        .as_ref()
        .map(|tracking| (Arc::clone(&tracking.registry), tracking.participant))
}

impl<'h, T: Send + 'static> ReservationSet<'h> for &'h Handler<T> {
    type Guards = Separate<'h, T>;

    fn begin(self) -> Self::Guards {
        // Arity 1 is the Fig. 8 fast path: no reservation spinlock at all.
        Separate::begin_single(self.core())
    }

    fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
        Some(Arc::clone(self.stats()))
    }

    fn deadlock_targets(self) -> DeadlockTargets {
        deadlock_target(self).into_iter().collect()
    }

    fn guard_registries(self) -> GuardRegistries {
        vec![Arc::clone(&self.core().guards)]
    }
}

// ---------------------------------------------------------------------------
// ReserveMember: the shapes one *member* of a tuple set can take
// ---------------------------------------------------------------------------

/// One member of a reservation-set tuple: a plain `&Handler<T>` (exclusive,
/// the default) or a [`crate::read`]`(&handler)` marker (shared-read).
///
/// The tuple [`ReservationSet`] implementations are generic over this
/// trait, which is what lets exclusive and read members mix freely in one
/// atomic set.  All methods are protocol plumbing; user code only ever
/// names the trait in bounds.
pub trait ReserveMember<'h>: Copy {
    /// The reservation guard this member contributes to the set's `Guards`
    /// tuple: [`Separate`] for exclusive members, [`ReadSeparate`] for read
    /// members.
    type Guard: MemberGuard;

    /// The member's handler and mode, for the atomic registration.
    #[doc(hidden)]
    fn descriptor(self) -> MemberDescriptor<'h>;

    /// Builds the guard while the registration is held.  Exclusive members
    /// enqueue their private queue (or take over their handler lock) here;
    /// read members construct an inactive guard — their gate must not be
    /// acquired under the registration's spinlocks.
    #[doc(hidden)]
    fn attach(self, registration: &mut AtomicRegistration<'h>, set_index: usize) -> Self::Guard;

    /// Completes the guard after the registration is released: a no-op for
    /// exclusive members, the (potentially blocking) gate-read acquisition
    /// for read members.
    #[doc(hidden)]
    fn activate(guard: &mut Self::Guard);

    #[doc(hidden)]
    fn member_stats(self) -> Arc<RuntimeStats>;

    #[doc(hidden)]
    fn member_deadlock_target(self) -> Option<(Arc<WaitRegistry>, ParticipantId)>;

    #[doc(hidden)]
    fn member_guard_registry(self) -> Arc<GuardRegistry>;
}

/// The wait-condition surface shared by both guard flavours, so
/// [`WaitCondition`] closures work over mixed tuples.
pub trait MemberGuard {
    /// The handler-owned object type the condition observes.
    type Object;

    /// Brings the guard to a state where [`wait_peek`](Self::wait_peek) is
    /// race-free: a sync round-trip for exclusive guards (parking the
    /// handler on this client's queue), nothing for read guards (the
    /// gate-read hold already excludes writers).
    #[doc(hidden)]
    fn wait_sync(&mut self);

    /// Reads the object for a condition evaluation.
    #[doc(hidden)]
    fn wait_peek(&self) -> &Self::Object;
}

impl<T: Send + 'static> MemberGuard for Separate<'_, T> {
    type Object = T;

    fn wait_sync(&mut self) {
        self.sync();
    }

    fn wait_peek(&self) -> &T {
        self.peek_synced()
    }
}

impl<T: Send + 'static> MemberGuard for ReadSeparate<'_, T> {
    type Object = T;

    fn wait_sync(&mut self) {}

    fn wait_peek(&self) -> &T {
        self.peek()
    }
}

impl<'h, T: Send + 'static> ReserveMember<'h> for &'h Handler<T> {
    type Guard = Separate<'h, T>;

    fn descriptor(self) -> MemberDescriptor<'h> {
        MemberDescriptor {
            core: &**self.core(),
            mode: ReserveMode::Exclusive,
        }
    }

    fn attach(self, registration: &mut AtomicRegistration<'h>, set_index: usize) -> Self::Guard {
        // Register one private queue (queue-of-queues) or carry the
        // already-acquired handler lock (lock-based) while the registration
        // keeps the set atomic.
        Separate::attach(self.core(), registration.take_lock(set_index))
    }

    fn activate(_guard: &mut Self::Guard) {}

    fn member_stats(self) -> Arc<RuntimeStats> {
        Arc::clone(self.stats())
    }

    fn member_deadlock_target(self) -> Option<(Arc<WaitRegistry>, ParticipantId)> {
        deadlock_target(self)
    }

    fn member_guard_registry(self) -> Arc<GuardRegistry> {
        Arc::clone(&self.core().guards)
    }
}

impl<'h, T: Send + 'static> ReserveMember<'h> for Read<'h, T> {
    type Guard = ReadSeparate<'h, T>;

    fn descriptor(self) -> MemberDescriptor<'h> {
        MemberDescriptor {
            core: &**self.handler.core(),
            mode: ReserveMode::Read,
        }
    }

    fn attach(self, _registration: &mut AtomicRegistration<'h>, _set_index: usize) -> Self::Guard {
        ReadSeparate::attach(self.handler.core())
    }

    fn activate(guard: &mut Self::Guard) {
        guard.activate();
    }

    fn member_stats(self) -> Arc<RuntimeStats> {
        Arc::clone(self.handler.stats())
    }

    fn member_deadlock_target(self) -> Option<(Arc<WaitRegistry>, ParticipantId)> {
        deadlock_target(self.handler)
    }

    fn member_guard_registry(self) -> Arc<GuardRegistry> {
        Arc::clone(&self.handler.core().guards)
    }
}

macro_rules! impl_reservation_set_for_tuple {
    ($(($($name:ident : $ty:ident @ $index:tt),+)),+ $(,)?) => {$(
        impl<'h, $($ty: ReserveMember<'h>),+> ReservationSet<'h> for ($($ty,)+) {
            type Guards = ($($ty::Guard,)+);

            fn begin(self) -> Self::Guards {
                let ($($name,)+) = self;
                let mut registration = AtomicRegistration::acquire(&[
                    $($name.descriptor(),)+
                ]);
                let mut guards = ($(
                    $name.attach(&mut registration, $index),
                )+);
                drop(registration);
                // Two-phase begin: read members acquire their gates only
                // *after* the registration's locks are released — blocking
                // behind a writer while holding reservation spinlocks would
                // stall unrelated multi-reservations undetectably.
                {
                    let ($($name,)+) = &mut guards;
                    $(<$ty as ReserveMember>::activate($name);)+
                }
                guards
            }

            fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
                let ($($name,)+) = self;
                let mut stats = None;
                $(if stats.is_none() { stats = Some($name.member_stats()); })+
                stats
            }

            fn deadlock_targets(self) -> DeadlockTargets {
                let ($($name,)+) = self;
                let mut targets = DeadlockTargets::new();
                $(targets.extend($name.member_deadlock_target());)+
                targets
            }

            fn guard_registries(self) -> GuardRegistries {
                let ($($name,)+) = self;
                vec![$($name.member_guard_registry(),)+]
            }
        }
    )+};
}

impl_reservation_set_for_tuple! {
    (a: A @ 0, b: B @ 1),
    (a: A @ 0, b: B @ 1, c: C @ 2),
    (a: A @ 0, b: B @ 1, c: C @ 2, d: D @ 3),
}

impl<'h, T: Send + 'static> ReservationSet<'h> for &'h [Handler<T>] {
    type Guards = Vec<Separate<'h, T>>;

    fn begin(self) -> Self::Guards {
        match self {
            [] => Vec::new(),
            [single] => vec![Separate::begin_single(single.core())],
            handlers => {
                let members: Vec<MemberDescriptor> = handlers
                    .iter()
                    .map(|h| MemberDescriptor {
                        core: &**h.core(),
                        mode: ReserveMode::Exclusive,
                    })
                    .collect();
                let mut registration = AtomicRegistration::acquire(&members);
                let guards = handlers
                    .iter()
                    .enumerate()
                    .map(|(i, h)| Separate::attach(h.core(), registration.take_lock(i)))
                    .collect();
                drop(registration);
                guards
            }
        }
    }

    fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
        self.first().map(|h| Arc::clone(h.stats()))
    }

    fn deadlock_targets(self) -> DeadlockTargets {
        self.iter().filter_map(deadlock_target).collect()
    }

    fn guard_registries(self) -> GuardRegistries {
        self.iter().map(|h| Arc::clone(&h.core().guards)).collect()
    }
}

impl<'h, T: Send + 'static> ReservationSet<'h> for &'h Vec<Handler<T>> {
    type Guards = Vec<Separate<'h, T>>;

    fn begin(self) -> Self::Guards {
        self.as_slice().begin()
    }

    fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
        self.as_slice().shared_stats()
    }

    fn deadlock_targets(self) -> DeadlockTargets {
        self.as_slice().deadlock_targets()
    }

    fn guard_registries(self) -> GuardRegistries {
        self.as_slice().guard_registries()
    }
}

// The single-handler read form, reached through `reserve(&h).read()`: like
// the exclusive arity-1 fast path it touches no registration machinery at
// all — the gate acquisition *is* the reservation.
impl<'h, T: Send + 'static> ReservationSet<'h> for Read<'h, T> {
    type Guards = ReadSeparate<'h, T>;

    fn begin(self) -> Self::Guards {
        ReadSeparate::begin_single(self.handler.core())
    }

    fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
        Some(Arc::clone(self.handler.stats()))
    }

    fn deadlock_targets(self) -> DeadlockTargets {
        deadlock_target(self.handler).into_iter().collect()
    }

    fn guard_registries(self) -> GuardRegistries {
        vec![Arc::clone(&self.handler.core().guards)]
    }
}

/// A homogeneous reservation set whose members are all shared-read,
/// obtained by calling `.read()` on a slice or `Vec` reservation.
///
/// Reserving it acquires every handler's gate in read mode; the guards are
/// a `Vec` of [`ReadSeparate`].  Registration is lock-free (read members
/// take no reservation locks) but still rejects duplicate handlers.
pub struct ReadSlice<'h, T: Send + 'static> {
    handlers: &'h [Handler<T>],
}

impl<T: Send + 'static> Clone for ReadSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Send + 'static> Copy for ReadSlice<'_, T> {}

impl<'h, T: Send + 'static> ReservationSet<'h> for ReadSlice<'h, T> {
    type Guards = Vec<ReadSeparate<'h, T>>;

    fn begin(self) -> Self::Guards {
        match self.handlers {
            [] => Vec::new(),
            [single] => vec![ReadSeparate::begin_single(single.core())],
            handlers => {
                let members: Vec<MemberDescriptor> = handlers
                    .iter()
                    .map(|h| MemberDescriptor {
                        core: &**h.core(),
                        mode: ReserveMode::Read,
                    })
                    .collect();
                // Takes no locks (every member is read) but keeps the
                // duplicate-handler rejection and set-level statistics.
                let registration = AtomicRegistration::acquire(&members);
                let mut guards: Vec<ReadSeparate<'h, T>> = handlers
                    .iter()
                    .map(|h| ReadSeparate::attach(h.core()))
                    .collect();
                drop(registration);
                for guard in &mut guards {
                    guard.activate();
                }
                guards
            }
        }
    }

    fn shared_stats(self) -> Option<Arc<RuntimeStats>> {
        self.handlers.first().map(|h| Arc::clone(h.stats()))
    }

    fn deadlock_targets(self) -> DeadlockTargets {
        self.handlers.iter().filter_map(deadlock_target).collect()
    }

    fn guard_registries(self) -> GuardRegistries {
        self.handlers
            .iter()
            .map(|h| Arc::clone(&h.core().guards))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Wait conditions
// ---------------------------------------------------------------------------

/// A wait condition over the objects of a [`ReservationSet`].
///
/// Blanket-implemented for plain closures matching the set's shape:
/// `Fn(&T) -> bool` for a single handler, `Fn(&A, &B) -> bool` (and so on up
/// to arity 4) for tuples, and `Fn(&[&T]) -> bool` for slices.  Evaluation
/// synchronises every handler of the set first, so the condition observes a
/// mutually consistent snapshot (the Fig. 5 situation), and runs under the
/// same reservation as the body — no other client can invalidate a condition
/// that was observed to hold (§2.2 guarantee 2).
pub trait WaitCondition<'h, S: ReservationSet<'h>> {
    /// Evaluates the condition against a freshly reserved set.
    #[doc(hidden)]
    fn holds(&self, guards: &mut S::Guards) -> bool;
}

impl<'h, T, F> WaitCondition<'h, &'h Handler<T>> for F
where
    T: Send + 'static,
    F: Fn(&T) -> bool,
{
    fn holds(&self, guard: &mut Separate<'h, T>) -> bool {
        guard.sync();
        self(guard.peek_synced())
    }
}

macro_rules! impl_wait_condition_for_tuple {
    ($(($($name:ident : $ty:ident),+)),+ $(,)?) => {$(
        impl<'h, $($ty,)+ F> WaitCondition<'h, ($($ty,)+)> for F
        where
            $($ty: ReserveMember<'h>,)+
            F: Fn($(&<$ty::Guard as MemberGuard>::Object),+) -> bool,
        {
            fn holds(&self, guards: &mut ($($ty::Guard,)+)) -> bool {
                let ($($name,)+) = guards;
                // Sync every exclusive member first: afterwards all of them
                // are parked on this client's queues, so the joint read is
                // race-free and their observations mutually consistent.
                // Read members need no sync — their gate-read hold already
                // excludes writers (per-object; see the module docs for the
                // cross-member caveat).
                $($name.wait_sync();)+
                self($($name.wait_peek()),+)
            }
        }
    )+};
}

impl_wait_condition_for_tuple! {
    (a: A, b: B),
    (a: A, b: B, c: C),
    (a: A, b: B, c: C, d: D),
}

/// Shared evaluation for the homogeneous (slice-shaped) sets: sync every
/// guard, then hand the condition one consistent snapshot of all objects.
fn holds_for_slice<T, F>(guards: &mut [Separate<'_, T>], condition: &F) -> bool
where
    T: Send + 'static,
    F: Fn(&[&T]) -> bool,
{
    for guard in guards.iter_mut() {
        guard.sync();
    }
    let objects: Vec<&T> = guards.iter().map(Separate::peek_synced).collect();
    condition(&objects)
}

impl<'h, T, F> WaitCondition<'h, &'h [Handler<T>]> for F
where
    T: Send + 'static,
    F: Fn(&[&T]) -> bool,
{
    fn holds(&self, guards: &mut Vec<Separate<'h, T>>) -> bool {
        holds_for_slice(guards, self)
    }
}

impl<'h, T, F> WaitCondition<'h, &'h Vec<Handler<T>>> for F
where
    T: Send + 'static,
    F: Fn(&[&T]) -> bool,
{
    fn holds(&self, guards: &mut Vec<Separate<'h, T>>) -> bool {
        holds_for_slice(guards, self)
    }
}

impl<'h, T, F> WaitCondition<'h, Read<'h, T>> for F
where
    T: Send + 'static,
    F: Fn(&T) -> bool,
{
    fn holds(&self, guard: &mut ReadSeparate<'h, T>) -> bool {
        // No sync: the gate-read hold keeps the object stable, and the body
        // runs under the same hold, so an observed-true condition stays
        // true until the block ends (writers are excluded throughout).
        self(guard.peek())
    }
}

impl<'h, T, F> WaitCondition<'h, ReadSlice<'h, T>> for F
where
    T: Send + 'static,
    F: Fn(&[&T]) -> bool,
{
    fn holds(&self, guards: &mut Vec<ReadSeparate<'h, T>>) -> bool {
        let objects: Vec<&T> = guards.iter().map(ReadSeparate::peek).collect();
        self(&objects)
    }
}

// ---------------------------------------------------------------------------
// The builder
// ---------------------------------------------------------------------------

/// Builder returned by [`reserve`]; see the module docs for the full shape.
#[must_use = "a reservation does nothing until `.run(…)` is called"]
pub struct Reservation<'h, S: ReservationSet<'h>> {
    set: S,
    _handlers: PhantomData<&'h ()>,
}

/// A reservation guarded by a wait condition, returned by
/// [`Reservation::when`].
#[must_use = "a reservation does nothing until `.run(…)` or `.try_run(…)` is called"]
pub struct GuardedReservation<'h, S: ReservationSet<'h>, C> {
    set: S,
    condition: C,
    config: WaitConfig,
    _handlers: PhantomData<&'h ()>,
}

/// Reserves a set of handlers atomically.
///
/// The entry point of the unified reservation API.  `set` is a single
/// `&Handler<T>`, a tuple of handler references up to arity 4, or a
/// `&[Handler<T>]` slice; the returned builder optionally takes a wait
/// condition ([`when`](Reservation::when)) and a retry/timeout policy
/// ([`timeout`](Reservation::timeout)) before running the block body
/// ([`run`](Reservation::run) / [`try_run`](Reservation::try_run)).
///
/// ```
/// use qs_runtime::{reserve, Runtime, RuntimeConfig};
///
/// let rt = Runtime::new(RuntimeConfig::all_optimizations());
/// let account = rt.spawn_handler(100i64);
/// let audit = rt.spawn_handler(Vec::<i64>::new());
///
/// reserve((&account, &audit)).run(|(acc, log)| {
///     acc.call(|balance| *balance -= 30);
///     let remaining = acc.query(|balance| *balance);
///     log.call(move |entries| entries.push(remaining));
/// });
/// ```
pub fn reserve<'h, S: ReservationSet<'h>>(set: S) -> Reservation<'h, S> {
    Reservation {
        set,
        _handlers: PhantomData,
    }
}

impl<'h, S: ReservationSet<'h>> Reservation<'h, S> {
    /// Guards the reservation with a wait condition: the body runs only once
    /// the condition holds, under the same reservation that observed it.
    /// Between failed attempts the reservation is released so other clients
    /// can make the condition true.
    pub fn when<C: WaitCondition<'h, S>>(self, condition: C) -> GuardedReservation<'h, S, C> {
        GuardedReservation {
            set: self.set,
            condition,
            config: WaitConfig::default(),
            _handlers: PhantomData,
        }
    }

    /// Reserves the set and runs `body` with the reservation guards.
    pub fn run<R>(self, body: impl FnOnce(&mut S::Guards) -> R) -> R {
        let mut guards = self.set.begin();
        body(&mut guards)
        // Dropping the guards ends the block (END rule) for every handler.
    }
}

impl<'h, T: Send + 'static> Reservation<'h, &'h Handler<T>> {
    /// Downgrades the reservation to shared-read: any number of clients
    /// hold it concurrently, queries run in place on the client thread, and
    /// commands are rejected (see [`crate::read`]).
    ///
    /// ```
    /// use qs_runtime::{reserve, Runtime, RuntimeConfig};
    ///
    /// let rt = Runtime::new(RuntimeConfig::all_optimizations());
    /// let scores = rt.spawn_handler(vec![3u32, 1, 4]);
    /// let top = reserve(&scores)
    ///     .read()
    ///     .run(|r| r.query(|s| s.iter().copied().max().unwrap_or(0)));
    /// assert_eq!(top, 4);
    /// ```
    pub fn read(self) -> Reservation<'h, Read<'h, T>> {
        reserve(crate::read::read(self.set))
    }
}

impl<'h, T: Send + 'static> Reservation<'h, &'h [Handler<T>]> {
    /// Downgrades every member of the slice reservation to shared-read.
    pub fn read(self) -> Reservation<'h, ReadSlice<'h, T>> {
        reserve(ReadSlice { handlers: self.set })
    }
}

impl<'h, T: Send + 'static> Reservation<'h, &'h Vec<Handler<T>>> {
    /// Downgrades every member of the slice reservation to shared-read.
    pub fn read(self) -> Reservation<'h, ReadSlice<'h, T>> {
        reserve(ReadSlice {
            handlers: self.set.as_slice(),
        })
    }
}

impl<'h, S: ReservationSet<'h>, C> GuardedReservation<'h, S, C> {
    /// Sets the retry/timeout policy for the wait condition; see
    /// [`WaitConfig`].  Without this, the reservation retries forever (the
    /// SCOOP semantics).
    pub fn timeout(mut self, config: WaitConfig) -> Self {
        self.config = config;
        self
    }
}

impl<'h, S: ReservationSet<'h>, C: WaitCondition<'h, S>> GuardedReservation<'h, S, C> {
    /// Runs `body` once the wait condition holds.
    ///
    /// # Panics
    ///
    /// Panics if a bounded [`timeout`](Reservation::timeout) policy is exhausted;
    /// use [`try_run`](Reservation::try_run) to handle that case.
    pub fn run<R>(self, body: impl FnOnce(&mut S::Guards) -> R) -> R {
        match self.try_run(body) {
            Ok(result) => result,
            Err(timeout) => panic!("reservation wait condition timed out: {timeout}"),
        }
    }

    /// Runs `body` once the wait condition holds, giving up according to the
    /// configured [`timeout`](Reservation::timeout) policy.
    ///
    /// Failed evaluations do not poll: after a brief spin window the client
    /// registers itself with every handler of the set and parks until some
    /// handler finishes a block — the only event that can change the
    /// condition's truth — then re-reserves and re-evaluates.  A bounded
    /// `max_retries` policy keeps the legacy polling loop instead (an
    /// attempt budget is meaningless while parked: a parked client makes no
    /// attempts), as does building with the `wait-retry-poll` feature.
    pub fn try_run<R>(self, body: impl FnOnce(&mut S::Guards) -> R) -> Result<R, WaitTimeout> {
        if cfg!(feature = "wait-retry-poll") || self.config.max_retries.is_some() {
            self.try_run_polling(body)
        } else {
            self.try_run_parking(body)
        }
    }

    /// The event-driven wait loop: park on the set's guard registries
    /// between failed evaluations instead of polling.
    ///
    /// Lost-signal freedom: the waiter registers with every handler's
    /// registry — and clears its signal flag — *while the failed
    /// reservation is still open*, i.e. while every handler of the set is
    /// parked on this client's queues (or its locks are held).  Any
    /// state-changing block therefore completes only after this round's
    /// release, so its signal necessarily lands after the registration;
    /// blocks that completed before the round was observed by the
    /// evaluation itself.
    fn try_run_parking<R>(self, body: impl FnOnce(&mut S::Guards) -> R) -> Result<R, WaitTimeout> {
        let stats = self.set.shared_stats();
        let registries = self.set.guard_registries();
        let mut body = Some(body);
        let mut attempts = 0usize;
        let deadline = self
            .config
            .max_wait
            .map(|max_wait| Instant::now() + max_wait);
        let backoff = Backoff::new();
        // Registered with every handler of the set on the first failed
        // evaluation; dropping it (on return) deregisters everywhere.
        let mut parking: Option<ParkedWaiter> = None;
        // Deadlock tracking: from the first failed attempt this client is
        // (conditionally) blocked on every handler of the set, registered
        // as ReserveWait edges.  The probe is the `parked` flag — a parked
        // client is genuinely waiting, while one that is busy re-reserving
        // and evaluating is making progress and must not complete a cycle
        // at scan time (e.g. against the Serving edge of the very block the
        // evaluation holds open).  The edges carry a waker that unparks
        // this client, and the park condition re-checks the break token on
        // every wake, so `Break` can fail a confirmed cycle straight out of
        // the park.
        let mut reserve_edges: Vec<EdgeGuard> = Vec::new();
        let parked = Arc::new(std::sync::atomic::AtomicBool::new(false));
        loop {
            attempts += 1;
            if let Some(stats) = &stats {
                RuntimeStats::bump(&stats.wait_condition_checks);
            }
            {
                // Evaluation rounds are probe rounds: their blocks are
                // attached silent, so the closes they enqueue do not signal
                // other guard waiters (a failed probe changes no state).
                // Only `begin` runs under the flag — the body may open
                // nested blocks of its own, and those must signal normally.
                let mut guards = {
                    let _probe = enter_probe_round();
                    self.set.begin()
                };
                if self.condition.holds(&mut guards) {
                    // The condition holds and the reservation stays open, so
                    // no other client can invalidate it before the body has
                    // run (§2.2 guarantee 2).
                    let body = body.take().expect("body consumed once");
                    let result = body(&mut guards);
                    drop(guards);
                    drop(parking);
                    // This round's blocks were silent but the body *did*
                    // change state: signal the set's registries explicitly.
                    // Any waiter whose evaluation has not yet observed the
                    // body's effects shares a handler with this set, so its
                    // next sync serialises after this round's closes.
                    for registry in &registries {
                        registry.signal_all();
                    }
                    return Ok(result);
                }
                // Failed.  (Re-)arm the parking slot while the reservation
                // is still open: no state-changing block on any handler of
                // the set can complete — and signal — between this
                // registration and the release below, so clearing the
                // signal flag here discards only signals whose effects this
                // very evaluation already observed.
                let waiter = &parking
                    .get_or_insert_with(|| ParkedWaiter::register(&registries))
                    .waiter;
                waiter
                    .signaled
                    .store(false, std::sync::atomic::Ordering::Release);
                // Release the reservation (guards drop here) so other
                // clients can make the condition true.
            }
            if let Some(stats) = &stats {
                RuntimeStats::bump(&stats.wait_condition_retries);
            }
            if attempts == 1 {
                let slot = parking.as_ref().expect("registered on first failure");
                for (registry, owner) in self.set.deadlock_targets() {
                    let waiter_id = current_waiter(&registry);
                    let probe = Arc::clone(&parked);
                    let wake = Arc::clone(&slot.waiter);
                    reserve_edges.push(registry.register(
                        waiter_id,
                        owner,
                        EdgeKind::ReserveWait,
                        Some(Arc::new(move || wake.parker.wake())),
                        Some(Arc::new(move || {
                            probe.load(std::sync::atomic::Ordering::Acquire)
                        })),
                    ));
                }
            }
            if reserve_edges.iter().any(EdgeGuard::is_broken) {
                // The deadlock monitor confirmed a cycle through this wait
                // and broke it here: surface it as a timeout.
                if let Some(stats) = &stats {
                    RuntimeStats::bump(&stats.deadlocks_broken);
                }
                return Err(WaitTimeout { attempts });
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(WaitTimeout { attempts });
                }
            }
            if attempts <= self.config.spin_retries {
                // Young conditions often come true within a round trip or
                // two; a short spin window spares them the park/unpark.
                backoff.spin();
                continue;
            }
            let waiter = &parking
                .as_ref()
                .expect("registered on first failure")
                .waiter;
            let signaled_or_broken = || {
                waiter.signaled.load(std::sync::atomic::Ordering::Acquire)
                    || reserve_edges.iter().any(EdgeGuard::is_broken)
            };
            let park_timer = qs_obs::timer();
            parked.store(true, std::sync::atomic::Ordering::Release);
            match deadline {
                Some(deadline) => {
                    waiter
                        .parker
                        .park_until_deadline(signaled_or_broken, deadline);
                }
                None => waiter.parker.park_until(signaled_or_broken),
            }
            parked.store(false, std::sync::atomic::Ordering::Release);
            let was_signaled = waiter.signaled.load(std::sync::atomic::Ordering::Acquire);
            if was_signaled {
                if let Some(stats) = &stats {
                    RuntimeStats::bump(&stats.guard_wakeups);
                }
                // Park-to-resume interval of a signalled guard waiter: the
                // latency cost of the event-driven wait relative to polling.
                park_timer.record(qs_obs::obs_histogram!("guard.park_resume_ns"));
                qs_obs::trace(qs_obs::TraceKind::GuardWakeup, attempts as u64, 0);
            }
            // Resolve a break or an expired deadline *before* re-evaluating:
            // in a genuine cycle the handlers this wait observes are
            // themselves blocked, so another evaluation would hang in its
            // sync instead of surfacing the error.  A signalled waiter past
            // its deadline still gets the re-evaluation — the post-attempt
            // deadline check above fails it if the condition is still false.
            if reserve_edges.iter().any(EdgeGuard::is_broken) {
                if let Some(stats) = &stats {
                    RuntimeStats::bump(&stats.deadlocks_broken);
                }
                return Err(WaitTimeout { attempts });
            }
            if !was_signaled {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        return Err(WaitTimeout { attempts });
                    }
                }
            }
        }
    }

    /// The legacy retry-polling wait loop: spin, then yield, then sleep
    /// [`RETRY_SLEEP`] between evaluations.  Kept for bounded-attempt
    /// policies (`max_retries`) — where every attempt must actually run —
    /// and as the `wait-retry-poll` differential-testing baseline.
    fn try_run_polling<R>(self, body: impl FnOnce(&mut S::Guards) -> R) -> Result<R, WaitTimeout> {
        let stats = self.set.shared_stats();
        let mut body = Some(body);
        let mut attempts = 0usize;
        let started = Instant::now();
        let deadline = self.config.max_wait.map(|max_wait| started + max_wait);
        let backoff = Backoff::new();
        // Deadlock tracking: while the wait condition keeps retrying, this
        // client is (conditionally) blocked on every handler of the set —
        // registered as ReserveWait edges from the first failed attempt
        // until the condition holds or the policy times out.  The edges
        // carry a probe gated on `waiting`: it is false only while the
        // client is actively re-reserving and evaluating the condition
        // (making progress — such an instant must not complete a cycle at
        // scan time, e.g. against the Serving edge of the very block the
        // evaluation holds open) and true everywhere else in the retry
        // loop.  Note the blocking parts of an evaluation are covered
        // regardless: the sync round-trips inside `holds` register their
        // own Query edges.
        let mut reserve_edges: Vec<EdgeGuard> = Vec::new();
        let waiting = Arc::new(std::sync::atomic::AtomicBool::new(false));
        loop {
            attempts += 1;
            if let Some(stats) = &stats {
                RuntimeStats::bump(&stats.wait_condition_checks);
            }
            waiting.store(false, std::sync::atomic::Ordering::Release);
            {
                let mut guards = self.set.begin();
                if self.condition.holds(&mut guards) {
                    // The condition holds and the reservation stays open, so
                    // no other client can invalidate it before the body has
                    // run (§2.2 guarantee 2).
                    let body = body.take().expect("body consumed once");
                    return Ok(body(&mut guards));
                }
                // Release the reservation (guards drop here) so other
                // clients can make the condition true.
            }
            waiting.store(true, std::sync::atomic::Ordering::Release);
            if let Some(stats) = &stats {
                RuntimeStats::bump(&stats.wait_condition_retries);
            }
            if attempts == 1 {
                for (registry, owner) in self.set.deadlock_targets() {
                    let waiter = current_waiter(&registry);
                    let probe = Arc::clone(&waiting);
                    reserve_edges.push(registry.register(
                        waiter,
                        owner,
                        EdgeKind::ReserveWait,
                        None,
                        Some(Arc::new(move || {
                            probe.load(std::sync::atomic::Ordering::Acquire)
                        })),
                    ));
                }
            }
            if reserve_edges.iter().any(EdgeGuard::is_broken) {
                if let Some(stats) = &stats {
                    RuntimeStats::bump(&stats.deadlocks_broken);
                }
                return Err(WaitTimeout { attempts });
            }
            if let Some(limit) = self.config.max_retries {
                if attempts >= limit {
                    return Err(WaitTimeout { attempts });
                }
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    return Err(WaitTimeout { attempts });
                }
            }
            if attempts <= self.config.spin_retries {
                backoff.spin();
            } else if attempts <= RETRY_SLEEP_AFTER {
                std::thread::yield_now();
                backoff.snooze();
            } else {
                // Deep retries: the condition has failed hundreds of times,
                // so trade sub-millisecond reaction for not burning a core —
                // which also gives the deadlock detector wide `waiting`
                // windows to sample a genuinely stuck reservation in.  The
                // sleep never overshoots a wall-clock deadline: it is
                // clamped to the time remaining.
                let nap = match deadline {
                    Some(deadline) => deadline
                        .saturating_duration_since(Instant::now())
                        .min(RETRY_SLEEP),
                    None => RETRY_SLEEP,
                };
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizationLevel, RuntimeConfig};
    use crate::runtime::Runtime;

    #[test]
    fn single_handler_reserve_matches_separate() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let cell = rt.spawn_handler(0u32);
        let doubled = reserve(&cell).run(|guard| {
            guard.call(|n| *n = 21);
            guard.query(|n| *n * 2)
        });
        assert_eq!(doubled, 42);
        // Arity 1 must not touch the multi-reservation machinery.
        assert_eq!(rt.stats_snapshot().multi_reservations, 0);
        assert_eq!(rt.stats_snapshot().separate_blocks, 1);
    }

    #[test]
    fn tuple_reserve_sees_consistent_state() {
        // Fig. 5: painters colour (x, y) atomically; an observer reserving
        // both must never see mixed colours.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let x = rt.spawn_handler(0u8);
            let y = rt.spawn_handler(0u8);
            let mut painters = Vec::new();
            for colour in [1u8, 2u8] {
                let x = x.clone();
                let y = y.clone();
                painters.push(std::thread::spawn(move || {
                    for _ in 0..200 {
                        reserve((&x, &y)).run(|(sx, sy)| {
                            sx.call(move |v| *v = colour);
                            sy.call(move |v| *v = colour);
                        });
                    }
                }));
            }
            let observer = {
                let x = x.clone();
                let y = y.clone();
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let (cx, cy) =
                            reserve((&x, &y)).run(|(sx, sy)| (sx.query(|v| *v), sy.query(|v| *v)));
                        assert_eq!(cx, cy, "observed mixed colours under {level}");
                    }
                })
            };
            for painter in painters {
                painter.join().unwrap();
            }
            observer.join().unwrap();
        }
    }

    #[test]
    fn arity_four_tuples_reserve_heterogeneous_handlers() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(1u32);
        let b = rt.spawn_handler(String::new());
        let c = rt.spawn_handler(Vec::<u8>::new());
        let d = rt.spawn_handler(0.5f64);
        reserve((&a, &b, &c, &d)).run(|(sa, sb, sc, sd)| {
            sa.call(|n| *n += 1);
            sb.call(|s| s.push('q'));
            sc.call(|v| v.push(3));
            sd.call(|f| *f *= 4.0);
            assert_eq!(sa.query(|n| *n), 2);
            assert_eq!(sb.query(|s| s.clone()), "q");
            assert_eq!(sc.query(|v| v.len()), 1);
            assert_eq!(sd.query(|f| *f), 2.0);
        });
        assert_eq!(rt.stats_snapshot().multi_reservations, 1);
    }

    #[test]
    fn slice_reserve_handles_empty_single_and_many() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let none: Vec<Handler<u64>> = Vec::new();
        assert_eq!(reserve(&none[..]).run(|guards| guards.len()), 0);

        let one = vec![rt.spawn_handler(5u64)];
        assert_eq!(reserve(&one).run(|guards| guards[0].query(|v| *v)), 5);
        // A singleton set takes the lock-free fast path.
        assert_eq!(rt.stats_snapshot().multi_reservations, 0);

        let handlers: Vec<_> = (0..6).map(|i| rt.spawn_handler(i as u64)).collect();
        let sum = reserve(&handlers)
            .run(|guards| guards.iter_mut().map(|g| g.query(|v| *v)).sum::<u64>());
        assert_eq!(sum, (0..6).sum());
        assert_eq!(rt.stats_snapshot().multi_reservations, 1);
    }

    #[test]
    fn opposite_order_reservations_do_not_deadlock() {
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let x = rt.spawn_handler(0u64);
            let y = rt.spawn_handler(0u64);
            let t1 = {
                let (x, y) = (x.clone(), y.clone());
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        reserve((&x, &y)).run(|(sx, sy)| {
                            sx.call(|v| *v += 1);
                            sy.call(|v| *v += 1);
                        });
                    }
                })
            };
            let t2 = {
                let (x, y) = (x.clone(), y.clone());
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        reserve((&y, &x)).run(|(sy, sx)| {
                            sy.call(|v| *v += 1);
                            sx.call(|v| *v += 1);
                        });
                    }
                })
            };
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(x.query_detached(|v| *v), 1_000);
            assert_eq!(y.query_detached(|v| *v), 1_000);
        }
    }

    #[test]
    fn triple_wait_condition_holds_under_the_reservation() {
        // The arity-3 guarded invariant the old API could not express.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt = Runtime::new(level.config());
            let a = rt.spawn_handler(0i64);
            let b = rt.spawn_handler(0i64);
            let c = rt.spawn_handler(0i64);
            let feeder = {
                let (a, b, c) = (a.clone(), b.clone(), c.clone());
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        reserve((&a, &b, &c)).run(|(sa, sb, sc)| {
                            sa.call(|v| *v += 1);
                            sb.call(|v| *v += 2);
                            sc.call(|v| *v += 3);
                        });
                    }
                })
            };
            let observed = reserve((&a, &b, &c))
                .when(|a: &i64, b: &i64, c: &i64| a + b + c >= 60)
                .run(|(sa, sb, sc)| sa.query(|v| *v) + sb.query(|v| *v) + sc.query(|v| *v));
            assert_eq!(observed % 6, 0, "level {level}: tuple must be consistent");
            assert!(observed >= 60);
            feeder.join().unwrap();
        }
    }

    #[test]
    fn bounded_retries_and_wall_clock_timeouts_fire() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(0u32);
        let c = rt.spawn_handler(0u32);

        let by_attempts = reserve((&a, &b, &c))
            .when(|a: &u32, b: &u32, c: &u32| *a + *b + *c > 0)
            .timeout(WaitConfig::bounded(4))
            .try_run(|_| ());
        assert_eq!(by_attempts, Err(WaitTimeout { attempts: 4 }));

        let by_clock = reserve((&a, &b))
            .when(|a: &u32, b: &u32| *a + *b > 0)
            .timeout(WaitConfig::wall_clock(std::time::Duration::from_millis(15)))
            .try_run(|_| ());
        assert!(by_clock.is_err(), "wall-clock timeout must fire");
        assert!(rt.stats_snapshot().wait_condition_retries >= 4);
    }

    #[test]
    fn slice_wait_condition_sees_all_objects() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let handlers: Vec<_> = (0..4).map(|_| rt.spawn_handler(0u64)).collect();
        let feeder = {
            let handlers = handlers.clone();
            std::thread::spawn(move || {
                for h in &handlers {
                    h.call_detached(|v| *v += 1);
                }
            })
        };
        let total = reserve(&handlers)
            .when(|objects: &[&u64]| objects.iter().all(|v| **v >= 1))
            .run(|guards| guards.iter_mut().map(|g| g.query(|v| *v)).sum::<u64>());
        assert_eq!(total, 4);
        feeder.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "same handler twice")]
    fn duplicate_handlers_in_a_set_are_rejected() {
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let x = rt.spawn_handler(0u8);
        reserve((&x, &x)).run(|_| ());
    }

    #[test]
    fn handlers_from_different_runtimes_can_share_a_set() {
        // Handler ids are per-runtime, so `a` and `b` both carry id 1; the
        // lock order falls back to the core address and the distinct
        // handlers must not be mistaken for duplicates.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let rt1 = Runtime::new(level.config());
            let rt2 = Runtime::new(level.config());
            let a = rt1.spawn_handler(0u64);
            let b = rt2.spawn_handler(0u64);
            assert_eq!(a.id(), b.id(), "precondition: per-runtime ids collide");
            let t1 = {
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        reserve((&a, &b)).run(|(sa, sb)| {
                            sa.call(|v| *v += 1);
                            sb.call(|v| *v += 1);
                        });
                    }
                })
            };
            let t2 = {
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        reserve((&b, &a)).run(|(sb, sa)| {
                            sb.call(|v| *v += 1);
                            sa.call(|v| *v += 1);
                        });
                    }
                })
            };
            t1.join().unwrap();
            t2.join().unwrap();
            assert_eq!(a.query_detached(|v| *v), 400, "level {level}");
            assert_eq!(b.query_detached(|v| *v), 400, "level {level}");
        }
    }

    #[test]
    fn reservation_released_between_retries_lets_others_progress() {
        // If the waiter held its reservation while waiting this would
        // deadlock — completion is evidence the reservation is released
        // between attempts.
        let rt = Runtime::new(RuntimeConfig::all_optimizations());
        let flag = rt.spawn_handler(false);
        let other = rt.spawn_handler(0u8);
        let helper = {
            let flag = flag.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.call_detached(|f| *f = true);
            })
        };
        let observed = reserve((&flag, &other))
            .when(|f: &bool, _: &u8| *f)
            .run(|(sf, _)| sf.query(|f| *f));
        assert!(observed);
        helper.join().unwrap();
    }
}
