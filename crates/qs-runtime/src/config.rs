//! Runtime configuration: the optimisation axes evaluated in §4 of the paper.

use std::fmt;

pub use qs_obs::ObservabilityMode;

/// The five named configurations compared in §4 (Tables 1 and 2).
///
/// Each level maps to a [`RuntimeConfig`]; the *Static* level additionally
/// requires the program to have been transformed by the sync-coalescing pass
/// (either via `qs-compiler` or by hand-hoisting [`crate::Separate::sync`]
/// out of loops), which the workload crate takes care of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizationLevel {
    /// No optimisations: lock-based handler reservation, handler-executed
    /// queries, a sync round-trip per query.
    None,
    /// Dynamic sync-coalescing (§3.4.1) plus client-executed queries (§3.2).
    Dynamic,
    /// Static sync-coalescing (§3.4.2): the program performs explicit,
    /// statically-placed syncs; the runtime itself runs like `None` but with
    /// client-executed queries so elided syncs actually pay nothing.
    Static,
    /// Queue-of-queues communication (§2.3/§3.1) without any sync reduction.
    QoQ,
    /// All optimisations together: the full SCOOP/Qs runtime.
    All,
}

impl OptimizationLevel {
    /// All five levels in the order the paper's tables list them.
    pub const ALL: [OptimizationLevel; 5] = [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
        OptimizationLevel::QoQ,
        OptimizationLevel::All,
    ];

    /// The [`RuntimeConfig`] corresponding to this level.
    pub fn config(self) -> RuntimeConfig {
        match self {
            OptimizationLevel::None => RuntimeConfig::unoptimized(),
            OptimizationLevel::Dynamic => RuntimeConfig {
                dynamic_sync_coalescing: true,
                client_executed_queries: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::Static => RuntimeConfig {
                client_executed_queries: true,
                assume_static_sync: true,
                auto_read: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::QoQ => RuntimeConfig {
                queue_of_queues: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::All => RuntimeConfig::all_optimizations(),
        }
    }

    /// The short name used in the paper's tables ("none", "Dyn.", …).
    pub fn label(self) -> &'static str {
        match self {
            OptimizationLevel::None => "None",
            OptimizationLevel::Dynamic => "Dynamic",
            OptimizationLevel::Static => "Static",
            OptimizationLevel::QoQ => "QoQ",
            OptimizationLevel::All => "All",
        }
    }
}

impl fmt::Display for OptimizationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How handler main loops are mapped onto OS threads.
///
/// The paper's prototype multiplexes handlers over user-level threads so
/// that "millions of objects" does not mean "millions of OS threads".  The
/// runtime offers both substitutions:
///
/// * [`Dedicated`](SchedulerMode::Dedicated) — one (cached) OS thread per
///   *live* handler.  Handler bodies may block freely, but the number of
///   concurrently live handlers is capped by what the OS tolerates in
///   threads.
/// * [`Pooled`](SchedulerMode::Pooled) — M:N: every handler is a resumable
///   task on a fixed work-stealing worker pool
///   ([`qs_exec::HandlerScheduler`]), re-armed by producer-side wake hooks
///   when work arrives.  Idle handlers cost no thread, so tens of thousands
///   of mostly-idle handlers run on a handful of workers.  Steps that block
///   (nested separate blocks, bounded-mailbox backpressure) pin a worker;
///   the scheduler's monitor detects the stall and spawns compensation
///   workers so the pool cannot starve itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerMode {
    /// One cached OS thread per live handler (the pre-M:N behaviour).
    Dedicated,
    /// Handlers are multiplexed onto `workers` pool threads; `0` sizes the
    /// pool to the machine's available parallelism (at least 2, so a single
    /// blocking handler on a single-core box does not immediately lean on
    /// compensation).
    Pooled {
        /// Core worker threads; `0` = auto-size.
        workers: usize,
    },
}

impl SchedulerMode {
    /// The number of pool workers this mode resolves to, or `None` for
    /// dedicated threads.
    pub fn effective_workers(self) -> Option<usize> {
        match self {
            SchedulerMode::Dedicated => None,
            SchedulerMode::Pooled { workers: 0 } => Some(qs_exec::default_parallelism().max(2)),
            SchedulerMode::Pooled { workers } => Some(workers),
        }
    }

    /// Returns `true` for the pooled (M:N) mode.
    pub fn is_pooled(self) -> bool {
        matches!(self, SchedulerMode::Pooled { .. })
    }

    /// Short display label ("Dedicated" / "Pooled").
    pub fn label(self) -> &'static str {
        match self {
            SchedulerMode::Dedicated => "Dedicated",
            SchedulerMode::Pooled { .. } => "Pooled",
        }
    }
}

impl Default for SchedulerMode {
    /// Defaults to the auto-sized pooled scheduler.
    fn default() -> Self {
        SchedulerMode::Pooled { workers: 0 }
    }
}

impl fmt::Display for SchedulerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the runtime does about wait-for cycles among handlers and clients.
///
/// Bounded mailboxes (the default) add blocking edges the paper's §2.5
/// deadlock argument does not cover: a producer blocked pushing into a full
/// mailbox.  With a policy other than [`Off`](DeadlockPolicy::Off), the
/// runtime's blocking edges — query/sync handoffs, blocked bounded pushes,
/// handlers parked on open private queues, `reserve().when(...)` retries —
/// report into a per-runtime `qs-deadlock` wait-for registry, and a
/// detector thread runs incremental cycle detection over it.  (Not yet
/// tracked: acquiring the lock-based configuration's handler lock itself;
/// see the ROADMAP follow-up.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeadlockPolicy {
    /// No tracking, no detector thread, zero overhead on every blocking
    /// path (the default).  A cyclic topology hangs silently, as in the
    /// seed runtime.
    #[default]
    Off,
    /// Detect and report: a confirmed cycle is logged, counted in the
    /// `deadlocks_detected` statistic and retrievable via
    /// `Runtime::deadlock_reports`.  The cycle itself is left in place.
    Report,
    /// Detect, report, then *break* the cycle: one blocked bounded push on
    /// it is failed — the push aborts, the logging `call` panics with
    /// [`crate::MailboxError::DeadlockBroken`] (caught and counted like any
    /// handler-side call panic), and the freed handler unwinds the rest of
    /// the cycle.  Cycles without a bounded-push edge (pure query cycles)
    /// are only reported.
    Break,
}

impl DeadlockPolicy {
    /// `true` unless the policy is [`Off`](DeadlockPolicy::Off).
    pub fn is_enabled(self) -> bool {
        !matches!(self, DeadlockPolicy::Off)
    }

    /// `true` for the cycle-breaking policy.
    pub fn breaks_cycles(self) -> bool {
        matches!(self, DeadlockPolicy::Break)
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            DeadlockPolicy::Off => "Off",
            DeadlockPolicy::Report => "Report",
            DeadlockPolicy::Break => "Break",
        }
    }
}

impl fmt::Display for DeadlockPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Default bound on every client mailbox (private queue / shared request
/// queue).  Large enough that well-paced workloads never stall, small enough
/// that a slow handler caps its memory at `clients × capacity` requests
/// instead of growing without limit.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Default maximum number of requests the handler drains from a mailbox per
/// queue crossing.
pub const DEFAULT_MAX_BATCH: usize = 32;

/// Fine-grained runtime switches; see [`OptimizationLevel`] for the bundles
/// evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Use the queue-of-queues + private SPSC queues communication structure.
    /// When `false`, the pre-Qs lock-based handler (single request queue,
    /// handler lock held for the whole separate block) is used.
    pub queue_of_queues: bool,
    /// Execute queries on the client after a sync, instead of packaging the
    /// call and running it on the handler (§3.2).
    pub client_executed_queries: bool,
    /// Track a `synced` flag per private queue and skip redundant sync
    /// round-trips (§3.4.1).
    pub dynamic_sync_coalescing: bool,
    /// The program has been statically transformed so that explicit
    /// [`crate::Separate::sync`] calls are already minimal; queries issued
    /// through [`crate::Separate::query_unsynced`] skip even the dynamic
    /// synced-flag check.  This flag exists for reporting purposes (it does
    /// not change runtime behaviour on its own).
    pub assume_static_sync: bool,
    /// How handler main loops are mapped onto OS threads: one dedicated
    /// cached thread per live handler, or M:N over a fixed work-stealing
    /// pool (the default).  Applies to every [`OptimizationLevel`].
    pub scheduler: SchedulerMode,
    /// Maximum number of idle handler threads kept cached for reuse
    /// (dedicated scheduling mode only).
    pub handler_thread_cache: usize,
    /// Bound on each client mailbox (private SPSC queue on the
    /// queue-of-queues path, shared request queue on the lock-based path).
    /// `None` reverts to the paper's unbounded queues; with a bound, clients
    /// that outrun the handler block on enqueue (*backpressure*) instead of
    /// growing the queue without limit.  Applies to every
    /// [`OptimizationLevel`].
    pub mailbox_capacity: Option<usize>,
    /// Maximum number of requests the handler drains from a mailbox per
    /// queue crossing (always at least 1).  Batch draining amortises the
    /// per-request dequeue cost on the hottest runtime path; `1` reproduces
    /// the seed's one-request-per-iteration loop.
    pub max_batch: usize,
    /// Runtime deadlock detection over the live wait-for graph (queries,
    /// blocked bounded pushes, open-queue serving, reservation retries).
    /// `Off` (the default) keeps every blocking path un-instrumented.
    /// Applies to every [`OptimizationLevel`].
    pub deadlock_policy: DeadlockPolicy,
    /// Honour the effect-inference pass's read-only verdicts: separate
    /// blocks the static analysis proves query-only are reserved in shared
    /// read mode (`reserve(..).read()`) instead of exclusively.  Off, every
    /// block reserves exclusively regardless of the verdict — the
    /// differential baseline for the auto-`.read()` path.  Enabled on the
    /// `Static` and `All` levels (the ones that trust static transforms).
    pub auto_read: bool,
    /// How much the runtime records about itself (see `qs-obs`):
    /// [`ObservabilityMode::Off`] (the default) keeps every instrumentation
    /// site down to one relaxed load; `Counters` arms the latency
    /// histograms and counters of the process-wide metrics registry;
    /// `Full` additionally records typed trace events into per-thread ring
    /// buffers, exportable as a Chrome trace.  The mode is process-global
    /// (like a `tracing` subscriber): constructing a runtime *raises* it,
    /// so one `Full` runtime among `Off` runtimes records.  Applies to
    /// every [`OptimizationLevel`].
    pub observability: ObservabilityMode,
}

impl RuntimeConfig {
    /// The unoptimised baseline: lock-based handlers, handler-executed
    /// queries, no sync coalescing.
    pub fn unoptimized() -> Self {
        RuntimeConfig {
            queue_of_queues: false,
            client_executed_queries: false,
            dynamic_sync_coalescing: false,
            assume_static_sync: false,
            scheduler: SchedulerMode::default(),
            handler_thread_cache: 64,
            mailbox_capacity: Some(DEFAULT_MAILBOX_CAPACITY),
            max_batch: DEFAULT_MAX_BATCH,
            deadlock_policy: DeadlockPolicy::Off,
            auto_read: false,
            observability: ObservabilityMode::Off,
        }
    }

    /// Every optimisation enabled: the full SCOOP/Qs runtime.
    pub fn all_optimizations() -> Self {
        RuntimeConfig {
            queue_of_queues: true,
            client_executed_queries: true,
            dynamic_sync_coalescing: true,
            assume_static_sync: true,
            scheduler: SchedulerMode::default(),
            handler_thread_cache: 64,
            mailbox_capacity: Some(DEFAULT_MAILBOX_CAPACITY),
            max_batch: DEFAULT_MAX_BATCH,
            deadlock_policy: DeadlockPolicy::Off,
            auto_read: true,
            observability: ObservabilityMode::Off,
        }
    }

    /// The configuration for a named optimisation level.
    pub fn for_level(level: OptimizationLevel) -> Self {
        level.config()
    }

    /// Returns this configuration with the mailbox bound replaced (`None` =
    /// unbounded, the paper's original queues).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn with_mailbox_capacity(mut self, capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "a bounded mailbox needs capacity >= 1");
        self.mailbox_capacity = capacity;
        self
    }

    /// Returns this configuration with the drain batch limit replaced
    /// (clamped to at least 1; `1` reproduces the seed's
    /// one-request-per-iteration handler loop).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Returns this configuration with the handler scheduling mode replaced
    /// (`SchedulerMode::Dedicated` = one cached OS thread per live handler,
    /// `SchedulerMode::Pooled { workers }` = M:N on a work-stealing pool).
    pub fn with_scheduler(mut self, scheduler: SchedulerMode) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns this configuration with the deadlock-detection policy
    /// replaced; see [`DeadlockPolicy`].
    pub fn with_deadlock_policy(mut self, policy: DeadlockPolicy) -> Self {
        self.deadlock_policy = policy;
        self
    }

    /// Returns this configuration with the auto-`.read()` downgrade knob
    /// replaced: whether separate blocks the effect-inference pass proves
    /// read-only are reserved in shared read mode.
    pub fn with_auto_read(mut self, auto_read: bool) -> Self {
        self.auto_read = auto_read;
        self
    }

    /// Returns this configuration with the observability mode replaced;
    /// see [`ObservabilityMode`].
    pub fn with_observability(mut self, observability: ObservabilityMode) -> Self {
        self.observability = observability;
        self
    }
}

impl Default for RuntimeConfig {
    /// Defaults to the fully optimised SCOOP/Qs configuration.
    fn default() -> Self {
        Self::all_optimizations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let c = RuntimeConfig::default();
        assert!(c.queue_of_queues);
        assert!(c.client_executed_queries);
        assert!(c.dynamic_sync_coalescing);
    }

    #[test]
    fn none_level_disables_everything() {
        let c = OptimizationLevel::None.config();
        assert!(!c.queue_of_queues);
        assert!(!c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
        assert!(!c.assume_static_sync);
    }

    #[test]
    fn qoq_level_enables_only_queues() {
        let c = OptimizationLevel::QoQ.config();
        assert!(c.queue_of_queues);
        assert!(!c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
    }

    #[test]
    fn dynamic_level_enables_coalescing_and_client_queries() {
        let c = OptimizationLevel::Dynamic.config();
        assert!(!c.queue_of_queues);
        assert!(c.client_executed_queries);
        assert!(c.dynamic_sync_coalescing);
    }

    #[test]
    fn static_level_marks_static_sync() {
        let c = OptimizationLevel::Static.config();
        assert!(c.assume_static_sync);
        assert!(c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
        assert!(c.auto_read, "Static trusts the effect pass");
    }

    #[test]
    fn auto_read_follows_the_static_transform_levels() {
        assert!(!OptimizationLevel::None.config().auto_read);
        assert!(!OptimizationLevel::Dynamic.config().auto_read);
        assert!(!OptimizationLevel::QoQ.config().auto_read);
        assert!(OptimizationLevel::Static.config().auto_read);
        assert!(OptimizationLevel::All.config().auto_read);
        let c = RuntimeConfig::default().with_auto_read(false);
        assert!(!c.auto_read);
        assert!(c.with_auto_read(true).auto_read);
    }

    #[test]
    fn every_level_carries_the_mailbox_knobs() {
        for level in OptimizationLevel::ALL {
            let c = level.config();
            assert_eq!(
                c.mailbox_capacity,
                Some(DEFAULT_MAILBOX_CAPACITY),
                "{level}"
            );
            assert_eq!(c.max_batch, DEFAULT_MAX_BATCH, "{level}");
        }
    }

    #[test]
    fn every_level_defaults_to_the_pooled_scheduler() {
        for level in OptimizationLevel::ALL {
            let c = level.config();
            assert_eq!(c.scheduler, SchedulerMode::Pooled { workers: 0 }, "{level}");
            assert!(c.scheduler.is_pooled(), "{level}");
        }
    }

    #[test]
    fn scheduler_mode_resolves_workers() {
        assert_eq!(SchedulerMode::Dedicated.effective_workers(), None);
        assert_eq!(
            SchedulerMode::Pooled { workers: 3 }.effective_workers(),
            Some(3)
        );
        let auto = SchedulerMode::Pooled { workers: 0 }
            .effective_workers()
            .expect("pooled resolves to a worker count");
        assert!(auto >= 2, "auto-sizing keeps at least two workers: {auto}");
        assert_eq!(SchedulerMode::Dedicated.to_string(), "Dedicated");
        assert_eq!(SchedulerMode::default().label(), "Pooled");
    }

    #[test]
    fn scheduler_builder_overrides_the_mode() {
        let c = RuntimeConfig::default().with_scheduler(SchedulerMode::Dedicated);
        assert_eq!(c.scheduler, SchedulerMode::Dedicated);
        assert!(!c.scheduler.is_pooled());
        let c = c.with_scheduler(SchedulerMode::Pooled { workers: 2 });
        assert_eq!(c.scheduler.effective_workers(), Some(2));
    }

    #[test]
    fn mailbox_builders_override_and_clamp() {
        let c = OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(7))
            .with_max_batch(0);
        assert_eq!(c.mailbox_capacity, Some(7));
        assert_eq!(c.max_batch, 1, "max_batch clamps to at least 1");
        let unbounded = c.with_mailbox_capacity(None);
        assert_eq!(unbounded.mailbox_capacity, None);
    }

    #[test]
    fn deadlock_policy_defaults_off_on_every_level() {
        for level in OptimizationLevel::ALL {
            let c = level.config();
            assert_eq!(c.deadlock_policy, DeadlockPolicy::Off, "{level}");
            assert!(!c.deadlock_policy.is_enabled());
        }
        let c = RuntimeConfig::default().with_deadlock_policy(DeadlockPolicy::Report);
        assert!(c.deadlock_policy.is_enabled());
        assert!(!c.deadlock_policy.breaks_cycles());
        let c = c.with_deadlock_policy(DeadlockPolicy::Break);
        assert!(c.deadlock_policy.breaks_cycles());
        assert_eq!(DeadlockPolicy::Break.to_string(), "Break");
        assert_eq!(DeadlockPolicy::default().label(), "Off");
    }

    #[test]
    fn observability_defaults_off_on_every_level() {
        // Off must be the zero-cost default everywhere: no level silently
        // arms the registry or the trace rings.
        for level in OptimizationLevel::ALL {
            let c = level.config();
            assert_eq!(c.observability, ObservabilityMode::Off, "{level}");
        }
        let c = RuntimeConfig::default().with_observability(ObservabilityMode::Counters);
        assert_eq!(c.observability, ObservabilityMode::Counters);
        let c = c.with_observability(ObservabilityMode::Full);
        assert_eq!(c.observability, ObservabilityMode::Full);
        assert_eq!(ObservabilityMode::Full.to_string(), "full");
        assert_eq!(ObservabilityMode::default().label(), "off");
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_mailbox_capacity_is_rejected() {
        let _ = RuntimeConfig::default().with_mailbox_capacity(Some(0));
    }

    #[test]
    fn labels_match_paper_tables() {
        let labels: Vec<_> = OptimizationLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["None", "Dynamic", "Static", "QoQ", "All"]);
        assert_eq!(OptimizationLevel::All.to_string(), "All");
    }
}
