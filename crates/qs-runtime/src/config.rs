//! Runtime configuration: the optimisation axes evaluated in §4 of the paper.

use std::fmt;

/// The five named configurations compared in §4 (Tables 1 and 2).
///
/// Each level maps to a [`RuntimeConfig`]; the *Static* level additionally
/// requires the program to have been transformed by the sync-coalescing pass
/// (either via `qs-compiler` or by hand-hoisting [`crate::Separate::sync`]
/// out of loops), which the workload crate takes care of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptimizationLevel {
    /// No optimisations: lock-based handler reservation, handler-executed
    /// queries, a sync round-trip per query.
    None,
    /// Dynamic sync-coalescing (§3.4.1) plus client-executed queries (§3.2).
    Dynamic,
    /// Static sync-coalescing (§3.4.2): the program performs explicit,
    /// statically-placed syncs; the runtime itself runs like `None` but with
    /// client-executed queries so elided syncs actually pay nothing.
    Static,
    /// Queue-of-queues communication (§2.3/§3.1) without any sync reduction.
    QoQ,
    /// All optimisations together: the full SCOOP/Qs runtime.
    All,
}

impl OptimizationLevel {
    /// All five levels in the order the paper's tables list them.
    pub const ALL: [OptimizationLevel; 5] = [
        OptimizationLevel::None,
        OptimizationLevel::Dynamic,
        OptimizationLevel::Static,
        OptimizationLevel::QoQ,
        OptimizationLevel::All,
    ];

    /// The [`RuntimeConfig`] corresponding to this level.
    pub fn config(self) -> RuntimeConfig {
        match self {
            OptimizationLevel::None => RuntimeConfig::unoptimized(),
            OptimizationLevel::Dynamic => RuntimeConfig {
                dynamic_sync_coalescing: true,
                client_executed_queries: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::Static => RuntimeConfig {
                client_executed_queries: true,
                assume_static_sync: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::QoQ => RuntimeConfig {
                queue_of_queues: true,
                ..RuntimeConfig::unoptimized()
            },
            OptimizationLevel::All => RuntimeConfig::all_optimizations(),
        }
    }

    /// The short name used in the paper's tables ("none", "Dyn.", …).
    pub fn label(self) -> &'static str {
        match self {
            OptimizationLevel::None => "None",
            OptimizationLevel::Dynamic => "Dynamic",
            OptimizationLevel::Static => "Static",
            OptimizationLevel::QoQ => "QoQ",
            OptimizationLevel::All => "All",
        }
    }
}

impl fmt::Display for OptimizationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Default bound on every client mailbox (private queue / shared request
/// queue).  Large enough that well-paced workloads never stall, small enough
/// that a slow handler caps its memory at `clients × capacity` requests
/// instead of growing without limit.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 1024;

/// Default maximum number of requests the handler drains from a mailbox per
/// queue crossing.
pub const DEFAULT_MAX_BATCH: usize = 32;

/// Fine-grained runtime switches; see [`OptimizationLevel`] for the bundles
/// evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Use the queue-of-queues + private SPSC queues communication structure.
    /// When `false`, the pre-Qs lock-based handler (single request queue,
    /// handler lock held for the whole separate block) is used.
    pub queue_of_queues: bool,
    /// Execute queries on the client after a sync, instead of packaging the
    /// call and running it on the handler (§3.2).
    pub client_executed_queries: bool,
    /// Track a `synced` flag per private queue and skip redundant sync
    /// round-trips (§3.4.1).
    pub dynamic_sync_coalescing: bool,
    /// The program has been statically transformed so that explicit
    /// [`crate::Separate::sync`] calls are already minimal; queries issued
    /// through [`crate::Separate::query_unsynced`] skip even the dynamic
    /// synced-flag check.  This flag exists for reporting purposes (it does
    /// not change runtime behaviour on its own).
    pub assume_static_sync: bool,
    /// Maximum number of idle handler threads kept cached for reuse.
    pub handler_thread_cache: usize,
    /// Bound on each client mailbox (private SPSC queue on the
    /// queue-of-queues path, shared request queue on the lock-based path).
    /// `None` reverts to the paper's unbounded queues; with a bound, clients
    /// that outrun the handler block on enqueue (*backpressure*) instead of
    /// growing the queue without limit.  Applies to every
    /// [`OptimizationLevel`].
    pub mailbox_capacity: Option<usize>,
    /// Maximum number of requests the handler drains from a mailbox per
    /// queue crossing (always at least 1).  Batch draining amortises the
    /// per-request dequeue cost on the hottest runtime path; `1` reproduces
    /// the seed's one-request-per-iteration loop.
    pub max_batch: usize,
}

impl RuntimeConfig {
    /// The unoptimised baseline: lock-based handlers, handler-executed
    /// queries, no sync coalescing.
    pub fn unoptimized() -> Self {
        RuntimeConfig {
            queue_of_queues: false,
            client_executed_queries: false,
            dynamic_sync_coalescing: false,
            assume_static_sync: false,
            handler_thread_cache: 64,
            mailbox_capacity: Some(DEFAULT_MAILBOX_CAPACITY),
            max_batch: DEFAULT_MAX_BATCH,
        }
    }

    /// Every optimisation enabled: the full SCOOP/Qs runtime.
    pub fn all_optimizations() -> Self {
        RuntimeConfig {
            queue_of_queues: true,
            client_executed_queries: true,
            dynamic_sync_coalescing: true,
            assume_static_sync: true,
            handler_thread_cache: 64,
            mailbox_capacity: Some(DEFAULT_MAILBOX_CAPACITY),
            max_batch: DEFAULT_MAX_BATCH,
        }
    }

    /// The configuration for a named optimisation level.
    pub fn for_level(level: OptimizationLevel) -> Self {
        level.config()
    }

    /// Returns this configuration with the mailbox bound replaced (`None` =
    /// unbounded, the paper's original queues).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn with_mailbox_capacity(mut self, capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "a bounded mailbox needs capacity >= 1");
        self.mailbox_capacity = capacity;
        self
    }

    /// Returns this configuration with the drain batch limit replaced
    /// (clamped to at least 1; `1` reproduces the seed's
    /// one-request-per-iteration handler loop).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }
}

impl Default for RuntimeConfig {
    /// Defaults to the fully optimised SCOOP/Qs configuration.
    fn default() -> Self {
        Self::all_optimizations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_optimized() {
        let c = RuntimeConfig::default();
        assert!(c.queue_of_queues);
        assert!(c.client_executed_queries);
        assert!(c.dynamic_sync_coalescing);
    }

    #[test]
    fn none_level_disables_everything() {
        let c = OptimizationLevel::None.config();
        assert!(!c.queue_of_queues);
        assert!(!c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
        assert!(!c.assume_static_sync);
    }

    #[test]
    fn qoq_level_enables_only_queues() {
        let c = OptimizationLevel::QoQ.config();
        assert!(c.queue_of_queues);
        assert!(!c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
    }

    #[test]
    fn dynamic_level_enables_coalescing_and_client_queries() {
        let c = OptimizationLevel::Dynamic.config();
        assert!(!c.queue_of_queues);
        assert!(c.client_executed_queries);
        assert!(c.dynamic_sync_coalescing);
    }

    #[test]
    fn static_level_marks_static_sync() {
        let c = OptimizationLevel::Static.config();
        assert!(c.assume_static_sync);
        assert!(c.client_executed_queries);
        assert!(!c.dynamic_sync_coalescing);
    }

    #[test]
    fn every_level_carries_the_mailbox_knobs() {
        for level in OptimizationLevel::ALL {
            let c = level.config();
            assert_eq!(
                c.mailbox_capacity,
                Some(DEFAULT_MAILBOX_CAPACITY),
                "{level}"
            );
            assert_eq!(c.max_batch, DEFAULT_MAX_BATCH, "{level}");
        }
    }

    #[test]
    fn mailbox_builders_override_and_clamp() {
        let c = OptimizationLevel::All
            .config()
            .with_mailbox_capacity(Some(7))
            .with_max_batch(0);
        assert_eq!(c.mailbox_capacity, Some(7));
        assert_eq!(c.max_batch, 1, "max_batch clamps to at least 1");
        let unbounded = c.with_mailbox_capacity(None);
        assert_eq!(unbounded.mailbox_capacity, None);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_mailbox_capacity_is_rejected() {
        let _ = RuntimeConfig::default().with_mailbox_capacity(Some(0));
    }

    #[test]
    fn labels_match_paper_tables() {
        let labels: Vec<_> = OptimizationLevel::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["None", "Dynamic", "Static", "QoQ", "All"]);
        assert_eq!(OptimizationLevel::All.to_string(), "All");
    }
}
