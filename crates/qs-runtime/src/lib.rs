//! # qs-runtime — the SCOOP/Qs execution model
//!
//! This crate is the primary contribution of the reproduced paper:
//! *Efficient and Reasonable Object-Oriented Concurrency* (West, Nanz, Meyer;
//! PPoPP 2015).  It implements the SCOOP concurrency model — every object is
//! owned by exactly one *handler* (thread of execution), and clients interact
//! with it only inside *separate blocks* — together with the SCOOP/Qs
//! *queue-of-queues* execution strategy and the runtime optimisations of §3:
//!
//! * **Queue-of-queues (QoQ)** — each client gets a private SPSC queue that
//!   it shares with the handler; registering for a separate block is a single
//!   lock-free enqueue of that private queue into the handler's MPSC
//!   queue-of-queues, so clients never block each other while logging
//!   asynchronous calls (§2.3, §3.1).
//! * **Client-executed queries** — a query (synchronous call) is compiled to
//!   a `sync` token plus a local call executed by the client once the handler
//!   has drained the client's private queue, avoiding call packaging and
//!   enabling inlining (§3.2).
//! * **Direct handoff** — completing a sync wakes the exact waiting client
//!   thread rather than going through a global scheduler (§3.2).
//! * **Dynamic sync-coalescing** — a per-private-queue `synced` flag elides
//!   redundant sync round-trips (§3.4.1).  (The *static* variant lives in the
//!   `qs-compiler` crate and drives the same elision via [`Separate::sync`] /
//!   [`Separate::query_unsynced`].)
//! * **Lock-based baseline** — the pre-Qs SCOOP execution model (a single
//!   request queue guarded by a handler lock) is retained behind
//!   [`RuntimeConfig`] so the paper's optimisation study (§4, Tables 1–2) can
//!   be reproduced.
//!
//! ## Reasoning guarantees
//!
//! The runtime upholds the two guarantees of §2.2:
//!
//! 1. non-separate calls and primitive instructions execute immediately and
//!    synchronously (ordinary Rust code in the client);
//! 2. calls logged on a handler inside one separate block are executed in
//!    order, with no intervening calls from other clients.
//!
//! ## Example
//!
//! Reservations — single-handler or atomic multi-handler, optionally guarded
//! by a wait condition — all go through the composable [`reserve`] entry
//! point:
//!
//! ```
//! use qs_runtime::{reserve, Runtime, RuntimeConfig};
//!
//! let rt = Runtime::new(RuntimeConfig::all_optimizations());
//! let counter = rt.spawn_handler(0u64);
//! let log = rt.spawn_handler(Vec::<u64>::new());
//!
//! // Single-handler separate block (`Handler::separate` is shorthand).
//! reserve(&counter).run(|c| {
//!     for _ in 0..10 {
//!         c.call(|n| *n += 1);       // asynchronous command
//!     }
//!     assert_eq!(c.query(|n| *n), 10); // synchronous query
//! });
//!
//! // Atomic two-handler reservation: the pair is observed consistently.
//! reserve((&counter, &log)).run(|(c, l)| {
//!     let value = c.query(|n| *n);
//!     l.call(move |entries| entries.push(value));
//! });
//!
//! let final_value = counter.shutdown_and_take().unwrap();
//! assert_eq!(final_value, 10);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod contracts;
mod deadlock;
#[doc(hidden)]
pub mod guard;
pub mod handler;
pub mod read;
pub mod request;
pub mod reserve;
pub mod runtime;
pub mod separate;
pub mod stats;

pub use config::{
    DeadlockPolicy, ObservabilityMode, OptimizationLevel, RuntimeConfig, SchedulerMode,
    DEFAULT_MAILBOX_CAPACITY, DEFAULT_MAX_BATCH,
};
pub use contracts::{assert_postcondition, check_postcondition, WaitConfig, WaitTimeout};
pub use handler::{Handler, HandlerId};
pub use qs_deadlock::{DeadlockReport, EdgeKind as DeadlockEdgeKind, ReportedEdge};
pub use read::{read, Read, ReadSeparate};
pub use reserve::{
    reserve, GuardedReservation, MemberGuard, Reservation, ReservationSet, ReserveMember,
    WaitCondition,
};
pub use runtime::Runtime;
pub use separate::{MailboxError, MailboxFull, QueryToken, Separate};
pub use stats::{batch_bucket_range, RuntimeStats, StatsSnapshot, BATCH_SIZE_BUCKETS};
