//! The runtime object: configuration, statistics and handler creation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qs_exec::ThreadCache;

use crate::config::{OptimizationLevel, RuntimeConfig};
use crate::handler::{Handler, HandlerCore, HandlerId};
use crate::stats::{RuntimeStats, StatsSnapshot};

struct RuntimeInner {
    config: RuntimeConfig,
    stats: Arc<RuntimeStats>,
    thread_cache: Arc<ThreadCache>,
    next_handler_id: AtomicU64,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // Retire the cached handler threads; without this, every dropped
        // runtime would leave its idle threads parked forever (visible as
        // unbounded thread growth in benchmarks that create runtimes in a
        // loop).  Handlers still running keep their threads until they stop.
        self.thread_cache.shutdown();
    }
}

/// A SCOOP/Qs runtime instance.
///
/// The runtime owns the shared resources of the execution model — the
/// configuration (which optimisations are active), the statistics block and
/// the cache of handler threads — and creates [`Handler`]s.  Cloning a
/// `Runtime` is cheap and yields a handle to the same instance.
///
/// ```
/// use qs_runtime::{reserve, Runtime, OptimizationLevel};
///
/// let rt = Runtime::with_level(OptimizationLevel::All);
/// let account = rt.spawn_handler(100i64);
/// reserve(&account).run(|acc| {
///     acc.call(|balance| *balance -= 30);
///     assert_eq!(acc.query(|balance| *balance), 70);
/// });
/// ```
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Creates a runtime with an explicit configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            inner: Arc::new(RuntimeInner {
                config,
                stats: RuntimeStats::new(),
                thread_cache: ThreadCache::new(config.handler_thread_cache),
                next_handler_id: AtomicU64::new(1),
            }),
        }
    }

    /// Creates a runtime for one of the named optimisation levels of §4.
    pub fn with_level(level: OptimizationLevel) -> Self {
        Self::new(level.config())
    }

    /// The fully optimised SCOOP/Qs runtime (the paper's "All").
    pub fn fully_optimized() -> Self {
        Self::new(RuntimeConfig::all_optimizations())
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> RuntimeConfig {
        self.inner.config
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<RuntimeStats> {
        &self.inner.stats
    }

    /// Convenience: a point-in-time snapshot of the statistics.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Number of handlers spawned so far.
    pub fn handlers_spawned(&self) -> u64 {
        self.inner.stats.snapshot().handlers_spawned
    }

    /// Creates a new handler owning `object` and starts its thread.
    ///
    /// The handler begins processing requests immediately and runs until it
    /// is stopped (explicitly or by dropping the last [`Handler`] handle).
    pub fn spawn_handler<T: Send + 'static>(&self, object: T) -> Handler<T> {
        let id: HandlerId = self.inner.next_handler_id.fetch_add(1, Ordering::Relaxed);
        RuntimeStats::bump(&self.inner.stats.handlers_spawned);
        let core = HandlerCore::new(id, self.inner.config, Arc::clone(&self.inner.stats), object);
        let thread_core = Arc::clone(&core);
        // Handlers run on cached OS threads so creating/retiring handlers is
        // cheap (the paper's lightweight-thread layer; see DESIGN.md).
        self.inner.thread_cache.run(move || thread_core.run());
        Handler::from_core(core)
    }

    /// Spawns one handler per element of `objects`, returning the handles in
    /// the same order.  Convenient for creating worker groups.
    pub fn spawn_handlers<T, I>(&self, objects: I) -> Vec<Handler<T>>
    where
        T: Send + 'static,
        I: IntoIterator<Item = T>,
    {
        objects.into_iter().map(|o| self.spawn_handler(o)).collect()
    }

    /// Number of OS threads created for handlers so far (after warm-up this
    /// stays flat thanks to the thread cache).
    pub fn handler_threads_created(&self) -> usize {
        self.inner.thread_cache.threads_created()
    }

    /// Number of handler activations that reused a cached thread.
    pub fn handler_threads_reused(&self) -> usize {
        self.inner.thread_cache.threads_reused()
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("config", &self.inner.config)
            .field("handlers_spawned", &self.handlers_spawned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_use_many_handlers() {
        let rt = Runtime::fully_optimized();
        let handlers = rt.spawn_handlers((0..16).map(|i| i as u64));
        for (i, h) in handlers.iter().enumerate() {
            h.separate(|s| {
                s.call(|v| *v *= 2);
                assert_eq!(s.query(|v| *v), (i as u64) * 2);
            });
        }
        assert_eq!(rt.handlers_spawned(), 16);
    }

    #[test]
    fn handler_ids_are_unique() {
        let rt = Runtime::fully_optimized();
        let a = rt.spawn_handler(());
        let b = rt.spawn_handler(());
        let c = rt.spawn_handler(());
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn threads_are_reused_across_handler_generations() {
        let rt = Runtime::fully_optimized();
        for _ in 0..20 {
            let h = rt.spawn_handler(0u8);
            h.separate(|s| s.call(|v| *v += 1));
            h.stop();
            h.wait_finished();
        }
        assert!(
            rt.handler_threads_created() < 20,
            "expected thread reuse, created {}",
            rt.handler_threads_created()
        );
        assert!(rt.handler_threads_reused() > 0);
    }

    #[test]
    fn clone_shares_the_same_instance() {
        let rt = Runtime::fully_optimized();
        let rt2 = rt.clone();
        let _h = rt.spawn_handler(());
        assert_eq!(rt2.handlers_spawned(), 1);
        assert!(format!("{rt2:?}").contains("handlers_spawned"));
    }

    #[test]
    fn level_constructor_matches_config() {
        let rt = Runtime::with_level(OptimizationLevel::QoQ);
        assert!(rt.config().queue_of_queues);
        assert!(!rt.config().dynamic_sync_coalescing);
    }

    #[test]
    fn stats_accumulate_across_handlers() {
        let rt = Runtime::fully_optimized();
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(0u32);
        a.separate(|s| s.call(|v| *v += 1));
        b.separate(|s| s.call(|v| *v += 1));
        a.stop();
        b.stop();
        a.wait_finished();
        b.wait_finished();
        let snap = rt.stats_snapshot();
        assert_eq!(snap.calls_enqueued, 2);
        assert_eq!(snap.separate_blocks, 2);
        assert_eq!(snap.handlers_spawned, 2);
    }
}
