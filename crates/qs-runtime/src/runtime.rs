//! The runtime object: configuration, statistics and handler creation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qs_deadlock::{DeadlockMonitor, DeadlockReport, WaitRegistry};
use qs_exec::{HandlerScheduler, ThreadCache};
use qs_queues::{WakeHook, WakeReason};

use crate::config::{DeadlockPolicy, OptimizationLevel, RuntimeConfig, SchedulerMode};
use crate::deadlock::Tracking;
use crate::handler::{Handler, HandlerCore, HandlerId, PooledHandler};
use crate::stats::{RuntimeStats, StatsSnapshot};

/// Scan interval of the deadlock detector (when `DeadlockPolicy` is on).
/// With the monitor's two-consecutive-scans confirmation pass, a genuine
/// cycle is detected and reported within roughly two ticks of forming.
const DEADLOCK_TICK: Duration = Duration::from_millis(10);

/// The per-runtime deadlock-detection context: the wait-for registry every
/// blocking edge reports into, the monitor thread scanning it, and the
/// reports it has confirmed.
struct DeadlockRuntime {
    registry: Arc<WaitRegistry>,
    reports: Arc<parking_lot::Mutex<Vec<DeadlockReport>>>,
    /// Stops and joins the monitor thread when the runtime drops; also the
    /// source of the `monitor_scans` statistic.
    monitor: DeadlockMonitor,
}

impl DeadlockRuntime {
    fn start(policy: DeadlockPolicy, stats: Arc<RuntimeStats>) -> Self {
        let registry = WaitRegistry::new();
        let reports: Arc<parking_lot::Mutex<Vec<DeadlockReport>>> = Arc::default();
        let sink = Arc::clone(&reports);
        let monitor = DeadlockMonitor::spawn(
            Arc::clone(&registry),
            DEADLOCK_TICK,
            policy.breaks_cycles(),
            move |report| {
                RuntimeStats::bump(&stats.deadlocks_detected);
                eprintln!("[qs-runtime] deadlock detected: {report}");
                sink.lock().push(report.clone());
            },
        );
        DeadlockRuntime {
            registry,
            reports,
            monitor,
        }
    }
}

struct RuntimeInner {
    config: RuntimeConfig,
    stats: Arc<RuntimeStats>,
    thread_cache: Arc<ThreadCache>,
    /// M:N handler scheduler, created lazily at the first pooled
    /// `spawn_handler` so runtimes that never spawn (or run dedicated) pay
    /// no worker threads.
    scheduler: parking_lot::Mutex<Option<Arc<HandlerScheduler>>>,
    /// Deadlock detection; `None` while the policy is `Off`.
    deadlock: Option<DeadlockRuntime>,
    next_handler_id: AtomicU64,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // Retire the cached handler threads; without this, every dropped
        // runtime would leave its idle threads parked forever (visible as
        // unbounded thread growth in benchmarks that create runtimes in a
        // loop).  Handlers still running keep their threads until they stop.
        self.thread_cache.shutdown();
        // Tear the pooled scheduler down on a detached reaper thread: the
        // shutdown drains queued steps and joins workers, which can take as
        // long as the longest in-flight (possibly blocking) handler step —
        // and the dedicated mode's contract is that dropping the runtime
        // never waits on running handlers.  Handlers notified after the
        // shutdown flag is set run their steps inline on the notifying
        // thread, so no work is stranded either way.
        if let Some(scheduler) = self.scheduler.lock().take() {
            let _ = std::thread::Builder::new()
                .name("qs-sched-reaper".to_string())
                .spawn(move || scheduler.shutdown());
        }
    }
}

/// A SCOOP/Qs runtime instance.
///
/// The runtime owns the shared resources of the execution model — the
/// configuration (which optimisations are active), the statistics block and
/// the cache of handler threads — and creates [`Handler`]s.  Cloning a
/// `Runtime` is cheap and yields a handle to the same instance.
///
/// ```
/// use qs_runtime::{reserve, Runtime, OptimizationLevel};
///
/// let rt = Runtime::with_level(OptimizationLevel::All);
/// let account = rt.spawn_handler(100i64);
/// reserve(&account).run(|acc| {
///     acc.call(|balance| *balance -= 30);
///     assert_eq!(acc.query(|balance| *balance), 70);
/// });
/// ```
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Creates a runtime with an explicit configuration.
    ///
    /// If [`RuntimeConfig::observability`] is above `Off`, this *raises* the
    /// process-global observability mode (it never lowers it — see
    /// [`qs_obs::raise_mode`]), so metrics and traces from every layer start
    /// flowing the moment the runtime exists.
    pub fn new(config: RuntimeConfig) -> Self {
        qs_obs::raise_mode(config.observability);
        let stats = RuntimeStats::new();
        let deadlock = config
            .deadlock_policy
            .is_enabled()
            .then(|| DeadlockRuntime::start(config.deadlock_policy, Arc::clone(&stats)));
        Runtime {
            inner: Arc::new(RuntimeInner {
                config,
                stats,
                thread_cache: ThreadCache::new(config.handler_thread_cache),
                scheduler: parking_lot::Mutex::new(None),
                deadlock,
                next_handler_id: AtomicU64::new(1),
            }),
        }
    }

    /// The wait-for cycles the deadlock detector has confirmed so far
    /// (empty while the policy is [`DeadlockPolicy::Off`], or while nothing
    /// deadlocked).  Also counted in the `deadlocks_detected` statistic.
    pub fn deadlock_reports(&self) -> Vec<DeadlockReport> {
        self.inner
            .deadlock
            .as_ref()
            .map(|deadlock| deadlock.reports.lock().clone())
            .unwrap_or_default()
    }

    /// The M:N scheduler, created on first use (pooled mode only).
    fn scheduler(&self) -> Arc<HandlerScheduler> {
        let mut slot = self.inner.scheduler.lock();
        if let Some(scheduler) = slot.as_ref() {
            return Arc::clone(scheduler);
        }
        let workers = self
            .inner
            .config
            .scheduler
            .effective_workers()
            .expect("scheduler() is only called in pooled mode");
        let scheduler = HandlerScheduler::new(workers);
        *slot = Some(Arc::clone(&scheduler));
        scheduler
    }

    /// Creates a runtime for one of the named optimisation levels of §4.
    pub fn with_level(level: OptimizationLevel) -> Self {
        Self::new(level.config())
    }

    /// The fully optimised SCOOP/Qs runtime (the paper's "All").
    pub fn fully_optimized() -> Self {
        Self::new(RuntimeConfig::all_optimizations())
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> RuntimeConfig {
        self.inner.config
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<RuntimeStats> {
        &self.inner.stats
    }

    /// Convenience: a point-in-time snapshot of the statistics, including
    /// the pooled scheduler's steal count and the deadlock monitor's scan
    /// count when either is running.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snapshot = self.inner.stats.snapshot();
        if let Some(scheduler) = self.inner.scheduler.lock().as_ref() {
            snapshot.scheduler_steals = scheduler.steals();
        }
        if let Some(deadlock) = self.inner.deadlock.as_ref() {
            snapshot.monitor_scans = deadlock.monitor.scan_count();
        }
        snapshot
    }

    /// The process-global observability metrics registry — counters and
    /// latency histograms recorded by every runtime in the process while the
    /// ambient [`qs_obs::mode`] is `Counters` or `Full`.  Shared, like the
    /// mode itself: per-runtime numbers live in [`stats`](Self::stats).
    pub fn metrics(&self) -> &'static qs_obs::MetricsRegistry {
        qs_obs::registry()
    }

    /// Number of handlers spawned so far.
    pub fn handlers_spawned(&self) -> u64 {
        self.inner.stats.snapshot().handlers_spawned
    }

    /// Creates a new handler owning `object` and schedules its main loop —
    /// on a dedicated cached thread or as an M:N pooled task, per
    /// [`RuntimeConfig::scheduler`].
    ///
    /// The handler begins processing requests immediately and runs until it
    /// is stopped (explicitly or by dropping the last [`Handler`] handle).
    pub fn spawn_handler<T: Send + 'static>(&self, object: T) -> Handler<T> {
        self.spawn_with_config(self.inner.config, object)
    }

    /// Like [`spawn_handler`](Self::spawn_handler), but with this handler's
    /// mailbox bound overridden (`None` = unbounded): every client mailbox
    /// this handler hands out — private queue or shared request queue — uses
    /// `capacity` instead of the runtime-wide
    /// [`RuntimeConfig::mailbox_capacity`].  Handlers spawned either way
    /// coexist freely on one runtime; the override is visible in the
    /// handler's [`Handler::config`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn spawn_with_capacity<T: Send + 'static>(
        &self,
        object: T,
        capacity: Option<usize>,
    ) -> Handler<T> {
        self.spawn_with_config(self.inner.config.with_mailbox_capacity(capacity), object)
    }

    fn spawn_with_config<T: Send + 'static>(&self, config: RuntimeConfig, object: T) -> Handler<T> {
        let id: HandlerId = self.inner.next_handler_id.fetch_add(1, Ordering::Relaxed);
        RuntimeStats::bump(&self.inner.stats.handlers_spawned);
        qs_obs::trace(qs_obs::TraceKind::HandlerSpawn, id, 0);
        // Deadlock tracking: give the handler its participant identity in
        // the runtime's wait-for registry before any client can reach it.
        let tracking = self.inner.deadlock.as_ref().map(|deadlock| Tracking {
            registry: Arc::clone(&deadlock.registry),
            participant: deadlock.registry.participant(format!("handler-{id}")),
        });
        let core = HandlerCore::new(id, config, Arc::clone(&self.inner.stats), object, tracking);
        match config.scheduler {
            SchedulerMode::Dedicated => {
                // One cached OS thread per live handler; creating/retiring
                // handlers stays cheap (the paper's lightweight-thread
                // substitution), but live handler count is thread-bounded.
                let thread_core = Arc::clone(&core);
                self.inner.thread_cache.run(move || thread_core.run());
            }
            SchedulerMode::Pooled { .. } => {
                // M:N: the handler becomes a resumable task; producers
                // re-arm it through the wake hook.  The hook must be
                // registered before the handle escapes, so no client can
                // enqueue into a hook-less queue.
                let scheduler = self.scheduler();
                let handle = scheduler.register(Arc::new(PooledHandler::new(Arc::clone(&core))));
                let stats = Arc::clone(&self.inner.stats);
                let hook: WakeHook = Arc::new(move |reason| {
                    // A pressure wake (bounded mailbox at its watermark or a
                    // blocked producer) routes through the scheduler's
                    // priority lane so this handler runs promptly; so does a
                    // guard wake (clients parked on a wait condition this
                    // handler's pending work may decide) and a writable wake
                    // (the handler has a stashed batch waiting for readers
                    // to leave its object's gate).
                    let scheduled = if reason == WakeReason::Pressure {
                        RuntimeStats::bump(&stats.pressure_wakes);
                        handle.notify_pressure()
                    } else if reason == WakeReason::Guard || reason == WakeReason::Writable {
                        handle.notify_pressure()
                    } else {
                        handle.notify()
                    };
                    if scheduled {
                        RuntimeStats::bump(&stats.handler_wakeups);
                    }
                });
                core.set_wake_hook(hook);
            }
        }
        Handler::from_core(core)
    }

    /// Spawns one handler per element of `objects`, returning the handles in
    /// the same order.  Convenient for creating worker groups.
    pub fn spawn_handlers<T, I>(&self, objects: I) -> Vec<Handler<T>>
    where
        T: Send + 'static,
        I: IntoIterator<Item = T>,
    {
        objects.into_iter().map(|o| self.spawn_handler(o)).collect()
    }

    /// Number of OS threads created for handlers so far (dedicated mode;
    /// after warm-up this stays flat thanks to the thread cache).  Always
    /// zero under pooled scheduling — see
    /// [`scheduler_threads`](Self::scheduler_threads).
    pub fn handler_threads_created(&self) -> usize {
        self.inner.thread_cache.threads_created()
    }

    /// Number of handler activations that reused a cached thread (dedicated
    /// mode).
    pub fn handler_threads_reused(&self) -> usize {
        self.inner.thread_cache.threads_reused()
    }

    /// Number of M:N scheduler worker threads currently alive (core workers
    /// plus live compensation workers); zero when no pooled handler has been
    /// spawned yet or the mode is dedicated.
    pub fn scheduler_threads(&self) -> usize {
        self.inner
            .scheduler
            .lock()
            .as_ref()
            .map_or(0, |s| s.live_threads())
    }

    /// Most M:N scheduler worker threads ever alive at once.
    pub fn scheduler_peak_threads(&self) -> usize {
        self.inner
            .scheduler
            .lock()
            .as_ref()
            .map_or(0, |s| s.peak_threads())
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("config", &self.inner.config)
            .field("handlers_spawned", &self.handlers_spawned())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_use_many_handlers() {
        let rt = Runtime::fully_optimized();
        let handlers = rt.spawn_handlers((0..16).map(|i| i as u64));
        for (i, h) in handlers.iter().enumerate() {
            h.separate(|s| {
                s.call(|v| *v *= 2);
                assert_eq!(s.query(|v| *v), (i as u64) * 2);
            });
        }
        assert_eq!(rt.handlers_spawned(), 16);
    }

    #[test]
    fn handler_ids_are_unique() {
        let rt = Runtime::fully_optimized();
        let a = rt.spawn_handler(());
        let b = rt.spawn_handler(());
        let c = rt.spawn_handler(());
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn threads_are_reused_across_handler_generations() {
        // Dedicated mode: handler threads come from the cache and are
        // recycled between handler generations.
        let rt = Runtime::new(
            RuntimeConfig::all_optimizations().with_scheduler(SchedulerMode::Dedicated),
        );
        for _ in 0..20 {
            let h = rt.spawn_handler(0u8);
            h.separate(|s| s.call(|v| *v += 1));
            h.stop();
            h.wait_finished();
        }
        assert!(
            rt.handler_threads_created() < 20,
            "expected thread reuse, created {}",
            rt.handler_threads_created()
        );
        assert!(rt.handler_threads_reused() > 0);
    }

    #[test]
    fn pooled_mode_spawns_no_dedicated_threads() {
        let rt = Runtime::fully_optimized();
        assert_eq!(rt.scheduler_threads(), 0, "scheduler starts lazily");
        let handlers = rt.spawn_handlers((0..256).map(|i| i as u64));
        for (i, h) in handlers.iter().enumerate() {
            h.separate(|s| {
                s.call(|v| *v += 1);
                assert_eq!(s.query(|v| *v), i as u64 + 1);
            });
        }
        // 256 live handlers, zero dedicated threads, a fixed-size pool.
        assert_eq!(rt.handler_threads_created(), 0);
        let workers = rt.config().scheduler.effective_workers().unwrap();
        assert!(
            rt.scheduler_threads() >= workers,
            "all {workers} pool workers must be alive, saw {}",
            rt.scheduler_threads()
        );
        let snap = rt.stats_snapshot();
        assert!(snap.handler_wakeups > 0, "producers re-armed handlers");
        for h in handlers {
            assert!(h.shutdown_and_take().is_some());
        }
    }

    #[test]
    fn retired_pooled_handlers_release_their_objects() {
        // Regression: the wake-hook closure (core → hook → task handle →
        // pooled task → core) must not keep a finished handler's core — and
        // with it the owned object — alive forever.  The scheduler breaks
        // the cycle by releasing the task reference at the Done transition.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Token;
        impl Drop for Token {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let rt = Runtime::fully_optimized();
        for _ in 0..10 {
            let h = rt.spawn_handler(Token);
            h.call_detached(|_| {});
            h.stop();
            h.wait_finished();
        }
        // The final core release happens on a worker thread just after the
        // finished event; give it a bounded moment.
        for _ in 0..2_000 {
            if DROPS.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            10,
            "retired pooled handlers leaked their cores/objects"
        );
    }

    #[test]
    fn pooled_and_dedicated_agree_on_results() {
        for mode in [
            SchedulerMode::Dedicated,
            SchedulerMode::Pooled { workers: 2 },
        ] {
            for level in OptimizationLevel::ALL {
                let rt = Runtime::new(level.config().with_scheduler(mode));
                let h = rt.spawn_handler(0u64);
                h.separate(|s| {
                    for _ in 0..100 {
                        s.call(|v| *v += 1);
                    }
                    assert_eq!(s.query(|v| *v), 100, "{level} / {mode}");
                });
                assert_eq!(h.shutdown_and_take(), Some(100), "{level} / {mode}");
            }
        }
    }

    #[test]
    fn clone_shares_the_same_instance() {
        let rt = Runtime::fully_optimized();
        let rt2 = rt.clone();
        let _h = rt.spawn_handler(());
        assert_eq!(rt2.handlers_spawned(), 1);
        assert!(format!("{rt2:?}").contains("handlers_spawned"));
    }

    #[test]
    fn level_constructor_matches_config() {
        let rt = Runtime::with_level(OptimizationLevel::QoQ);
        assert!(rt.config().queue_of_queues);
        assert!(!rt.config().dynamic_sync_coalescing);
    }

    #[test]
    fn stats_accumulate_across_handlers() {
        let rt = Runtime::fully_optimized();
        let a = rt.spawn_handler(0u32);
        let b = rt.spawn_handler(0u32);
        a.separate(|s| s.call(|v| *v += 1));
        b.separate(|s| s.call(|v| *v += 1));
        a.stop();
        b.stop();
        a.wait_finished();
        b.wait_finished();
        let snap = rt.stats_snapshot();
        assert_eq!(snap.calls_enqueued, 2);
        assert_eq!(snap.separate_blocks, 2);
        assert_eq!(snap.handlers_spawned, 2);
    }
}
