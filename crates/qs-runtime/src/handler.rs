//! Handlers (SCOOP *processors*): the threads of execution that own objects.
//!
//! "The SCOOP model associates every object with a thread of execution, its
//! handler. There can be many objects associated to a single handler, but
//! every object has exactly one handler" (§2.1).  In this reproduction a
//! [`Handler<T>`] owns a single Rust value of type `T` (which may of course
//! be an arbitrarily large object graph); clients may only reach that value
//! through separate blocks.
//!
//! The handler's main loop is a direct transcription of Fig. 7 of the paper:
//! dequeue private queues from the queue-of-queues, and for each private
//! queue dequeue and execute calls until the client signals the end of its
//! separate block.  The lock-based pre-Qs loop (used when
//! [`RuntimeConfig::queue_of_queues`] is off) drains a single shared request
//! queue instead.
//!
//! Both loops exist in two forms, selected by [`RuntimeConfig::scheduler`]:
//!
//! * **dedicated** ([`HandlerCore::run`]) — the loop owns an OS thread (from
//!   the [`qs_exec::ThreadCache`]) and *blocks* inside the queue dequeues
//!   while idle, so live handler count is bounded by OS thread count;
//! * **pooled** (the default; [`PooledHandler`]) — the loop is a resumable
//!   state machine whose step *returns* [`qs_exec::StepOutcome::Idle`] when
//!   its queues are momentarily empty.  The [`qs_exec::HandlerScheduler`]
//!   re-arms it when a producer fires the handler's wake hook, so tens of
//!   thousands of mostly-idle handlers share a handful of worker threads.
//!
//! The pooled form preserves the §3.2 client-executed-query contract: after
//! completing a sync the handler cannot proceed past the syncing client's
//! private queue (its step only re-polls that queue and goes idle), so the
//! client's direct object access still races with nothing.

use std::cell::UnsafeCell;
use std::mem::ManuallyDrop;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qs_deadlock::{EdgeGuard, EdgeKind, ParticipantId};
use qs_exec::{PooledTask, StepOutcome};
use qs_queues::{
    Closed, Dequeue, MailboxConsumer, MutexQueue, QueueOfQueues, WakeHook, WakeReason,
};
use qs_sync::{Backoff, Event, GateWake, OnceValue, Parker, ReadGate, SpinLock};

use crate::config::RuntimeConfig;
use crate::deadlock::{HandlerScope, Tracking};
use crate::request::Request;
use crate::separate::Separate;
use crate::stats::RuntimeStats;

/// Unique identifier of a handler within one process.
pub type HandlerId = u64;

/// The consumer end of one client's private queue, tagged with the client's
/// deadlock-tracking identity (when the runtime's `DeadlockPolicy` is on).
///
/// The tag is what turns "this handler is parked on an open private queue"
/// into a *named* wait-for edge — handler → client — for the detector's
/// cycle search; without it a three-party Fig. 6-style deadlock (clients
/// blocked pushing, handlers committed to other clients' open blocks) has
/// no path through the handlers.
pub(crate) struct ClientMailbox<T> {
    pub(crate) consumer: MailboxConsumer<Request<T>>,
    pub(crate) client: Option<ParticipantId>,
    /// Liveness probe for the Serving edge: "still open and empty".  A
    /// Serving edge whose queue has since received work (or closed) is
    /// stale — the handler is about to run, not blocked — and must not
    /// complete a cycle at scan time.
    pub(crate) serving_probe: Option<qs_deadlock::ProbeFn>,
    /// Whether processing this block's close should conservatively signal
    /// the handler's parked guard waiters (the block may have changed state
    /// a `reserve().when` condition depends on).  False for the *probe*
    /// blocks the wait-condition machinery itself opens — their closes are
    /// silent, or every re-evaluation by one waiter would wake all others.
    pub(crate) signal_on_close: bool,
}

/// Caps the batch buffer's *pre*-allocation: a huge `max_batch` (e.g.
/// `usize::MAX` as "drain everything") must not panic `Vec::with_capacity`
/// or reserve gigabytes up front — the buffer simply grows on demand beyond
/// this.
fn batch_prealloc(max_batch: usize) -> usize {
    max_batch.min(1024)
}

/// Requests a pooled handler may apply before yielding the worker (fairness
/// between handlers sharing a pool; counted in `handler_yields`).
///
/// The *remaining* budget persists in [`PooledLoopState`] across scheduler
/// steps and is refilled only once it is spent — i.e. only after the handler
/// has been through the scheduler's global FIFO behind its runnable peers —
/// so an immediately re-enqueued hot handler cannot restart from a full
/// budget and monopolise its worker.  While a mailbox reports backpressure
/// the remaining budget additionally shrinks to one batch
/// (`RuntimeConfig::max_batch`; counted in `budget_shrinks`), restoring the
/// fine producer/consumer interleaving of dedicated threads.
const YIELD_BUDGET: usize = 1024;

/// Shared state of one handler, owned jointly by the handler thread and all
/// client-side [`Handler`] handles.
pub(crate) struct HandlerCore<T> {
    pub(crate) id: HandlerId,
    pub(crate) config: RuntimeConfig,
    pub(crate) stats: Arc<RuntimeStats>,
    /// The object owned by this handler.  Accessed mutably by the handler
    /// thread while executing requests, and by a client thread while it is
    /// executing a client-side query (during which the handler is guaranteed
    /// to be parked on that client's queue — see §3.2).
    object: UnsafeCell<ManuallyDrop<T>>,
    object_taken: AtomicBool,

    /// Queue-of-queues (QoQ configuration): each element is the consumer end
    /// of one client's mailbox (bounded or unbounded private queue,
    /// per [`RuntimeConfig::mailbox_capacity`]).
    pub(crate) qoq: QueueOfQueues<ClientMailbox<T>>,
    /// Spinlock serialising *multi-handler* reservations (§3.3).  Single
    /// reservations enqueue lock-free and never touch it.
    pub(crate) reservation_lock: SpinLock<()>,

    /// Single request queue (lock-based configuration).
    pub(crate) request_queue: MutexQueue<Request<T>>,
    /// Handler lock held by the reserving client for the whole separate block
    /// (lock-based configuration; Fig. 2 of the paper).
    pub(crate) client_lock: parking_lot::Mutex<()>,
    /// Raw participant id of the party currently holding `client_lock`
    /// (0 = unheld; maintained only while deadlock tracking is on).  A
    /// blocked acquisition registers its wait-for edge against this holder —
    /// not against the handler — which is what lets an ABBA lock cycle
    /// between two clients close in the wait-for graph.
    pub(crate) lock_holder: std::sync::atomic::AtomicU64,

    stopped: AtomicBool,
    finished: Event,
    final_value: SpinLock<Option<T>>,

    /// Pooled-mode wake hook: copied into every mailbox producer this
    /// handler hands out and registered on the queue-of-queues / request
    /// queue, so any producer making work visible re-arms the handler's
    /// scheduler task.  Unset in dedicated mode.
    wake_hook: OnceValue<WakeHook>,

    /// Deadlock-detection hook (registry + this handler's participant
    /// identity); `None` when the runtime's `DeadlockPolicy` is `Off`, which
    /// keeps every blocking path un-instrumented.
    pub(crate) deadlock: Option<Tracking>,

    /// Parked `reserve().when` waiters whose conditions depend on this
    /// handler's state; signalled when a separate block completes on it.
    pub(crate) guards: Arc<crate::guard::GuardRegistry>,

    /// Reader–writer gate over `object`.  Shared-read reservations hold it
    /// in read mode (and query the object directly, client-side); every
    /// `&mut` access — the main loop applying a batch, a client-executed
    /// query under an exclusive reservation — holds it in write mode.  With
    /// no read reservation ever taken, the gate costs the write paths one
    /// uncontended CAS per batch.  `Arc` so scan-time deadlock probes can
    /// outlive a borrow of the core.
    pub(crate) gate: Arc<ReadGate>,
    /// Deadlock-tracking identities of the clients currently holding read
    /// reservations on this handler, so a writer blocked behind readers can
    /// register one `WriterWait` edge per concrete reader.  Maintained only
    /// while tracking is on.
    pub(crate) read_holders: Arc<SpinLock<Vec<ParticipantId>>>,
}

// SAFETY: access to `object` is serialised by the execution model (handler
// executes requests sequentially; a client touches the object only while the
// handler is parked on that client's private queue).  All other fields are
// thread-safe primitives.
unsafe impl<T: Send> Send for HandlerCore<T> {}
unsafe impl<T: Send> Sync for HandlerCore<T> {}

impl<T: Send + 'static> HandlerCore<T> {
    pub(crate) fn new(
        id: HandlerId,
        config: RuntimeConfig,
        stats: Arc<RuntimeStats>,
        object: T,
        deadlock: Option<Tracking>,
    ) -> Arc<Self> {
        let guards = Arc::new(crate::guard::GuardRegistry::new(Arc::clone(&stats)));
        Arc::new(HandlerCore {
            id,
            config,
            stats,
            object: UnsafeCell::new(ManuallyDrop::new(object)),
            object_taken: AtomicBool::new(false),
            qoq: QueueOfQueues::new(),
            reservation_lock: SpinLock::new(()),
            request_queue: MutexQueue::with_capacity(config.mailbox_capacity),
            client_lock: parking_lot::Mutex::new(()),
            lock_holder: std::sync::atomic::AtomicU64::new(0),
            stopped: AtomicBool::new(false),
            finished: Event::new(),
            final_value: SpinLock::new(None),
            wake_hook: OnceValue::new(),
            deadlock,
            guards,
            gate: Arc::new(ReadGate::new()),
            read_holders: Arc::new(SpinLock::new(Vec::new())),
        })
    }

    /// Registers the pooled-mode wake hook on the handler and its queues.
    /// Must be called before any client can reach the handler (i.e. before
    /// `spawn_handler` returns its handle).
    pub(crate) fn set_wake_hook(&self, hook: WakeHook) {
        self.qoq.set_wake_hook(Arc::clone(&hook));
        self.request_queue.set_wake_hook(Arc::clone(&hook));
        let _ = self.wake_hook.set(hook);
    }

    /// The pooled-mode wake hook, if this handler is pool-scheduled.
    pub(crate) fn wake_hook(&self) -> Option<&WakeHook> {
        self.wake_hook.get()
    }

    /// Pointer to the handler-owned object.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the handler thread is not concurrently
    /// executing a request for the duration of the access.  The runtime
    /// establishes this for client-side queries by first performing a sync:
    /// after the sync completes the handler is parked on the caller's own
    /// private queue (or, on the lock-based path, on the empty shared request
    /// queue while the caller holds the handler lock).
    ///
    /// The `&self -> &mut T` shape is the point of the execution model: the
    /// `UnsafeCell` is the single place where the model's "exactly one thread
    /// touches the object at a time" argument is cashed in.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn object_mut(&self) -> &mut T {
        &mut (*self.object.get())
    }

    /// Shared reference to the handler-owned object.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no `&mut` access runs for the duration of
    /// the borrow.  The runtime establishes this for shared-read
    /// reservations by holding the [`gate`](Self::gate) in read mode: every
    /// `&mut` site takes the gate in write mode first.
    pub(crate) unsafe fn object_ref(&self) -> &T {
        &(*self.object.get())
    }

    /// Registers `client` as a live read holder (deadlock tracking only).
    pub(crate) fn register_read_holder(&self, client: ParticipantId) {
        self.read_holders.lock().push(client);
    }

    /// Removes one registration of `client` from the read-holder set.
    pub(crate) fn deregister_read_holder(&self, client: ParticipantId) {
        let mut holders = self.read_holders.lock();
        if let Some(index) = holders.iter().position(|&holder| holder == client) {
            holders.swap_remove(index);
        }
    }

    /// One `WriterWait` edge per current read holder: "`waiter` (this
    /// handler applying a batch, or a client about to execute a query under
    /// its exclusive reservation) is blocked behind that concrete reader".
    /// Sound as a one-time snapshot: the writer has announced itself, so
    /// writer preference refuses new readers and the blocking set can only
    /// shrink — an edge whose reader has since left is vetoed by its probe.
    pub(crate) fn writer_wait_edges(&self, waiter: Option<ParticipantId>) -> Vec<EdgeGuard> {
        let Some(tracking) = self.deadlock.as_ref() else {
            return Vec::new();
        };
        let waiter = waiter.unwrap_or(tracking.participant);
        let holders = self.read_holders.lock().clone();
        holders
            .into_iter()
            .map(|holder| {
                let gate = Arc::clone(&self.gate);
                let read_holders = Arc::clone(&self.read_holders);
                let probe: qs_deadlock::ProbeFn =
                    Arc::new(move || gate.readers() > 0 && read_holders.lock().contains(&holder));
                tracking
                    .registry
                    .register(waiter, holder, EdgeKind::WriterWait, None, Some(probe))
            })
            .collect()
    }

    /// Takes the object's gate in write mode, blocking the calling thread
    /// behind any active readers.  Used by the dedicated main loops (the
    /// thread owns nothing else while parked) and by client-executed queries
    /// (`waiter` names the client); the pooled step never blocks — it
    /// stashes its batch and yields instead (see
    /// [`apply_batch`](Self::apply_batch)).
    pub(crate) fn write_gate_blocking(&self, waiter: Option<ParticipantId>) {
        if self.gate.try_write() {
            return;
        }
        RuntimeStats::bump(&self.stats.writer_waits);
        self.gate.announce_writer();
        let _edges = self.writer_wait_edges(waiter);
        let parker = Arc::new(Parker::new());
        loop {
            if self.gate.try_write() {
                break;
            }
            self.gate
                .enlist(true, GateWake::Parker(Arc::clone(&parker)));
            if self.gate.try_write() {
                break;
            }
            parker.park_until(|| self.gate.writable());
        }
        self.gate.retract_writer();
    }

    /// Applies one request to the object.  Returns `false` when the request
    /// signals the end of the current private queue.
    pub(crate) fn apply(&self, request: Request<T>) -> bool {
        match request {
            Request::Call(f) | Request::Query(f) => {
                RuntimeStats::bump(&self.stats.requests_executed);
                // Deadlock tracking: any wait the closure performs (a nested
                // separate block's query or blocked bounded push) is
                // attributed to *this handler*, not to the anonymous worker
                // thread executing it.
                let _scope = self.deadlock.as_ref().map(HandlerScope::enter);
                // SAFETY: only the handler thread calls `apply`, and clients
                // only access the object while the handler is parked.
                let object = unsafe { self.object_mut() };
                if catch_unwind(AssertUnwindSafe(|| f(object))).is_err() {
                    RuntimeStats::bump(&self.stats.call_panics);
                }
                true
            }
            Request::Sync(token) => {
                token.complete(());
                true
            }
            Request::End => false,
        }
    }

    /// Marks the handler as stopping and wakes it so it can exit.
    pub(crate) fn stop(&self) {
        if !self.stopped.swap(true, Ordering::AcqRel) {
            self.qoq.close();
            self.request_queue.close();
            // Guard waiters parked on a dying handler must not strand: wake
            // them so their next evaluation observes the shutdown.
            self.guards.signal_all();
        }
    }

    /// Returns `true` once [`stop`](Self::stop) has been called.
    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Acquire)
    }

    /// Handler thread body (dedicated scheduling mode): drains work until
    /// stopped, then parks the final object value for retrieval.
    pub(crate) fn run(self: &Arc<Self>) {
        if self.config.queue_of_queues {
            self.run_queue_of_queues();
        } else {
            self.run_lock_based();
        }
        self.finish();
    }

    /// Terminal transition shared by both scheduling modes: moves the object
    /// out so `shutdown_and_take` can return it and signals completion.
    pub(crate) fn finish(self: &Arc<Self>) {
        qs_obs::trace(qs_obs::TraceKind::HandlerRetire, self.id, 0);
        if !self.object_taken.swap(true, Ordering::AcqRel) {
            // SAFETY: the handler loop has exited (dedicated) or stepped to
            // `Done` (pooled; the scheduler never steps a done task again),
            // no request will ever touch the object again, and the
            // `object_taken` flag guarantees a single take.
            let value = unsafe { ManuallyDrop::take(&mut *self.object.get()) };
            *self.final_value.lock() = Some(value);
        }
        self.finished.set();
    }

    /// The wait-for edge "this handler is parked on `client`'s open private
    /// queue": it cannot serve anyone else until that client logs more
    /// requests or ends its block.  `None` when tracking is off (or the
    /// queue predates it).  Registered only around the *parked-on-empty*
    /// states — a full or draining queue is progress, not a wait, and
    /// registering it would manufacture phantom cycles out of ordinary
    /// backpressure.
    fn serving_edge(&self, queue: &ClientMailbox<T>) -> Option<EdgeGuard> {
        let tracking = self.deadlock.as_ref()?;
        Some(tracking.registry.register(
            tracking.participant,
            queue.client?,
            EdgeKind::Serving,
            None,
            queue.serving_probe.clone(),
        ))
    }

    /// Fig. 7: the queue-of-queues main loop, batch-drained.
    ///
    /// Instead of paying one queue crossing per request, the handler pulls up
    /// to [`RuntimeConfig::max_batch`] requests from the current private
    /// queue at a time and applies them back to back.  Within a batch the
    /// semantics are unchanged: requests were drained in FIFO order, and a
    /// `Sync` request is always the last of its batch, because the client
    /// blocks on the sync handoff before it can log anything further — so
    /// after completing a sync the handler goes back to (blocking) drain,
    /// i.e. it is parked from the client's point of view, which is what makes
    /// client-executed queries race-free (§3.2).
    fn run_queue_of_queues(self: &Arc<Self>) {
        let max_batch = self.config.max_batch.max(1);
        let mut batch: Vec<Request<T>> = Vec::with_capacity(batch_prealloc(max_batch));
        // RUN rule: take the next private queue, if any.
        while let Dequeue::Item(private_queue) = self.qoq.dequeue() {
            // Process calls from this private queue until the client ends its
            // separate block (END rule: on this path the end of a block is
            // the mailbox close — `Request::End` never enters a private
            // queue, so every drained request is applied).
            loop {
                let drained = match private_queue
                    .consumer
                    .try_drain_batch(&mut batch, max_batch)
                {
                    Err(Closed) => break,
                    Ok(0) => {
                        // Momentarily empty but open: from here until work
                        // arrives the handler is parked on the client's
                        // queue — the Serving wait-for edge.
                        let _serving = self.serving_edge(&private_queue);
                        match private_queue.consumer.drain_batch(&mut batch, max_batch) {
                            Dequeue::Closed => break,
                            Dequeue::Item(drained) => drained,
                        }
                    }
                    Ok(drained) => drained,
                };
                self.apply_batch_blocking(&mut batch, drained);
            }
            // END of this client's block: its calls may have changed state a
            // parked `reserve().when` condition depends on, so conservatively
            // signal the pending guards (probe blocks stay silent).
            if private_queue.signal_on_close {
                self.guards.signal_all();
            }
        }
    }

    /// The pre-Qs lock-based loop: a single shared request queue, drained in
    /// batches under one lock acquisition each.
    fn run_lock_based(self: &Arc<Self>) {
        let max_batch = self.config.max_batch.max(1);
        let mut batch: Vec<Request<T>> = Vec::with_capacity(batch_prealloc(max_batch));
        while let Dequeue::Item(drained) = self.request_queue.drain_batch(&mut batch, max_batch) {
            self.apply_batch_blocking(&mut batch, drained);
        }
    }

    /// Dedicated-mode batch application: record, take the object's gate in
    /// write mode (blocking this thread behind readers), apply, release.
    /// With no read reservation active the gate costs one uncontended CAS.
    fn apply_batch_blocking(&self, batch: &mut Vec<Request<T>>, drained: usize) {
        self.stats.record_batch(drained);
        qs_obs::trace(qs_obs::TraceKind::MailboxDrain, self.id, drained as u64);
        self.write_gate_blocking(None);
        for request in batch.drain(..) {
            self.apply(request);
        }
        self.gate.end_write();
    }

    /// One pooled scheduler step of the Fig. 7 queue-of-queues loop.
    ///
    /// Resumable transcription of [`run_queue_of_queues`]
    /// (Self::run_queue_of_queues): the blocking dequeues become polls, and
    /// the loop position (which private queue is being drained) lives in
    /// `state` across steps.  Care point (§3.2): when the current private
    /// queue is empty but open — which is exactly the situation after
    /// completing a sync for a client that may now be executing a query on
    /// the object — the step returns [`StepOutcome::Idle`] *without
    /// advancing past that queue* and without touching the object, so being
    /// rescheduled by an unrelated producer's wake is harmless.
    fn step_queue_of_queues(&self, state: &mut PooledLoopState<T>) -> StepOutcome {
        let max_batch = self.config.max_batch.max(1);
        state.refill_budget_if_spent();
        if let Some(outcome) = self.resume_pending_batch(state) {
            return outcome;
        }
        let spin = Backoff::new();
        loop {
            let Some(current) = state.current.as_ref() else {
                // RUN rule, polled: take the next private queue if one is
                // ready.
                match self.qoq.try_dequeue() {
                    Ok(Some(private_queue)) => {
                        state.current = Some(private_queue);
                        state.stalls_seen = 0;
                        continue;
                    }
                    Ok(None) => return StepOutcome::Idle,
                    Err(Closed) => return StepOutcome::Done,
                }
            };
            // Sampled before the drain: a ring at its watermark right now is
            // about to be emptied by it.
            let pressured = current.consumer.is_pressured();
            match current
                .consumer
                .try_drain_batch(&mut state.batch, max_batch)
            {
                // END rule: the client closed its mailbox; move on.  The
                // finished block may have changed state a parked
                // `reserve().when` condition depends on — signal the pending
                // guards (probe blocks stay silent).
                Err(Closed) => {
                    state.serving = None;
                    if let Some(closed) = state.current.take() {
                        if closed.signal_on_close {
                            self.guards.signal_all();
                        }
                    }
                }
                // Mid-block and momentarily empty: the handler is "parked on
                // the client's queue" from the client's point of view.
                // When this mailbox's producer has blocked for space since
                // the last idle transition (a backpressured pipeline, likely
                // refilling the ring right now), spin-repoll briefly before
                // conceding Idle — the polling analogue of the dedicated
                // consumer's spin-then-park, without which every ring refill
                // costs a full scheduler wake round-trip.  The spin only
                // re-polls this same queue, so the §3.2 guarantee is
                // untouched; the stalls-recency gate keeps long-quiet queues
                // from paying the backoff ladder on every idle transition.
                Ok(0) => {
                    let stalls = current.consumer.total_stalls();
                    if stalls > state.stalls_seen && !spin.is_completed() {
                        spin.snooze();
                        continue;
                    }
                    state.stalls_seen = stalls;
                    // Going idle on an open private queue: the pooled
                    // analogue of the dedicated loop's parked blocking
                    // drain.  Register the Serving wait-for edge (once; it
                    // persists across re-polls of the same empty queue) so
                    // the deadlock detector can walk through this handler.
                    if state.serving.is_none() {
                        state.serving = self.serving_edge(current);
                    }
                    return StepOutcome::Idle;
                }
                Ok(drained) => {
                    state.serving = None;
                    spin.reset();
                    match self.apply_batch(state, drained, pressured) {
                        None => return StepOutcome::Idle,
                        Some(true) => return StepOutcome::Yielded,
                        Some(false) => {}
                    }
                }
            }
        }
    }

    /// One pooled scheduler step of the lock-based loop: poll-drain the
    /// single shared request queue.  The §3.2 argument holds here too: a
    /// client-executed query runs while the caller holds the handler lock
    /// and the request queue is empty, and an empty poll touches only the
    /// queue, never the object.
    fn step_lock_based(&self, state: &mut PooledLoopState<T>) -> StepOutcome {
        let max_batch = self.config.max_batch.max(1);
        state.refill_budget_if_spent();
        if let Some(outcome) = self.resume_pending_batch(state) {
            return outcome;
        }
        let spin = Backoff::new();
        loop {
            let pressured = self.request_queue.is_pressured();
            match self
                .request_queue
                .try_drain_batch(&mut state.batch, max_batch)
            {
                Err(qs_queues::Closed) => return StepOutcome::Done,
                // See `step_queue_of_queues`: briefly spin-repoll instead of
                // paying a wake round-trip per ring refill of a
                // backpressured producer — but only when a stall happened
                // since the last idle transition (the request queue lives as
                // long as the handler, so the raw lifetime counter would buy
                // a backoff ladder per idle forever after one stall).
                Ok(0) => {
                    let stalls = self.request_queue.total_stalls();
                    if stalls > state.stalls_seen && !spin.is_completed() {
                        spin.snooze();
                        continue;
                    }
                    state.stalls_seen = stalls;
                    return StepOutcome::Idle;
                }
                Ok(drained) => {
                    spin.reset();
                    match self.apply_batch(state, drained, pressured) {
                        None => return StepOutcome::Idle,
                        Some(true) => return StepOutcome::Yielded,
                        Some(false) => {}
                    }
                }
            }
        }
    }

    /// Re-attempts a batch that an earlier step drained but could not apply
    /// because readers held the object's gate.  `None` means there is no
    /// pending batch (or it was applied and the step may continue); `Some`
    /// is the outcome the step must return.
    fn resume_pending_batch(&self, state: &mut PooledLoopState<T>) -> Option<StepOutcome> {
        let (drained, pressured) = state.pending?;
        match self.apply_batch(state, drained, pressured) {
            None => Some(StepOutcome::Idle),
            Some(true) => {
                state.pending = None;
                Some(StepOutcome::Yielded)
            }
            Some(false) => {
                state.pending = None;
                None
            }
        }
    }

    /// Applies one drained batch and charges it against the persisted yield
    /// budget — the single copy of the record/apply/budget sequence shared
    /// by [`step_queue_of_queues`](Self::step_queue_of_queues) and
    /// [`step_lock_based`](Self::step_lock_based), so the budget logic
    /// cannot drift between the two loop flavours.  Returns `true` when the
    /// budget is spent and the step must yield the worker.
    ///
    /// `pressured` is the source queue's occupancy at drain time: while a
    /// bounded mailbox reports pressure the remaining budget shrinks to one
    /// batch, so the handler yields after every batch and backpressured
    /// pipelines interleave finely (the blocked producer's pressure wake
    /// re-schedules the handler through the priority lane).
    ///
    /// The batch runs under the object's gate in write mode.  A pooled step
    /// must never block the worker, so when readers hold the gate the batch
    /// is *stashed* (`state.pending`; the requests stay in `state.batch`)
    /// and `None` is returned — the step goes idle with a writer announced
    /// (refusing new readers) and a [`WakeReason::Writable`] hook enlisted,
    /// so the last reader out re-arms the handler through the scheduler's
    /// priority lane.  Otherwise returns `Some(budget_spent)`.
    fn apply_batch(
        &self,
        state: &mut PooledLoopState<T>,
        drained: usize,
        pressured: bool,
    ) -> Option<bool> {
        if !self.gate.try_write() {
            if !state.write_requested {
                RuntimeStats::bump(&self.stats.writer_waits);
                self.gate.announce_writer();
                state.write_requested = true;
                state.writer_edges = self.writer_wait_edges(None);
            }
            // Lost-wake protocol: enlist the wake hook, then re-try — either
            // the retry sees the gate free, or the releasing reader sees the
            // hook.
            if let Some(hook) = self.wake_hook() {
                let hook = Arc::clone(hook);
                self.gate.enlist(
                    true,
                    GateWake::Hook(Arc::new(move || hook(WakeReason::Writable))),
                );
            }
            if !self.gate.try_write() {
                state.pending = Some((drained, pressured));
                return None;
            }
        }
        if state.write_requested {
            self.gate.retract_writer();
            state.write_requested = false;
            state.writer_edges.clear();
        }
        self.stats.record_batch(drained);
        qs_obs::trace(qs_obs::TraceKind::MailboxDrain, self.id, drained as u64);
        for request in state.batch.drain(..) {
            self.apply(request);
        }
        self.gate.end_write();
        if pressured {
            let batch_budget = self.config.max_batch.max(1);
            if state.budget > batch_budget {
                state.budget = batch_budget;
                RuntimeStats::bump(&self.stats.budget_shrinks);
            }
        }
        state.budget = state.budget.saturating_sub(drained);
        Some(state.budget == 0)
    }

    fn wait_finished(&self) {
        self.finished.wait();
    }

    fn take_final_value(&self) -> Option<T> {
        self.final_value.lock().take()
    }
}

impl<T> Drop for HandlerCore<T> {
    fn drop(&mut self) {
        if !*self.object_taken.get_mut() {
            // SAFETY: exclusive access during drop; the value was never taken.
            unsafe { ManuallyDrop::drop(self.object.get_mut()) };
        }
        // Release the handler's label from the wait-for registry: the core
        // is gone, so no new edge can ever name it.
        if let Some(tracking) = &self.deadlock {
            tracking.registry.forget_participant(tracking.participant);
        }
    }
}

/// Loop position of a pooled handler, persisted across scheduler steps.
pub(crate) struct PooledLoopState<T> {
    /// The private queue currently being drained (queue-of-queues mode).
    /// While set, the handler must not advance to another client — the
    /// §3.2 "parked on the client's queue" guarantee.
    current: Option<ClientMailbox<T>>,
    /// Deadlock tracking: the registered "parked on `current`'s open
    /// queue" Serving edge, alive from the idle transition until the queue
    /// yields work or closes.
    serving: Option<EdgeGuard>,
    /// Reusable drain buffer.
    batch: Vec<Request<T>>,
    /// Remaining yield budget, carried across steps (see [`YIELD_BUDGET`]).
    budget: usize,
    /// The drain source's backpressure-stall count as of the last idle
    /// transition.  The empty-poll spin-repoll only runs while new stalls
    /// have happened since, so one historical stall does not buy a backoff
    /// ladder per idle transition for the rest of the source's life.  Reset
    /// when the QoQ loop advances to a fresh private queue (whose counter
    /// restarts at zero).
    stalls_seen: usize,
    /// A drained-but-unapplied batch (its `(drained, pressured)` accounting;
    /// the requests themselves sit in `batch`): readers held the object's
    /// gate when the step tried to apply it.  Re-attempted first at every
    /// step until the gate is won.
    pending: Option<(usize, bool)>,
    /// Whether this handler currently has a writer announced on its gate
    /// (set with `pending`; must be retracted exactly once).
    write_requested: bool,
    /// Deadlock tracking: live `WriterWait` edges, one per reader the
    /// stashed batch is blocked behind.
    writer_edges: Vec<EdgeGuard>,
}

impl<T> PooledLoopState<T> {
    /// Refills the budget once it has been fully spent.  Called at step
    /// entry: a spent budget means the previous step yielded, and the yield
    /// re-enqueued the handler at the back of the scheduler's global FIFO —
    /// every peer that was runnable has had the worker since, so a fresh
    /// budget is earned.  A budget merely *shrunk* by backpressure (nonzero
    /// remainder) is kept: the pipeline is still in its fine-interleaving
    /// regime until the pressure drains.
    fn refill_budget_if_spent(&mut self) {
        if self.budget == 0 {
            self.budget = YIELD_BUDGET;
        }
    }
}

/// The [`PooledTask`] adapter running a handler on the M:N scheduler.
pub(crate) struct PooledHandler<T: Send + 'static> {
    core: Arc<HandlerCore<T>>,
    /// Loop state; the scheduler runs at most one step of a task at a time,
    /// so this lock is uncontended and only fences the state against the
    /// `Send`-across-workers handoff.
    state: SpinLock<PooledLoopState<T>>,
}

impl<T: Send + 'static> PooledHandler<T> {
    pub(crate) fn new(core: Arc<HandlerCore<T>>) -> Self {
        let max_batch = core.config.max_batch.max(1);
        PooledHandler {
            core,
            state: SpinLock::new(PooledLoopState {
                current: None,
                serving: None,
                batch: Vec::with_capacity(batch_prealloc(max_batch)),
                budget: YIELD_BUDGET,
                stalls_seen: 0,
                pending: None,
                write_requested: false,
                writer_edges: Vec::new(),
            }),
        }
    }
}

impl<T: Send + 'static> Drop for PooledHandler<T> {
    fn drop(&mut self) {
        // A pooled task can be retired without stepping to Done (a panic
        // escaping a step, scheduler teardown).  The core outlives it
        // (clients hold handles), so any requests still queued would sit
        // there forever — including sync/query completion guards whose
        // clients are parked on them.  Drain everything: dropping the
        // requests fires those guards' abandon-on-drop, waking the clients
        // into a panic instead of a permanent hang.  No step can be running
        // concurrently (the scheduler runs at most one step at a time, and
        // the task is unreachable now), so this is the sole consumer.
        {
            let mut state = self.state.lock();
            state.serving = None;
            state.current = None; // consumer drop drains the open queue
                                  // A writer announced for a stashed batch must be withdrawn, or
                                  // the dead handler's gate would refuse readers forever.
            if state.write_requested {
                self.core.gate.retract_writer();
                state.write_requested = false;
            }
            state.writer_edges.clear();
            state.pending = None;
            state.batch.clear();
        }
        while let Ok(Some(request)) = self.core.request_queue.try_dequeue() {
            drop(request);
        }
        while let Ok(Some(queue)) = self.core.qoq.try_dequeue() {
            drop(queue);
        }
        // Any guard waiter parked on this handler will never receive another
        // handler-side signal; wake them so they observe the teardown.
        self.core.guards.signal_all();
    }
}

impl<T: Send + 'static> PooledTask for PooledHandler<T> {
    fn step(&self) -> StepOutcome {
        let mut state = self.state.lock();
        let outcome = if self.core.config.queue_of_queues {
            self.core.step_queue_of_queues(&mut state)
        } else {
            self.core.step_lock_based(&mut state)
        };
        drop(state);
        match outcome {
            StepOutcome::Done => self.core.finish(),
            StepOutcome::Yielded => RuntimeStats::bump(&self.core.stats.handler_yields),
            StepOutcome::Idle => {}
        }
        outcome
    }
}

/// Closes the handler's queues when the last client-side handle goes away.
struct ShutdownOnLastHandle<T: Send + 'static> {
    core: Arc<HandlerCore<T>>,
}

impl<T: Send + 'static> Drop for ShutdownOnLastHandle<T> {
    fn drop(&mut self) {
        self.core.stop();
    }
}

/// A client-side handle to a handler owning a value of type `T`.
///
/// Handles are cheap to clone and may be shared freely between threads; the
/// handler shuts down (after draining already-logged work) when the last
/// handle is dropped, or earlier if [`Handler::stop`] is called.
pub struct Handler<T: Send + 'static> {
    core: Arc<HandlerCore<T>>,
    shutdown: Arc<ShutdownOnLastHandle<T>>,
}

impl<T: Send + 'static> Clone for Handler<T> {
    fn clone(&self) -> Self {
        Handler {
            core: Arc::clone(&self.core),
            shutdown: Arc::clone(&self.shutdown),
        }
    }
}

impl<T: Send + 'static> Handler<T> {
    pub(crate) fn from_core(core: Arc<HandlerCore<T>>) -> Self {
        let shutdown = Arc::new(ShutdownOnLastHandle {
            core: Arc::clone(&core),
        });
        Handler { core, shutdown }
    }

    pub(crate) fn core(&self) -> &Arc<HandlerCore<T>> {
        &self.core
    }

    /// The unique identifier of this handler.
    pub fn id(&self) -> HandlerId {
        self.core.id
    }

    /// The configuration the handler was spawned with.
    pub fn config(&self) -> RuntimeConfig {
        self.core.config
    }

    /// Enters a separate block reserving this handler, runs `body` with the
    /// reservation guard, and releases the reservation afterwards.
    ///
    /// This corresponds to `separate x do <body> end` in SCOOP and to the
    /// compiled sequence of Fig. 8: obtain a private queue, enqueue it on the
    /// handler's queue-of-queues, log requests, enqueue the END marker.
    pub fn separate<R>(&self, body: impl FnOnce(&mut Separate<'_, T>) -> R) -> R {
        let mut guard = Separate::begin_single(&self.core);
        let result = body(&mut guard);
        guard.end();
        result
    }

    /// Logs a single asynchronous call without keeping the reservation open.
    ///
    /// Equivalent to `self.separate(|s| s.call(f))`, provided for
    /// convenience in fire-and-forget situations.
    pub fn call_detached(&self, f: impl FnOnce(&mut T) + Send + 'static) {
        self.separate(|s| s.call(f));
    }

    /// Performs a single synchronous query in its own separate block.
    pub fn query_detached<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        self.separate(|s| s.query(f))
    }

    /// Requests the handler to stop after draining already-logged work.
    pub fn stop(&self) {
        self.core.stop();
    }

    /// Returns `true` once the handler has been asked to stop.
    pub fn is_stopped(&self) -> bool {
        self.core.is_stopped()
    }

    /// Blocks until the handler thread has exited.
    ///
    /// The handler exits once it has been stopped (explicitly or by dropping
    /// the last handle) and has drained all logged work.
    pub fn wait_finished(&self) {
        self.core.wait_finished();
    }

    /// Stops the handler, waits for it to drain, and returns the owned
    /// object.
    ///
    /// Returns `None` if another handle already retrieved the value.
    pub fn shutdown_and_take(self) -> Option<T> {
        self.core.stop();
        self.core.wait_finished();
        self.core.take_final_value()
    }

    /// The runtime statistics block shared by this handler.
    pub fn stats(&self) -> &Arc<RuntimeStats> {
        &self.core.stats
    }
}

impl<T: Send + 'static> std::fmt::Debug for Handler<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Handler")
            .field("id", &self.core.id)
            .field("stopped", &self.core.is_stopped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationLevel;

    fn spawn_inline<T: Send + 'static>(config: RuntimeConfig, object: T) -> Handler<T> {
        // Handler with its loop running on a plain std thread (the full
        // runtime uses the cached-thread layer; these tests exercise the core
        // directly).
        let stats = RuntimeStats::new();
        let core = HandlerCore::new(1, config, stats, object, None);
        let thread_core = Arc::clone(&core);
        std::thread::spawn(move || thread_core.run());
        Handler::from_core(core)
    }

    #[test]
    fn calls_and_queries_apply_in_order_qoq() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), Vec::<u32>::new());
        handler.separate(|s| {
            for i in 0..100 {
                s.call(move |v| v.push(i));
            }
            let len = s.query(|v| v.len());
            assert_eq!(len, 100);
        });
        let v = handler.shutdown_and_take().unwrap();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn calls_and_queries_apply_in_order_lock_based() {
        let handler = spawn_inline(OptimizationLevel::None.config(), Vec::<u32>::new());
        handler.separate(|s| {
            for i in 0..100 {
                s.call(move |v| v.push(i));
            }
            assert_eq!(s.query(|v| v.len()), 100);
        });
        let v = handler.shutdown_and_take().unwrap();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gigantic_max_batch_does_not_panic_the_handler() {
        // "Drain everything" expressed as usize::MAX must not blow up the
        // batch buffer pre-allocation on either loop flavour.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let config = level.config().with_max_batch(usize::MAX);
            let handler = spawn_inline(config, 0u64);
            handler.separate(|s| {
                for _ in 0..100 {
                    s.call(|n| *n += 1);
                }
                assert_eq!(s.query(|n| *n), 100);
            });
            assert_eq!(handler.shutdown_and_take(), Some(100));
        }
    }

    #[test]
    fn detached_helpers_work() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), 0u64);
        handler.call_detached(|n| *n += 5);
        assert_eq!(handler.query_detached(|n| *n), 5);
        handler.stop();
        handler.wait_finished();
    }

    #[test]
    fn dropping_last_handle_stops_handler() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), 1u8);
        let clone = handler.clone();
        let core = Arc::clone(handler.core());
        drop(handler);
        assert!(!core.is_stopped(), "clone still alive");
        drop(clone);
        assert!(core.is_stopped());
        core.wait_finished();
    }

    #[test]
    fn shutdown_and_take_returns_object_once() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), String::from("state"));
        let other = handler.clone();
        assert_eq!(handler.shutdown_and_take().as_deref(), Some("state"));
        assert_eq!(other.shutdown_and_take(), None);
    }

    #[test]
    fn panicking_call_does_not_kill_handler() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), 0i32);
        handler.separate(|s| {
            s.call(|_| panic!("bad call"));
            s.call(|n| *n = 3);
            assert_eq!(s.query(|n| *n), 3);
        });
        assert_eq!(handler.stats().snapshot().call_panics, 1);
        handler.stop();
    }

    #[test]
    fn debug_output_mentions_id() {
        let handler = spawn_inline(RuntimeConfig::all_optimizations(), ());
        assert!(format!("{handler:?}").contains("id"));
        handler.stop();
    }
}
