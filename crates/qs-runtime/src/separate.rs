//! The `separate` block reservation guard.
//!
//! A [`Separate`] value represents one client's reservation of one handler
//! for the duration of a separate block.  On the queue-of-queues path it owns
//! the producer half of the client's private queue (Fig. 8 of the paper); on
//! the lock-based path it holds the handler lock (Fig. 2).  Within the block
//! the client can log asynchronous [`call`](Separate::call)s, perform
//! synchronous [`query`](Separate::query)s, and issue explicit
//! [`sync`](Separate::sync) operations (the primitive the static
//! sync-coalescing pass of `qs-compiler` minimises).

use std::sync::Arc;

use qs_deadlock::{EdgeKind, ParticipantId, ProbeFn, WaitRegistry, WakerFn};
use qs_queues::{mailbox, MailboxProducer};
use qs_sync::Handoff;

use crate::deadlock::{current_waiter, BlockTracking};
use crate::handler::{ClientMailbox, HandlerCore};
use crate::request::Request;
use crate::stats::RuntimeStats;

/// Reservation guard for one handler within a separate block.
///
/// Obtained through [`crate::Handler::separate`] or the unified
/// [`crate::reserve`] builder.  Not `Send`: a reservation belongs to
/// the client thread that created it, mirroring SCOOP semantics.
pub struct Separate<'a, T: Send + 'static> {
    core: &'a Arc<HandlerCore<T>>,
    /// Producer half of the client mailbox (QoQ configuration); bounded or
    /// unbounded per [`crate::RuntimeConfig::mailbox_capacity`].
    producer: Option<MailboxProducer<Request<T>>>,
    /// Handler lock guard (lock-based configuration).
    lock_guard: Option<parking_lot::MutexGuard<'a, ()>>,
    /// Reusable sync handoff for this reservation.
    sync_handoff: Arc<Handoff<()>>,
    /// Deadlock-detection context (`DeadlockPolicy` on): who this block's
    /// waits belong to, whom they wait on, and how a blocked push into this
    /// block's mailbox is woken/re-validated.
    tracking: Option<BlockTracking>,
    /// Whether this block's completion is relevant to parked `reserve().when`
    /// waiters (false for the silent probe blocks the wait-condition
    /// machinery opens).  On the queue-of-queues path the handler signals
    /// when it *processes* the close — this flag additionally fires a
    /// priority wake so a pooled handler gets there promptly; on the
    /// lock-based path (no handler-visible close event exists) the client
    /// signals directly after releasing the handler lock, which is safe
    /// because blocks fully serialise on that lock.
    signal_guards: bool,
    /// Whether the handler is known to have drained everything we logged.
    synced: bool,
    ended: bool,
    /// Prevents `Send`/`Sync` auto-derivation.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<'a, T: Send + 'static> Separate<'a, T> {
    /// Begins a single-handler reservation (the common case, Fig. 8).
    pub(crate) fn begin_single(core: &'a Arc<HandlerCore<T>>) -> Self {
        RuntimeStats::bump(&core.stats.separate_blocks);
        if core.config.queue_of_queues {
            Self::attach(core, None)
        } else {
            // Pre-Qs semantics: take the handler lock for the whole block.
            // A contended acquisition registers a HandlerLock wait-for edge
            // so lock-order deadlocks between nested blocks are reportable.
            let guard = crate::deadlock::lock_handler(
                &core.client_lock,
                &core.lock_holder,
                core.deadlock.as_ref(),
            );
            Self::attach(core, Some(guard))
        }
    }

    /// Registers this client with one handler and returns the guard.
    ///
    /// On the queue-of-queues path (no `lock_guard`), this is the SEPARATE
    /// rule: enqueue a fresh private queue on the handler's queue-of-queues —
    /// lock-free, never blocks on other clients.  On the lock-based path the
    /// caller has already acquired the handler lock (directly, or through the
    /// id-ordered multi-reservation protocol in [`crate::reserve`]) and the
    /// guard simply carries it for the duration of the block.
    pub(crate) fn attach(
        core: &'a Arc<HandlerCore<T>>,
        lock_guard: Option<parking_lot::MutexGuard<'a, ()>>,
    ) -> Self {
        if lock_guard.is_none() && core.config.queue_of_queues {
            let (producer, consumer) = mailbox(core.config.mailbox_capacity);
            // Pooled scheduling: every request logged into this private
            // queue must re-arm the handler's scheduler task.
            let producer = match core.wake_hook() {
                Some(hook) => producer.with_wake_hook(Arc::clone(hook)),
                None => producer,
            };
            // Deadlock tracking: tag the queue with the reserving party so
            // the handler's "parked on this open queue" state becomes a
            // named Serving edge, validated at scan time by the
            // still-open-and-empty probe.
            let (client, serving_probe) = core
                .deadlock
                .as_ref()
                .map(|tracking| (current_waiter(&tracking.registry), consumer.serving_probe()))
                .unzip();
            core.qoq.enqueue(ClientMailbox {
                consumer,
                client,
                serving_probe,
                signal_on_close: !crate::guard::in_probe_round(),
            });
            RuntimeStats::bump(&core.stats.private_queues_enqueued);
            Self::from_parts(core, Some(producer), None)
        } else {
            Self::from_parts(core, None, lock_guard)
        }
    }

    /// Begins a reservation whose registration was already performed by the
    /// multi-handler reservation protocol (§2.4 / §3.3).
    pub(crate) fn from_parts(
        core: &'a Arc<HandlerCore<T>>,
        producer: Option<MailboxProducer<Request<T>>>,
        lock_guard: Option<parking_lot::MutexGuard<'a, ()>>,
    ) -> Self {
        let tracking =
            core.deadlock.as_ref().map(|tracking| {
                let waiter = current_waiter(&tracking.registry);
                let (push_waker, push_probe) = match &producer {
                    // QoQ path: this block's private mailbox.
                    Some(producer) => (producer.unblocker(), producer.full_probe()),
                    // Lock-based path: pushes go to the handler's shared bounded
                    // request queue.
                    None => {
                        let waker_core = Arc::clone(core);
                        let probe_core = Arc::clone(core);
                        (
                            Some(Arc::new(move || waker_core.request_queue.wake_producers())
                                as WakerFn),
                            Some(Arc::new(move || probe_core.request_queue.is_at_capacity())
                                as ProbeFn),
                        )
                    }
                };
                BlockTracking {
                    registry: Arc::clone(&tracking.registry),
                    owner: tracking.participant,
                    waiter,
                    push_waker,
                    push_probe,
                }
            });
        Separate {
            core,
            producer,
            lock_guard,
            sync_handoff: Arc::new(Handoff::new()),
            tracking,
            signal_guards: !crate::guard::in_probe_round(),
            synced: false,
            ended: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Wraps a call closure so the enqueue→execute interval lands in the
    /// process-wide `request.enqueue_to_execute_ns` latency histogram when
    /// counters are armed; hands the closure back untouched otherwise, so
    /// the `Off` mode pays exactly one relaxed load here.  Armed, only
    /// 1-in-[`qs_obs::HOT_SAMPLE`] requests per thread are stamped: the
    /// extra closure box plus a shared-histogram record on *every* request
    /// of a sub-microsecond hot path was measured at tens of percent, while
    /// a uniform sample keeps the percentiles and costs a thread-local tick.
    fn instrument_enqueue(f: crate::request::CallFn<T>) -> crate::request::CallFn<T> {
        if !qs_obs::counters_enabled() || !qs_obs::sampled(qs_obs::HOT_SAMPLE) {
            return f;
        }
        // `obs_histogram!` hands out `&'static Arc<_>`: capture the static
        // reference, not a clone — per-request refcounting on one shared
        // Arc is a contended-cacheline hot spot.
        let histogram: &'static Arc<qs_obs::Histogram> =
            qs_obs::obs_histogram!("request.enqueue_to_execute_ns");
        let enqueued = qs_obs::now_nanos();
        Box::new(move |object: &mut T| {
            histogram.record(qs_obs::now_nanos().saturating_sub(enqueued));
            f(object)
        })
    }

    fn enqueue(&self, request: Request<T>) {
        // Sampled like the latency stamp above: per-request ring writes are
        // the one trace site on the per-call fast path.
        if qs_obs::tracing_enabled() && qs_obs::sampled(qs_obs::HOT_SAMPLE) {
            qs_obs::trace_always(qs_obs::TraceKind::MailboxEnqueue, self.core.id, 0);
        }
        // Both mailbox flavours report whether the enqueue had to wait for
        // space: that wait *is* the backpressure the bounded configuration
        // promises (the client is throttled to the handler's pace), and it
        // is surfaced in the runtime statistics.
        let stalled = match &self.tracking {
            None => match &self.producer {
                Some(producer) => producer.enqueue(request),
                None => self.core.request_queue.enqueue(request),
            },
            // Deadlock tracking: the blocking interval registers a
            // MailboxPush wait-for edge, and the detector's Break policy may
            // abort the wait.
            Some(tracking) => {
                let watcher = tracking.push_watcher();
                let result = match &self.producer {
                    Some(producer) => producer.enqueue_watched(request, &watcher),
                    None => self.core.request_queue.enqueue_watched(request, &watcher),
                };
                match result {
                    Ok(stalled) => stalled,
                    Err(_request) => {
                        // This push sat on a confirmed wait-for cycle and
                        // was chosen as the break point: surface it instead
                        // of deadlocking.  Inside a handler-executed call
                        // the panic is caught by the handler loop (counted
                        // in `call_panics`), which then resumes draining and
                        // unwinds the rest of the cycle.
                        RuntimeStats::bump(&self.core.stats.deadlocks_broken);
                        std::panic::panic_any(MailboxError::DeadlockBroken {
                            handler: self.core.id,
                        });
                    }
                }
            }
        };
        if stalled {
            RuntimeStats::bump(&self.core.stats.backpressure_stalls);
            qs_obs::trace(qs_obs::TraceKind::MailboxStall, self.core.id, 0);
            qs_obs::obs_count!("mailbox.backpressure_stalls", 1);
        }
    }

    /// Takes the handler object's reader–writer gate in write mode for the
    /// duration of a client-executed mutation, blocking behind any active
    /// shared-read reservations (see [`crate::read`]).  The sync that
    /// precedes every client-executed access parks the *handler*, but
    /// readers bypass the queues entirely, so the gate is the only thing
    /// serialising this client's `&mut` against their concurrent `&`.
    /// Returns a guard that releases the gate on drop — also on unwind, so
    /// a panicking query closure cannot wedge readers out forever.  With no
    /// read reservation active this is one uncontended CAS.
    fn write_gate(&self) -> WriteGateGuard<'_> {
        self.core
            .write_gate_blocking(self.tracking.as_ref().map(|tracking| tracking.waiter));
        WriteGateGuard {
            gate: &self.core.gate,
        }
    }

    /// Waits on a sync/query handoff, registering the wait as a Query
    /// wait-for edge while deadlock tracking is on.  The edge carries an
    /// `is_ready` probe so a completed-but-not-yet-collected handoff cannot
    /// sustain a phantom cycle.
    fn wait_on_handoff<R: Send + 'static>(&self, handoff: &Arc<Handoff<R>>) -> R {
        match &self.tracking {
            Some(tracking) => {
                let pending = Arc::clone(handoff);
                handoff.wait_instrumented(|| {
                    tracking.query_edge(Some(Arc::new(move || !pending.is_ready()) as ProbeFn))
                })
            }
            None => handoff.wait(),
        }
    }

    /// Logs an asynchronous call on the handler (the `call` rule).
    ///
    /// The closure runs on the handler thread, after every previously logged
    /// request from this block and before any later one; it never interleaves
    /// with requests from other clients.
    pub fn call(&mut self, f: impl FnOnce(&mut T) + Send + 'static) {
        assert!(!self.ended, "call after the separate block ended");
        RuntimeStats::bump(&self.core.stats.calls_enqueued);
        self.enqueue(Request::Call(Self::instrument_enqueue(Box::new(f))));
        // An asynchronous call invalidates the synced state (§3.4).
        self.synced = false;
    }

    /// Attempts to log an asynchronous call without blocking, surfacing a
    /// full bounded mailbox to the caller instead of stalling on
    /// backpressure.
    ///
    /// On `Ok(())` the call is enqueued exactly as [`call`](Separate::call)
    /// would have.  On a full mailbox the closure is handed back inside
    /// [`MailboxFull`] so the client can retry, shed load, or fall back to
    /// the blocking [`call`](Separate::call); the rejection is counted in
    /// the `backpressure_rejections` statistic.  Unbounded mailboxes never
    /// reject.
    ///
    /// Retry with [`try_call_boxed`](Separate::try_call_boxed) — re-passing
    /// the returned box through `try_call` would wrap it in a fresh box per
    /// attempt, and the handler would then pay one level of call-stack per
    /// rejected attempt when it finally executes the call.
    ///
    /// ```
    /// use qs_runtime::{Runtime, RuntimeConfig};
    ///
    /// let rt = Runtime::new(RuntimeConfig::all_optimizations());
    /// let counter = rt.spawn_handler(0u64);
    /// counter.separate(|s| {
    ///     let mut pending = s.try_call(|n| *n += 1);
    ///     // Retry until the handler makes room (here: immediately).
    ///     while let Err(rejected) = pending {
    ///         pending = s.try_call_boxed(rejected.call);
    ///     }
    ///     assert_eq!(s.query(|n| *n), 1);
    /// });
    /// ```
    pub fn try_call(
        &mut self,
        f: impl FnOnce(&mut T) + Send + 'static,
    ) -> Result<(), MailboxFull<T>> {
        self.try_call_boxed(Box::new(f))
    }

    /// [`try_call`](Separate::try_call) for an already-boxed call — the
    /// retry form: a call rejected with [`MailboxFull`] is re-submitted
    /// as-is, without another layer of boxing.
    pub fn try_call_boxed(
        &mut self,
        call: crate::request::CallFn<T>,
    ) -> Result<(), MailboxFull<T>> {
        assert!(!self.ended, "call after the separate block ended");
        // Deliberately not latency-instrumented: a rejected call is handed
        // back and re-submitted through this same path, and wrapping it per
        // attempt would nest one closure layer per retry (the exact hazard
        // the boxed retry form exists to avoid).
        let result = match &self.producer {
            Some(producer) => producer.try_enqueue(Request::Call(call)),
            None => self.core.request_queue.try_enqueue(Request::Call(call)),
        };
        match result {
            Ok(()) => {
                RuntimeStats::bump(&self.core.stats.calls_enqueued);
                self.synced = false;
                Ok(())
            }
            Err(Request::Call(call)) => {
                RuntimeStats::bump(&self.core.stats.backpressure_rejections);
                Err(MailboxFull { call })
            }
            Err(_) => unreachable!("try_call only enqueues Request::Call"),
        }
    }

    /// Returns `true` if the handler is known to have processed everything
    /// this block logged so far.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Performs an explicit synchronisation with the handler.
    ///
    /// After `sync` returns, every call logged earlier in this block has been
    /// applied.  With dynamic sync-coalescing enabled a redundant sync is
    /// elided (§3.4.1); without it the round-trip is always paid, which is
    /// what makes the unoptimised configurations slow on query-heavy code.
    pub fn sync(&mut self) {
        if self.synced && self.core.config.dynamic_sync_coalescing {
            RuntimeStats::bump(&self.core.stats.syncs_elided);
            return;
        }
        self.force_sync();
    }

    /// Performs the sync round-trip unconditionally.
    fn force_sync(&mut self) {
        RuntimeStats::bump(&self.core.stats.syncs_performed);
        self.enqueue(Request::Sync(crate::request::CompletionGuard::new(
            Arc::clone(&self.sync_handoff),
        )));
        let handoff = Arc::clone(&self.sync_handoff);
        self.wait_on_handoff(&handoff);
        self.synced = true;
    }

    /// Ensures the handler has drained this block's requests, eliding the
    /// round-trip when the runtime can prove it redundant.
    fn ensure_synced(&mut self) {
        if self.synced && self.core.config.dynamic_sync_coalescing {
            RuntimeStats::bump(&self.core.stats.syncs_elided);
            return;
        }
        // Without coalescing the runtime does not exploit the knowledge
        // that we are synced; it pays the round trip again (this is the
        // behaviour of the None/QoQ configurations in §4).
        self.force_sync();
    }

    /// Performs a synchronous query (the `query` rule) and returns its
    /// result.
    ///
    /// Depending on [`crate::RuntimeConfig::client_executed_queries`] the
    /// closure runs either on the client thread after a sync (§3.2, Fig. 10b)
    /// or on the handler with the result handed back (Fig. 10a).
    pub fn query<R: Send + 'static>(&mut self, f: impl FnOnce(&mut T) -> R + Send + 'static) -> R {
        assert!(!self.ended, "query after the separate block ended");
        let round_trip = qs_obs::timer();
        if self.core.config.client_executed_queries {
            self.ensure_synced();
            RuntimeStats::bump(&self.core.stats.queries_client_executed);
            let _write = self.write_gate();
            // SAFETY: the sync above guarantees the handler has drained this
            // client's requests and is now parked waiting on this client's
            // (empty) private queue — or, lock-based, on the empty shared
            // request queue while we hold the handler lock.  No other client
            // can schedule work in between, and the write gate excludes
            // shared-read reservations, so we have exclusive access.
            let object = unsafe { self.core.object_mut() };
            let result = f(object);
            round_trip.record(qs_obs::obs_histogram!("query.round_trip_ns"));
            result
        } else {
            RuntimeStats::bump(&self.core.stats.queries_handler_executed);
            let result_handoff: Arc<Handoff<R>> = Arc::new(Handoff::new());
            let completion = crate::request::CompletionGuard::new(Arc::clone(&result_handoff));
            self.enqueue(Request::Query(Box::new(move |object: &mut T| {
                completion.complete(f(object));
            })));
            let result = self.wait_on_handoff(&result_handoff);
            // A completed query implies the handler processed everything
            // before it, so the block is synced now.
            self.synced = true;
            round_trip.record(qs_obs::obs_histogram!("query.round_trip_ns"));
            result
        }
    }

    /// Executes a query on the client **without** first synchronising.
    ///
    /// This is the primitive emitted for queries whose sync was removed by
    /// the *static* sync-coalescing pass (§3.4.2): the pass has proven that a
    /// dominating [`sync`](Separate::sync) exists on every path and that no
    /// intervening asynchronous call invalidated it.  Calling it without that
    /// guarantee is a logic error; in debug builds it is detected.
    pub fn query_unsynced<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(!self.ended, "query after the separate block ended");
        debug_assert!(
            self.synced,
            "query_unsynced called while not synced; the static sync-coalescing \
             contract is violated"
        );
        RuntimeStats::bump(&self.core.stats.queries_client_executed);
        RuntimeStats::bump(&self.core.stats.syncs_elided);
        let _write = self.write_gate();
        // SAFETY: as in `query` — the caller (the static pass) guarantees a
        // dominating sync with no intervening asynchronous call, so the
        // handler is parked and cannot touch the object; the write gate
        // excludes shared-read reservations.
        let object = unsafe { self.core.object_mut() };
        f(object)
    }

    /// Reads the handler-owned object directly, without logging a request.
    ///
    /// Used by the wait-condition machinery in [`crate::reserve`]: after an
    /// explicit [`sync`](Separate::sync) the handler is parked on this
    /// client's queue, so the read is race-free.  Unlike
    /// [`query_unsynced`](Separate::query_unsynced) this does not count as a
    /// query in the statistics — condition evaluations are tracked separately
    /// via `wait_condition_checks`.
    pub(crate) fn peek_synced(&self) -> &T {
        debug_assert!(
            self.synced,
            "peek_synced called while not synced; the reservation protocol \
             must sync before evaluating a wait condition"
        );
        // SAFETY: as in `query` — after the sync the handler is parked and
        // cannot touch the object, and the returned borrow keeps `self`
        // borrowed so no new request can be logged while it is alive.  No
        // write gate is needed: the borrow is shared, so concurrent
        // shared-read reservations are harmless, and every `&mut` site
        // (handler batches, client-executed queries) blocks on this
        // client's reservation, not on the gate alone.
        unsafe { self.core.object_mut() }
    }

    /// Logs an asynchronous (pipelined) query and returns immediately.
    ///
    /// The closure runs on the handler, after every previously logged request
    /// from this block, and its result is deposited in the returned
    /// [`QueryToken`].  Unlike [`query`](Separate::query), the client does
    /// not block: it can log further calls, issue more asynchronous queries —
    /// including on *other* handlers, overlapping N round-trips that
    /// [`query`](Separate::query) would serialise — and collect the results
    /// later with [`QueryToken::wait`] or [`QueryToken::try_take`].
    ///
    /// This generalises the §3.2 direct-handoff path: the handoff is still
    /// one-to-one between the handler and this client, but the rendezvous is
    /// deferred to the token instead of being taken immediately.
    ///
    /// ```
    /// use qs_runtime::{Runtime, RuntimeConfig};
    ///
    /// let rt = Runtime::new(RuntimeConfig::all_optimizations());
    /// let a = rt.spawn_handler(2u64);
    /// let b = rt.spawn_handler(3u64);
    /// let (ta, tb) = qs_runtime::reserve((&a, &b)).run(|(sa, sb)| {
    ///     // Both queries are in flight before either result is awaited.
    ///     (sa.query_async(|v| *v * 10), sb.query_async(|v| *v * 10))
    /// });
    /// assert_eq!(ta.wait() + tb.wait(), 50);
    /// ```
    pub fn query_async<R: Send + 'static>(
        &mut self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> QueryToken<R> {
        assert!(!self.ended, "query after the separate block ended");
        RuntimeStats::bump(&self.core.stats.queries_pipelined);
        let handoff: Arc<Handoff<R>> = Arc::new(Handoff::new());
        let completion = crate::request::CompletionGuard::new(Arc::clone(&handoff));
        self.enqueue(Request::Query(Box::new(move |object: &mut T| {
            completion.complete(f(object));
        })));
        // The handler now has pending work from this block again.
        self.synced = false;
        QueryToken {
            handoff,
            taken: false,
            tracking: self
                .tracking
                .as_ref()
                .map(|tracking| (Arc::clone(&tracking.registry), tracking.owner)),
        }
    }

    /// Ends the separate block, releasing the handler for other clients.
    ///
    /// Called automatically when the guard is dropped; calling it twice is
    /// harmless.
    pub fn end(&mut self) {
        if self.ended {
            return;
        }
        self.ended = true;
        qs_obs::trace(qs_obs::TraceKind::ReserveRelease, self.core.id, 0);
        if let Some(producer) = self.producer.take() {
            // END marker: the handler moves on to the next private queue.
            producer.close();
            // Guard waiters are signalled when the handler *processes* this
            // close (which serialises the signal after every call of the
            // block — signalling here instead could be consumed by a waiter
            // that has not observed the block's effects yet).  But with
            // waiters parked, ask the pooled scheduler to get the handler
            // there promptly: a Guard wake rides the priority lane like
            // Pressure, keeping wake-to-resume latency low under load.
            if self.signal_guards && self.core.guards.has_waiters() {
                if let Some(hook) = self.core.wake_hook() {
                    hook(qs_queues::WakeReason::Guard);
                }
            }
        }
        let lock_based = self.lock_guard.is_some();
        // Lock-based path: releasing the handler lock ends the reservation.
        // Clear the deadlock-tracking holder stamp first — after the guard
        // drops the lock belongs to whoever acquires it next.
        if lock_based {
            crate::deadlock::unlock_handler(&self.core.lock_holder);
        }
        self.lock_guard = None;
        // Lock-based path: no handler-visible close event exists, so the
        // client signals parked guard waiters itself, after releasing the
        // lock.  Safe against lost signals: any block whose effects a waiter
        // has not observed must still acquire the handler lock, i.e. after
        // the waiter (which registered while holding it) released it — so
        // its end-of-block signal fires after the waiter's registration.
        if lock_based && self.signal_guards {
            self.core.guards.signal_all();
        }
    }

    /// The identifier of the reserved handler.
    pub fn handler_id(&self) -> crate::HandlerId {
        self.core.id
    }

    /// The runtime statistics block shared by the reserved handler.
    pub fn stats(&self) -> &Arc<RuntimeStats> {
        &self.core.stats
    }
}

impl<T: Send + 'static> Drop for Separate<'_, T> {
    fn drop(&mut self) {
        self.end();
    }
}

/// RAII guard for a client-executed mutation's hold on the handler object's
/// reader–writer gate: releases the write mode on drop, including unwinds.
struct WriteGateGuard<'g> {
    gate: &'g qs_sync::ReadGate,
}

impl Drop for WriteGateGuard<'_> {
    fn drop(&mut self) {
        self.gate.end_write();
    }
}

/// Error returned by [`Separate::try_call`] when the bounded mailbox is at
/// capacity: the handler has not kept up and the runtime refuses to block
/// the client.
///
/// Carries the rejected closure back so the caller can retry it (possibly
/// after shedding load) without reconstructing the captured state.  Retry
/// through [`Separate::try_call_boxed`], which re-submits the box as-is.
pub struct MailboxFull<T> {
    /// The rejected call, returned unexecuted.
    pub call: Box<dyn FnOnce(&mut T) + Send + 'static>,
}

impl<T> std::fmt::Debug for MailboxFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxFull").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Display for MailboxFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("mailbox full: bounded queue at capacity, call rejected")
    }
}

impl<T> std::error::Error for MailboxFull<T> {}

/// A mailbox interaction failed outright (as opposed to [`MailboxFull`],
/// which hands the rejected closure back for retry).
///
/// [`DeadlockBroken`](MailboxError::DeadlockBroken) is how
/// [`crate::DeadlockPolicy::Break`] surfaces its intervention: the blocked
/// `call` panics with this value as the payload (recover it with
/// `payload.downcast_ref::<MailboxError>()` in a `catch_unwind`).  On a
/// handler-executed call the handler loop catches the panic, counts it in
/// `call_panics`, and resumes draining — which is exactly what unwinds the
/// rest of the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MailboxError {
    /// A blocking push into this handler's bounded mailbox sat on a
    /// confirmed wait-for cycle and was failed by the deadlock detector's
    /// `Break` policy; the logged call was dropped unexecuted.
    DeadlockBroken {
        /// The handler whose mailbox the broken push targeted.
        handler: crate::HandlerId,
    },
    /// A mutating operation (`call`, `try_call`) was attempted through a
    /// shared-read reservation (see [`crate::read`]).  Read reservations
    /// admit only commuting operations — `query`, `query_async`, `peek` —
    /// so the runtime fails the command fast instead of silently upgrading
    /// to exclusive access.
    ReadOnlyReservation {
        /// The handler the read-only reservation targets.
        handler: crate::HandlerId,
    },
}

impl std::fmt::Display for MailboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MailboxError::DeadlockBroken { handler } => write!(
                f,
                "push into the mailbox of handler {handler} was broken by the deadlock \
                 detector: the blocked producers formed a confirmed wait-for cycle"
            ),
            MailboxError::ReadOnlyReservation { handler } => write!(
                f,
                "handler {handler} is reserved in read mode: commands are rejected; \
                 use an exclusive reservation (or `query`) instead"
            ),
        }
    }
}

impl std::error::Error for MailboxError {}

/// Handle to the pending result of a [`Separate::query_async`] call.
///
/// The token is independent of the separate block that created it: the
/// result may be collected inside the block, after it ended, or from a
/// different point in the client's control flow.  Dropping an unconsumed
/// token is fine — the deposited result is released when the token and the
/// handler are done with it.
#[must_use = "a pipelined query's result is lost unless the token is waited on"]
pub struct QueryToken<R: Send + 'static> {
    handoff: Arc<Handoff<R>>,
    taken: bool,
    /// Deadlock tracking: the registry and the queried handler's identity,
    /// so a blocking [`wait`](QueryToken::wait) registers a Query wait-for
    /// edge.  The *waiter* is resolved at wait time — tokens are `Send`, so
    /// the collecting thread may differ from the logging one.
    tracking: Option<(Arc<WaitRegistry>, ParticipantId)>,
}

impl<R: Send + 'static> QueryToken<R> {
    /// A token born completed, used by read reservations: the query ran
    /// eagerly on the client (readers hold the object directly), so the
    /// result is deposited before the token is handed out and
    /// [`wait`](QueryToken::wait) never blocks.
    pub(crate) fn ready(value: R) -> Self {
        let handoff = Arc::new(Handoff::new());
        handoff.complete(value);
        QueryToken {
            handoff,
            taken: false,
            tracking: None,
        }
    }

    /// Blocks until the handler has executed the query and returns its
    /// result (the deferred half of the §3.2 direct handoff).
    ///
    /// # Panics
    ///
    /// Panics if the result was already collected with
    /// [`try_take`](QueryToken::try_take), or if the query was abandoned —
    /// its request dropped unexecuted or unwound mid-execution (a panicking
    /// closure, or a nested push failed by `DeadlockPolicy::Break`) — since
    /// the result will never arrive.
    pub fn wait(self) -> R {
        assert!(!self.taken, "query result already taken");
        match &self.tracking {
            Some((registry, owner)) => {
                let waiter = current_waiter(registry);
                let owner = *owner;
                let pending = Arc::clone(&self.handoff);
                self.handoff.wait_instrumented(|| {
                    registry.register(
                        waiter,
                        owner,
                        EdgeKind::Query,
                        None,
                        Some(Arc::new(move || !pending.is_ready()) as ProbeFn),
                    )
                })
            }
            None => self.handoff.wait(),
        }
    }

    /// Returns the result if the handler has already deposited it, without
    /// blocking.  Returns `None` while the query is still in flight and
    /// after the result has been taken.
    ///
    /// # Panics
    ///
    /// Panics if the query was abandoned (its request dropped unexecuted or
    /// unwound mid-execution) — polling would otherwise spin forever on a
    /// result that will never arrive.
    pub fn try_take(&mut self) -> Option<R> {
        if !self.taken && self.handoff.is_abandoned() {
            panic!("pipelined query abandoned: the handler dropped or failed the request");
        }
        if !self.taken && self.handoff.is_ready() {
            self.taken = true;
            Some(self.handoff.wait())
        } else {
            None
        }
    }

    /// Returns `true` once the result is available.
    pub fn is_ready(&self) -> bool {
        self.handoff.is_ready()
    }
}

impl<R: Send + 'static> std::fmt::Debug for QueryToken<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryToken")
            .field("ready", &self.is_ready())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptimizationLevel, RuntimeConfig};
    use crate::handler::Handler;

    fn spawn<T: Send + 'static>(config: RuntimeConfig, object: T) -> Handler<T> {
        let stats = RuntimeStats::new();
        let core = HandlerCore::new(7, config, stats, object, None);
        let thread_core = Arc::clone(&core);
        std::thread::spawn(move || thread_core.run());
        Handler::from_core(core)
    }

    #[test]
    fn dynamic_coalescing_elides_second_sync() {
        let handler = spawn(OptimizationLevel::Dynamic.config(), 5u32);
        handler.separate(|s| {
            assert_eq!(s.query(|n| *n), 5);
            assert_eq!(s.query(|n| *n), 5);
            assert_eq!(s.query(|n| *n), 5);
        });
        let snap = handler.stats().snapshot();
        assert_eq!(snap.syncs_performed, 1, "only the first query syncs");
        assert_eq!(snap.syncs_elided, 2);
        handler.stop();
    }

    #[test]
    fn without_coalescing_every_query_syncs() {
        let handler = spawn(OptimizationLevel::QoQ.config(), 5u32);
        handler.separate(|s| {
            for _ in 0..4 {
                s.query(|n| *n);
            }
        });
        let snap = handler.stats().snapshot();
        // QoQ config has handler-executed queries, so no sync tokens at all,
        // but also no elisions; every query is a full round trip.
        assert_eq!(snap.queries_handler_executed, 4);
        assert_eq!(snap.syncs_elided, 0);
        handler.stop();
    }

    #[test]
    fn call_invalidates_synced_state() {
        let handler = spawn(RuntimeConfig::all_optimizations(), 0u32);
        handler.separate(|s| {
            s.query(|n| *n);
            assert!(s.is_synced());
            s.call(|n| *n += 1);
            assert!(!s.is_synced());
            assert_eq!(s.query(|n| *n), 1);
        });
        let snap = handler.stats().snapshot();
        assert_eq!(snap.syncs_performed, 2);
        handler.stop();
    }

    #[test]
    fn explicit_sync_plus_unsynced_queries() {
        // The shape the static pass produces for Fig. 14: one sync hoisted
        // out of the loop, unsynced reads inside it.
        let handler = spawn(
            OptimizationLevel::Static.config(),
            (0..64).collect::<Vec<u32>>(),
        );
        let total = handler.separate(|s| {
            s.sync();
            let mut total = 0u32;
            for i in 0..64 {
                total += s.query_unsynced(|v| v[i]);
            }
            total
        });
        assert_eq!(total, (0..64).sum());
        let snap = handler.stats().snapshot();
        assert_eq!(snap.syncs_performed, 1);
        assert_eq!(snap.queries_client_executed, 64);
        handler.stop();
    }

    #[test]
    fn handler_executed_queries_return_results() {
        let handler = spawn(OptimizationLevel::None.config(), String::from("abc"));
        let len = handler.separate(|s| {
            s.call(|t| t.push('d'));
            s.query(|t| t.len())
        });
        assert_eq!(len, 4);
        assert_eq!(handler.stats().snapshot().queries_handler_executed, 1);
        handler.stop();
    }

    #[test]
    fn separate_blocks_from_two_threads_do_not_interleave() {
        // Fig. 1: with two clients logging on the same handler, each client's
        // requests are applied contiguously.
        let handler = spawn(RuntimeConfig::all_optimizations(), Vec::<(u8, u32)>::new());
        let h1 = handler.clone();
        let h2 = handler.clone();
        let t1 = std::thread::spawn(move || {
            h1.separate(|s| {
                for i in 0..1_000 {
                    s.call(move |v| v.push((1, i)));
                }
            });
        });
        let t2 = std::thread::spawn(move || {
            h2.separate(|s| {
                for i in 0..1_000 {
                    s.call(move |v| v.push((2, i)));
                }
            });
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let log = handler.shutdown_and_take().unwrap();
        assert_eq!(log.len(), 2_000);
        // The log must be exactly client 1's block followed by client 2's, or
        // vice versa — never interleaved.
        let first_owner = log[0].0;
        let first_block: Vec<_> = log.iter().take_while(|(o, _)| *o == first_owner).collect();
        assert_eq!(first_block.len(), 1_000, "blocks interleaved");
    }

    #[test]
    fn query_async_pipelines_and_orders_with_calls() {
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            let handler = spawn(level.config(), 0u64);
            let (first, second) = handler.separate(|s| {
                s.call(|n| *n = 10);
                let first = s.query_async(|n| *n);
                s.call(|n| *n += 5);
                let second = s.query_async(|n| *n);
                (first, second)
            });
            // Tokens remain valid after the block has ended.
            assert_eq!(first.wait(), 10, "level {level:?}");
            assert_eq!(second.wait(), 15, "level {level:?}");
            let snap = handler.stats().snapshot();
            assert_eq!(snap.queries_pipelined, 2);
            handler.stop();
        }
    }

    #[test]
    fn query_async_try_take_yields_exactly_once() {
        let handler = spawn(RuntimeConfig::all_optimizations(), 7u32);
        let mut token = handler.separate(|s| s.query_async(|n| *n));
        // Spin until the handler has deposited the result.
        let value = loop {
            if let Some(value) = token.try_take() {
                break value;
            }
            std::hint::spin_loop();
        };
        assert_eq!(value, 7);
        assert!(token.try_take().is_none(), "result is taken at most once");
        handler.stop();
    }

    #[test]
    fn query_async_invalidates_the_synced_flag() {
        let handler = spawn(RuntimeConfig::all_optimizations(), 1u32);
        handler.separate(|s| {
            s.sync();
            assert!(s.is_synced());
            let token = s.query_async(|n| *n);
            assert!(!s.is_synced(), "a pipelined query is pending work");
            assert_eq!(token.wait(), 1);
            assert_eq!(s.query(|n| *n), 1);
        });
        handler.stop();
    }

    #[test]
    fn try_call_rejects_on_a_full_capacity_one_mailbox() {
        use crate::config::SchedulerMode;
        use crate::runtime::Runtime;

        // Both loop flavours and both scheduling modes: fill the capacity-1
        // mailbox while the handler is provably busy, then assert the
        // non-blocking path hands the call back instead of stalling.
        for level in [OptimizationLevel::All, OptimizationLevel::None] {
            for mode in [
                SchedulerMode::Dedicated,
                SchedulerMode::Pooled { workers: 2 },
            ] {
                let rt = Runtime::new(
                    level
                        .config()
                        .with_mailbox_capacity(Some(1))
                        .with_scheduler(mode),
                );
                let handler = rt.spawn_handler(0u64);
                let context = format!("{level} / {mode}");
                handler.separate(|s| {
                    let gate = Arc::new(qs_sync::Event::new());
                    let opened = Arc::clone(&gate);
                    // Occupies the handler until the gate opens.
                    s.call(move |_| opened.wait());
                    // Fills the capacity-1 mailbox; by the time this
                    // blocking enqueue returns, the handler has drained the
                    // gate call (making room) and is stuck executing it.
                    s.call(|n| *n += 1);
                    // Non-blocking: must reject, not stall.
                    let rejected = s
                        .try_call(|n| *n += 10)
                        .expect_err(&format!("{context}: mailbox must be full"));
                    assert!(format!("{rejected}").contains("mailbox full"), "{context}");
                    assert!(format!("{rejected:?}").contains("MailboxFull"), "{context}");
                    gate.set();
                    // The rejected closure is handed back executable; the
                    // boxed retry form re-submits it without re-wrapping.
                    let mut pending = s.try_call_boxed(rejected.call);
                    while let Err(again) = pending {
                        std::thread::yield_now();
                        pending = s.try_call_boxed(again.call);
                    }
                    assert_eq!(s.query(|n| *n), 11, "{context}");
                });
                let snap = handler.stats().snapshot();
                assert!(
                    snap.backpressure_rejections >= 1,
                    "{context}: rejection must be counted, got {snap:?}"
                );
                assert_eq!(handler.shutdown_and_take(), Some(11), "{context}");
            }
        }
    }

    #[test]
    fn try_call_never_rejects_on_an_unbounded_mailbox() {
        let handler = spawn(
            RuntimeConfig::all_optimizations().with_mailbox_capacity(None),
            0u64,
        );
        handler.separate(|s| {
            for _ in 0..1_000 {
                s.try_call(|n| *n += 1).expect("unbounded never rejects");
            }
            assert_eq!(s.query(|n| *n), 1_000);
        });
        assert_eq!(handler.stats().snapshot().backpressure_rejections, 0);
        handler.stop();
    }

    #[test]
    fn panicking_query_closure_abandons_instead_of_hanging_the_client() {
        // Regression: a handler-executed query whose closure unwinds (a
        // panic, or a nested push failed by DeadlockPolicy::Break) used to
        // leave the client parked forever on a handoff nobody would ever
        // complete.  The CompletionGuard now abandons it, surfacing a
        // panic to the waiting client instead.
        let handler = spawn(OptimizationLevel::None.config(), 5u32);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.separate(|s| s.query(|_: &mut u32| -> u32 { panic!("query bomb") }))
        }));
        assert!(result.is_err(), "the client must panic, not hang");
        // The handler survives (the closure panic was caught and counted)
        // and keeps serving.
        assert_eq!(handler.query_detached(|n| *n), 5);
        assert_eq!(handler.stats().snapshot().call_panics, 1);

        // Same protection for pipelined queries: polling surfaces the
        // abandonment as a panic instead of spinning forever.
        let mut token = handler.separate(|s| s.query_async(|_| -> u32 { panic!("async bomb") }));
        let mut surfaced = false;
        for _ in 0..2_000 {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| token.try_take())) {
                Ok(None) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Ok(Some(_)) => panic!("abandoned query must not yield a value"),
                Err(_) => {
                    surfaced = true;
                    break;
                }
            }
        }
        assert!(surfaced, "try_take must surface the abandonment");
        assert_eq!(handler.query_detached(|n| *n), 5);
        handler.stop();
    }

    #[test]
    #[should_panic(expected = "after the separate block ended")]
    fn using_an_ended_guard_panics() {
        let handler = spawn(RuntimeConfig::all_optimizations(), 0u32);
        handler.separate(|s| {
            s.end();
            s.call(|n| *n += 1);
        });
    }
}
