//! Wiring between the runtime's blocking sites and the `qs-deadlock`
//! wait-for registry.
//!
//! With [`crate::DeadlockPolicy`] enabled, the runtime's blocking edges
//! report into the [`WaitRegistry`] for exactly the duration of the wait:
//!
//! * **query edges** — a client (or a handler executing a nested separate
//!   block) parked in a sync/query handoff, including
//!   [`crate::QueryToken::wait`];
//! * **mailbox-push edges** — a producer blocked pushing into a full bounded
//!   mailbox (private SPSC ring or the lock-based shared `MutexQueue`),
//!   instrumented through [`qs_queues::BlockWatcher`];
//! * **serving edges** — a handler parked on a client's open-but-empty
//!   private queue (it cannot serve anyone else until that client logs more
//!   requests or ends its block);
//! * **reserve edges** — a client retrying a `reserve().when(...)` wait
//!   condition;
//! * **handler-lock edges** — a client blocked acquiring the lock-based
//!   configuration's handler lock itself (held for a whole separate block,
//!   Fig. 2), instrumented through [`lock_handler`]: an uncontended
//!   `try_lock` stays registry-free, a contended acquisition registers the
//!   edge for exactly the blocking part.
//!
//! The *waiter* identity is resolved at block time: a thread executing a
//! handler's request attributes its waits to that handler (tracked by a
//! thread-local scope stack pushed around request application), any other
//! thread gets a per-thread client participant.  This is what lets a
//! cyclic-logging deadlock name `handler-1 → handler-2 → handler-1` instead
//! of two anonymous pool workers.

use std::cell::RefCell;
use std::sync::Arc;

use qs_deadlock::{EdgeGuard, EdgeKind, ParticipantId, ProbeFn, WaitRegistry, WakerFn};
use qs_queues::BlockWatcher;
use qs_sync::SpinLock;

/// A handler's hook into its runtime's deadlock detection: the shared
/// registry plus the handler's own participant identity.
#[derive(Clone)]
pub(crate) struct Tracking {
    pub(crate) registry: Arc<WaitRegistry>,
    pub(crate) participant: ParticipantId,
}

/// The client participants this thread has allocated, by registry; each is
/// forgotten (label released) when the thread exits, so a long-lived
/// runtime serving many short-lived client threads does not accumulate
/// labels forever.  Holds the registries weakly — an exiting thread must
/// not keep a dropped runtime's registry alive, nor fail when it is gone.
struct ClientRegistrations(Vec<(usize, ParticipantId, std::sync::Weak<WaitRegistry>)>);

impl Drop for ClientRegistrations {
    fn drop(&mut self) {
        for (_, participant, registry) in self.0.drain(..) {
            if let Some(registry) = registry.upgrade() {
                registry.forget_participant(participant);
            }
        }
    }
}

thread_local! {
    /// Stack of (registry key, handler participant) scopes: the innermost
    /// entry is the handler whose request this thread is currently applying.
    static HANDLER_SCOPES: RefCell<Vec<(usize, ParticipantId)>> = const { RefCell::new(Vec::new()) };
    /// Lazily allocated per-(thread, registry) client participants for
    /// threads that block outside any handler scope.
    static CLIENT_IDS: RefCell<ClientRegistrations> =
        const { RefCell::new(ClientRegistrations(Vec::new())) };
}

fn registry_key(registry: &Arc<WaitRegistry>) -> usize {
    Arc::as_ptr(registry) as usize
}

/// The participant on whose behalf the current thread is about to block:
/// the innermost handler scope registered against `registry`, or this
/// thread's client participant (allocated on first use).
pub(crate) fn current_waiter(registry: &Arc<WaitRegistry>) -> ParticipantId {
    let key = registry_key(registry);
    let from_scope = HANDLER_SCOPES.with(|scopes| {
        scopes
            .borrow()
            .iter()
            .rev()
            .find(|(scope_key, _)| *scope_key == key)
            .map(|&(_, participant)| participant)
    });
    if let Some(participant) = from_scope {
        return participant;
    }
    CLIENT_IDS.with(|ids| {
        let mut ids = ids.borrow_mut();
        if let Some(index) = ids.0.iter().position(|(id_key, _, _)| *id_key == key) {
            // Validate identity, not just address: a dropped registry's
            // allocation can be reused by a new one, and a stale id would
            // alias an unrelated participant there.
            let same_registry = ids.0[index]
                .2
                .upgrade()
                .is_some_and(|live| Arc::ptr_eq(&live, registry));
            if same_registry {
                return ids.0[index].1;
            }
            ids.0.remove(index);
        }
        let participant = registry.participant(format!("client-{:?}", std::thread::current().id()));
        ids.0.push((key, participant, Arc::downgrade(registry)));
        participant
    })
}

/// Acquires a handler lock (the pre-Qs lock-based configuration's
/// block-scoped mutex), attributing a contended wait to the wait-for
/// registry as a `HandlerLock` edge.
///
/// The fast path is a plain `try_lock` — an uncontended acquisition only
/// stamps the `holder` word.  When the lock is already held, the edge is
/// registered against the *current holder* read from `holder` — not
/// against the handler — because the party that must make progress to
/// release a mutex is whoever holds it: that is what closes an ABBA cycle
/// (client 1 holds A and waits on B's holder, client 2 holds B and waits
/// on A's holder) in the wait-for graph.  The edge guard drops the moment
/// the lock is acquired, so the edge exists for exactly the blocking
/// window.  `HandlerLock` edges are not breakable: the monitor can report
/// a lock cycle, but failing a mutex acquisition mid-protocol would poison
/// the block, so `Report` is the honest policy for lock-based deadlocks.
pub(crate) fn lock_handler<'a>(
    lock: &'a parking_lot::Mutex<()>,
    holder: &std::sync::atomic::AtomicU64,
    tracking: Option<&Tracking>,
) -> parking_lot::MutexGuard<'a, ()> {
    use std::sync::atomic::Ordering;
    let Some(tracking) = tracking else {
        // Tracking off: the holder word is never read, skip maintaining it.
        return lock.lock();
    };
    let waiter = current_waiter(&tracking.registry);
    let guard = match lock.try_lock() {
        Some(guard) => guard,
        None => {
            // If the holder released between the failed try_lock and this
            // read (word already cleared), fall back to the handler's own
            // identity: a momentarily-stale owner cannot be *confirmed* as
            // a cycle, because confirmation needs the same edge on two
            // consecutive scans and this edge dies as soon as we acquire.
            let owner = match holder.load(Ordering::Acquire) {
                0 => tracking.participant,
                raw => ParticipantId(raw),
            };
            let _edge =
                tracking
                    .registry
                    .register(waiter, owner, EdgeKind::HandlerLock, None, None);
            lock.lock()
        }
    };
    holder.store(waiter.0, Ordering::Release);
    guard
}

/// Clears the holder stamp of a handler lock immediately before its guard
/// is released (no-op while tracking is off — the word is never read then).
pub(crate) fn unlock_handler(holder: &std::sync::atomic::AtomicU64) {
    holder.store(0, std::sync::atomic::Ordering::Release);
}

/// RAII scope marking the current thread as executing a request of one
/// handler; blocking inside the scope is attributed to that handler.
pub(crate) struct HandlerScope {
    key: usize,
}

impl HandlerScope {
    pub(crate) fn enter(tracking: &Tracking) -> HandlerScope {
        let key = registry_key(&tracking.registry);
        HANDLER_SCOPES.with(|scopes| scopes.borrow_mut().push((key, tracking.participant)));
        HandlerScope { key }
    }
}

impl Drop for HandlerScope {
    fn drop(&mut self) {
        HANDLER_SCOPES.with(|scopes| {
            let mut scopes = scopes.borrow_mut();
            if let Some(position) = scopes.iter().rposition(|(key, _)| *key == self.key) {
                scopes.remove(position);
            }
        });
    }
}

/// Per-reservation tracking context carried by a [`crate::Separate`] guard:
/// who blocks (the reserving client/handler), on whom (the reserved
/// handler), and how a blocked push into this reservation's mailbox can be
/// woken and re-validated.
pub(crate) struct BlockTracking {
    pub(crate) registry: Arc<WaitRegistry>,
    /// The reserved handler (the owner of every edge this block registers).
    pub(crate) owner: ParticipantId,
    /// The reserving party (resolved when the block was opened; a `Separate`
    /// guard is `!Send`, so the thread — and with it the innermost handler
    /// scope — cannot change mid-block).
    pub(crate) waiter: ParticipantId,
    /// Wakes a push blocked on this block's mailbox (bounded mailboxes
    /// only).
    pub(crate) push_waker: Option<WakerFn>,
    /// Re-validates a blocked-push edge: is the mailbox still full?
    pub(crate) push_probe: Option<ProbeFn>,
}

impl BlockTracking {
    /// The watcher instrumenting one (potentially blocking) push.
    pub(crate) fn push_watcher(&self) -> PushWatcher<'_> {
        PushWatcher {
            tracking: self,
            guard: SpinLock::new(None),
        }
    }

    /// Registers a query edge for a wait on `probe`-observable completion.
    pub(crate) fn query_edge(&self, probe: Option<ProbeFn>) -> EdgeGuard {
        self.registry
            .register(self.waiter, self.owner, EdgeKind::Query, None, probe)
    }
}

/// [`BlockWatcher`] adapter: registers a mailbox-push wait-for edge while
/// the push is blocked and surfaces the monitor's break request to the
/// queue's wait loop.
pub(crate) struct PushWatcher<'a> {
    tracking: &'a BlockTracking,
    guard: SpinLock<Option<EdgeGuard>>,
}

impl BlockWatcher for PushWatcher<'_> {
    fn block_begin(&self) {
        let tracking = self.tracking;
        let guard = tracking.registry.register(
            tracking.waiter,
            tracking.owner,
            EdgeKind::MailboxPush,
            tracking.push_waker.clone(),
            tracking.push_probe.clone(),
        );
        *self.guard.lock() = Some(guard);
    }

    fn should_abort(&self) -> bool {
        self.guard.lock().as_ref().is_some_and(EdgeGuard::is_broken)
    }

    fn block_end(&self) {
        self.guard.lock().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiter_identity_prefers_the_innermost_handler_scope() {
        let registry = WaitRegistry::new();
        let handler = registry.participant("handler-7");
        let tracking = Tracking {
            registry: Arc::clone(&registry),
            participant: handler,
        };
        // Outside any scope: a per-thread client participant, stable across
        // calls.
        let client = current_waiter(&registry);
        assert_eq!(current_waiter(&registry), client);
        assert_ne!(client, handler);
        {
            let _scope = HandlerScope::enter(&tracking);
            assert_eq!(current_waiter(&registry), handler);
            // A different registry is unaffected by this registry's scope:
            // it resolves to its own (stable) per-thread client id.
            let other = WaitRegistry::new();
            let other_waiter = current_waiter(&other);
            assert_eq!(current_waiter(&other), other_waiter);
        }
        assert_eq!(current_waiter(&registry), client, "scope popped on drop");
    }

    #[test]
    fn push_watcher_registers_and_clears_its_edge() {
        let registry = WaitRegistry::new();
        let owner = registry.participant("handler-1");
        let waiter = registry.participant("client");
        let tracking = BlockTracking {
            registry: Arc::clone(&registry),
            owner,
            waiter,
            push_waker: None,
            push_probe: None,
        };
        let watcher = tracking.push_watcher();
        assert_eq!(registry.edge_count(), 0);
        watcher.block_begin();
        assert_eq!(registry.edge_count(), 1);
        assert!(!watcher.should_abort());
        watcher.block_end();
        assert_eq!(registry.edge_count(), 0);
        assert!(!watcher.should_abort(), "no edge, nothing broken");
    }
}
