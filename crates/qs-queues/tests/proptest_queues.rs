//! Property-based tests for the queue substrate.
//!
//! The reasoning guarantees of SCOOP/Qs (§2.2) rest on two queue properties:
//! per-producer FIFO order and exactly-once delivery.  These properties are
//! exercised here with randomly generated operation sequences and thread
//! interleavings.

use proptest::prelude::*;
use qs_queues::{spsc_channel, Dequeue, MutexQueue, QueueOfQueues};
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SPSC private queue is a FIFO under any interleaving of enqueues
    /// and dequeues performed by one producer and one consumer thread.
    #[test]
    fn spsc_is_fifo(items in proptest::collection::vec(any::<u32>(), 0..2_000)) {
        let (tx, rx) = spsc_channel();
        let expected = items.clone();
        let producer = thread::spawn(move || {
            for item in items {
                tx.enqueue(item);
            }
            tx.close();
        });
        let mut got = Vec::new();
        while let Dequeue::Item(v) = rx.dequeue() {
            got.push(v);
        }
        producer.join().unwrap();
        prop_assert_eq!(got, expected);
    }

    /// The MPSC queue-of-queues delivers every item exactly once and keeps
    /// each producer's items in their insertion order.
    #[test]
    fn mpsc_per_producer_fifo(
        per_producer in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 0..500), 1..6)
    ) {
        let q = Arc::new(QueueOfQueues::new());
        let mut handles = Vec::new();
        for (p, items) in per_producer.iter().cloned().enumerate() {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for (i, item) in items.into_iter().enumerate() {
                    q.enqueue((p, i, item));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut next_index = vec![0usize; per_producer.len()];
        let mut received = vec![Vec::new(); per_producer.len()];
        while let Dequeue::Item((p, i, item)) = q.dequeue() {
            prop_assert_eq!(i, next_index[p], "producer {} reordered", p);
            next_index[p] += 1;
            received[p].push(item);
        }
        prop_assert_eq!(received, per_producer);
    }

    /// A sequential interleaving of operations on the lock-free MPSC queue
    /// matches the behaviour of the reference mutex queue.
    #[test]
    fn mpsc_matches_mutex_queue_sequentially(ops in proptest::collection::vec(any::<Option<u8>>(), 0..400)) {
        let fast = QueueOfQueues::new();
        let reference = MutexQueue::new();
        for op in ops {
            match op {
                Some(v) => {
                    fast.enqueue(v);
                    reference.enqueue(v);
                }
                None => {
                    let a = fast.try_dequeue();
                    let b = reference.try_dequeue();
                    prop_assert_eq!(a, b);
                }
            }
        }
        // Drain both; remaining contents must agree.
        loop {
            let a = fast.try_dequeue();
            let b = reference.try_dequeue();
            prop_assert_eq!(&a, &b);
            if a == Ok(None) {
                break;
            }
        }
    }

    /// Closing with items still queued never loses them.
    #[test]
    fn close_does_not_drop_pending_items(n in 0usize..500) {
        let (tx, rx) = spsc_channel();
        for i in 0..n {
            tx.enqueue(i);
        }
        tx.close();
        let mut count = 0;
        while let Dequeue::Item(v) = rx.dequeue() {
            assert_eq!(v, count);
            count += 1;
        }
        prop_assert_eq!(count, n);
    }
}
