//! Property-based tests for the queue substrate.
//!
//! The reasoning guarantees of SCOOP/Qs (§2.2) rest on two queue properties:
//! per-producer FIFO order and exactly-once delivery.  These properties are
//! exercised here with randomly generated operation sequences and thread
//! interleavings.

use proptest::prelude::*;
use qs_queues::{bounded_spsc_channel, spsc_channel, Dequeue, MutexQueue, QueueOfQueues};
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SPSC private queue is a FIFO under any interleaving of enqueues
    /// and dequeues performed by one producer and one consumer thread.
    #[test]
    fn spsc_is_fifo(items in proptest::collection::vec(any::<u32>(), 0..2_000)) {
        let (tx, rx) = spsc_channel();
        let expected = items.clone();
        let producer = thread::spawn(move || {
            for item in items {
                tx.enqueue(item);
            }
            tx.close();
        });
        let mut got = Vec::new();
        while let Dequeue::Item(v) = rx.dequeue() {
            got.push(v);
        }
        producer.join().unwrap();
        prop_assert_eq!(got, expected);
    }

    /// The MPSC queue-of-queues delivers every item exactly once and keeps
    /// each producer's items in their insertion order.
    #[test]
    fn mpsc_per_producer_fifo(
        per_producer in proptest::collection::vec(
            proptest::collection::vec(any::<u16>(), 0..500), 1..6)
    ) {
        let q = Arc::new(QueueOfQueues::new());
        let mut handles = Vec::new();
        for (p, items) in per_producer.iter().cloned().enumerate() {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for (i, item) in items.into_iter().enumerate() {
                    q.enqueue((p, i, item));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut next_index = vec![0usize; per_producer.len()];
        let mut received = vec![Vec::new(); per_producer.len()];
        while let Dequeue::Item((p, i, item)) = q.dequeue() {
            prop_assert_eq!(i, next_index[p], "producer {} reordered", p);
            next_index[p] += 1;
            received[p].push(item);
        }
        prop_assert_eq!(received, per_producer);
    }

    /// A sequential interleaving of operations on the lock-free MPSC queue
    /// matches the behaviour of the reference mutex queue.
    #[test]
    fn mpsc_matches_mutex_queue_sequentially(ops in proptest::collection::vec(any::<Option<u8>>(), 0..400)) {
        let fast = QueueOfQueues::new();
        let reference = MutexQueue::new();
        for op in ops {
            match op {
                Some(v) => {
                    fast.enqueue(v);
                    reference.enqueue(v);
                }
                None => {
                    let a = fast.try_dequeue();
                    let b = reference.try_dequeue();
                    prop_assert_eq!(a, b);
                }
            }
        }
        // Drain both; remaining contents must agree.
        loop {
            let a = fast.try_dequeue();
            let b = reference.try_dequeue();
            prop_assert_eq!(&a, &b);
            if a == Ok(None) {
                break;
            }
        }
    }

    /// The bounded ring delivers every item exactly once, in FIFO order,
    /// across a real producer/consumer thread pair, and its length never
    /// exceeds the capacity — for any capacity, including the degenerate 1.
    #[test]
    fn bounded_ring_is_fifo_and_respects_capacity(
        items in proptest::collection::vec(any::<u32>(), 0..2_000),
        capacity in 1usize..17,
    ) {
        let (tx, rx) = bounded_spsc_channel(capacity);
        let expected = items.clone();
        let producer = thread::spawn(move || {
            let mut stalls = 0usize;
            for item in items {
                if tx.push(item) {
                    stalls += 1;
                }
            }
            tx.close();
            (tx, stalls)
        });
        let mut got = Vec::new();
        loop {
            let len = rx.queue().len();
            prop_assert!(len <= capacity, "len {} exceeded capacity {}", len, capacity);
            match rx.dequeue() {
                Dequeue::Item(v) => got.push(v),
                Dequeue::Closed => break,
            }
        }
        let (tx, stalls) = producer.join().unwrap();
        // Exactly once, in order: the received sequence *is* the sent one.
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(tx.queue().total_enqueued(), expected.len());
        prop_assert_eq!(tx.queue().total_dequeued(), expected.len());
        prop_assert_eq!(tx.queue().total_stalls(), stalls);
    }

    /// Draining in batches is observably equivalent to repeated single
    /// dequeues: same items, same order, same close behaviour — for any
    /// batch limit, capacity and item count.
    #[test]
    fn bounded_drain_batch_equals_repeated_dequeue(
        items in proptest::collection::vec(any::<u16>(), 0..600),
        capacity in 1usize..9,
        max_batch in 1usize..12,
    ) {
        // Feed both queues the same way: producer threads with identical
        // input, so backpressure interleavings are exercised on both.
        let run = |by_batch: bool| {
            let (tx, rx) = bounded_spsc_channel(capacity);
            let items = items.clone();
            let producer = thread::spawn(move || {
                for item in items {
                    tx.push(item);
                }
                tx.close();
            });
            let mut got = Vec::new();
            if by_batch {
                while let Dequeue::Item(n) = rx.drain_batch(&mut got, max_batch) {
                    assert!(n >= 1 && n <= max_batch);
                }
            } else {
                while let Dequeue::Item(v) = rx.dequeue() {
                    got.push(v);
                }
            }
            producer.join().unwrap();
            got
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// The bounded MutexQueue (the lock-based configuration's mailbox) keeps
    /// the same FIFO/exactly-once guarantees and honours its capacity bound.
    #[test]
    fn bounded_mutex_queue_is_fifo_and_respects_capacity(
        items in proptest::collection::vec(any::<u32>(), 0..800),
        capacity in 1usize..9,
        max_batch in 1usize..12,
    ) {
        let q = Arc::new(MutexQueue::with_capacity(Some(capacity)));
        let expected = items.clone();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for item in items {
                    q.enqueue(item);
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        loop {
            prop_assert!(q.len() <= capacity, "len exceeded capacity {}", capacity);
            match q.drain_batch(&mut got, max_batch) {
                Dequeue::Item(n) => prop_assert!(n >= 1 && n <= max_batch),
                Dequeue::Closed => break,
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(q.total_enqueued(), expected.len());
        prop_assert_eq!(q.total_dequeued(), expected.len());
    }

    /// Closing with items still queued never loses them.
    #[test]
    fn close_does_not_drop_pending_items(n in 0usize..500) {
        let (tx, rx) = spsc_channel();
        for i in 0..n {
            tx.enqueue(i);
        }
        tx.close();
        let mut count = 0;
        while let Dequeue::Item(v) = rx.dequeue() {
            assert_eq!(v, count);
            count += 1;
        }
        prop_assert_eq!(count, n);
    }
}
