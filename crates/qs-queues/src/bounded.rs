//! A capacity-bounded single-producer/single-consumer ring: the *bounded
//! private queue*.
//!
//! The paper's private queues (§3.1) are unbounded: a client can log calls
//! faster than a slow handler executes them, growing memory without limit.
//! This module adds the production-scale variant: a fixed-capacity ring
//! buffer whose producer side offers both a non-blocking
//! [`try_push`](BoundedSpscProducer::try_push) and a blocking
//! [`push`](BoundedSpscProducer::push) (spin-then-park *backpressure*: the
//! client is throttled to the handler's pace instead of queueing unbounded
//! work), and whose consumer side drains *batches*
//! ([`drain_batch`](BoundedSpscConsumer::drain_batch)) so the handler pays
//! the queue-crossing cost once per batch instead of once per request.
//!
//! The ring keeps the SPSC discipline of the unbounded queue: the producer
//! owns the tail sequence, the consumer owns the head sequence, and each
//! side publishes its cursor with release ordering, so the hot path is two
//! atomic loads and one atomic store per operation — no locks, no CAS.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use qs_sync::{Backoff, CachePadded, Parker};

use crate::{BlockWatcher, Closed, Dequeue};

/// Error returned by [`BoundedSpscProducer::try_push`] when the ring is at
/// capacity; the rejected value is handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct Full<T>(pub T);

impl<T> std::fmt::Display for Full<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue is at capacity")
    }
}

/// Shared state of the bounded SPSC ring.
pub struct BoundedSpsc<T> {
    /// Fixed slot array; slot `seq % capacity` holds the item with sequence
    /// number `seq`.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Monotonically increasing consumer cursor: everything below `head` has
    /// been dequeued.
    head: CachePadded<AtomicUsize>,
    /// Monotonically increasing producer cursor: everything below `tail` has
    /// been enqueued.  Invariant: `tail - head <= capacity`.
    tail: CachePadded<AtomicUsize>,
    /// Set once the producer closes the queue (END of the separate block).
    closed: AtomicBool,
    /// Set when the consumer half is dropped without draining the queue:
    /// nobody will ever make space again, so the producer must not block.
    abandoned: AtomicBool,
    /// Number of blocking pushes that had to wait for space (statistics).
    stalls: AtomicUsize,
    /// Parked consumer thread waiting for items, if any.
    consumer: Parker,
    /// Parked producer thread waiting for space, if any.
    producer: Parker,
}

// SAFETY: the producer/consumer handles enforce single-threaded access to
// each cursor; values of `T` move across threads, requiring `T: Send`.
unsafe impl<T: Send> Send for BoundedSpsc<T> {}
unsafe impl<T: Send> Sync for BoundedSpsc<T> {}

/// Producer (client) half of the bounded private queue.
pub struct BoundedSpscProducer<T> {
    queue: Arc<BoundedSpsc<T>>,
}

/// Consumer (handler) half of the bounded private queue.
pub struct BoundedSpscConsumer<T> {
    queue: Arc<BoundedSpsc<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn bounded_spsc_channel<T>(
    capacity: usize,
) -> (BoundedSpscProducer<T>, BoundedSpscConsumer<T>) {
    assert!(capacity > 0, "a bounded queue needs capacity >= 1");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let queue = Arc::new(BoundedSpsc {
        slots,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        abandoned: AtomicBool::new(false),
        stalls: AtomicUsize::new(0),
        consumer: Parker::new(),
        producer: Parker::new(),
    });
    (
        BoundedSpscProducer {
            queue: Arc::clone(&queue),
        },
        BoundedSpscConsumer { queue },
    )
}

impl<T> BoundedSpsc<T> {
    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of queued items (racy snapshot).
    ///
    /// Never exceeds [`capacity`](Self::capacity) *because the ring is
    /// correct*, not by clamping: `tail` is loaded before `head`, and `head`
    /// only grows, so the difference is at most the capacity the producer
    /// respected at enqueue time.  Tests rely on this being a genuine
    /// observation of the bound.
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Returns `true` if no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` while the ring is at capacity (racy snapshot, like
    /// [`len`](Self::len)).  Used by the deadlock detector as a liveness
    /// probe: a registered "blocked push" edge is only trusted while the
    /// ring it blocks on is still actually full.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Number of items ever enqueued (statistics; racy snapshot).
    pub fn total_enqueued(&self) -> usize {
        self.tail.load(Ordering::Relaxed)
    }

    /// Number of items ever dequeued (statistics; racy snapshot).
    pub fn total_dequeued(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Number of blocking pushes that found the ring full and had to wait
    /// for the consumer (the backpressure stall count).
    pub fn total_stalls(&self) -> usize {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Returns `true` while the ring is at or past its half-full watermark
    /// (`len * 2 >= capacity`) — the occupancy signal behind
    /// [`crate::WakeReason::Pressure`].  Racy snapshot, like
    /// [`len`](Self::len).
    pub fn is_pressured(&self) -> bool {
        self.len() * 2 >= self.capacity()
    }

    /// Returns `true` if the producer has closed the queue.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn wake_consumer(&self) {
        self.consumer.wake();
    }

    fn wake_producer(&self) {
        self.producer.wake();
    }
}

impl<T> BoundedSpscProducer<T> {
    /// Attempts to enqueue without blocking; hands `value` back inside
    /// [`Full`] when the ring is at capacity.
    ///
    /// If the consumer half has been dropped (an abandoned queue, e.g. a
    /// handler that shut down mid-block), the value is silently discarded —
    /// matching the unbounded queue, where such requests were accepted and
    /// never executed.  A producer must never hang on a queue nobody will
    /// ever drain.
    pub fn try_push(&self, value: T) -> Result<(), Full<T>> {
        let queue = &*self.queue;
        if queue.abandoned.load(Ordering::Acquire) {
            return Ok(());
        }
        let tail = queue.tail.load(Ordering::Relaxed);
        let head = queue.head.load(Ordering::Acquire);
        if tail - head == queue.capacity() {
            return Err(Full(value));
        }
        let slot = &queue.slots[tail % queue.capacity()];
        // SAFETY: `tail - head < capacity`, so the consumer has finished with
        // this slot (its previous occupant had sequence `tail - capacity`,
        // strictly below `head`), and only this producer writes slots.
        unsafe { (*slot.get()).write(value) };
        queue.tail.store(tail + 1, Ordering::Release);
        queue.wake_consumer();
        Ok(())
    }

    /// Enqueues `value`, blocking (spin then park) while the ring is full.
    ///
    /// This is the *backpressure* path: a client that outruns its handler is
    /// throttled to the handler's pace instead of growing the queue without
    /// limit.  Returns `true` if the push had to wait for space (a
    /// "backpressure stall"), `false` if it was immediate.
    pub fn push(&self, value: T) -> bool {
        match self.push_impl(value, None) {
            Ok(stalled) => stalled,
            Err(_) => unreachable!("an unwatched push never aborts"),
        }
    }

    /// [`push`](Self::push) under a [`BlockWatcher`]: the watcher observes
    /// the blocking interval and may abort the wait, in which case the value
    /// is handed back inside [`Full`] without having been enqueued.
    ///
    /// This is the deadlock-detection hook: the runtime registers the
    /// blocked push as a wait-for edge in `block_begin`, and the detector's
    /// `Break` policy makes `should_abort` true (then wakes the producer via
    /// [`unblocker`](Self::unblocker)) to fail one push on a confirmed
    /// cycle.
    pub fn push_watched(&self, value: T, watcher: &dyn BlockWatcher) -> Result<bool, Full<T>> {
        self.push_impl(value, Some(watcher))
    }

    fn push_impl(&self, value: T, watcher: Option<&dyn BlockWatcher>) -> Result<bool, Full<T>> {
        let mut value = match self.try_push(value) {
            Ok(()) => return Ok(false),
            Err(Full(v)) => v,
        };
        let queue = &*self.queue;
        queue.stalls.fetch_add(1, Ordering::Relaxed);
        if let Some(watcher) = watcher {
            watcher.block_begin();
        }
        let backoff = Backoff::new();
        loop {
            if watcher.is_some_and(BlockWatcher::should_abort) {
                if let Some(watcher) = watcher {
                    watcher.block_end();
                }
                return Err(Full(value));
            }
            value = match self.try_push(value) {
                Ok(()) => {
                    if let Some(watcher) = watcher {
                        watcher.block_end();
                    }
                    return Ok(true);
                }
                Err(Full(v)) => v,
            };
            if backoff.is_completed() {
                self.park_until_space(watcher);
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
    }

    fn park_until_space(&self, watcher: Option<&dyn BlockWatcher>) {
        let queue = &*self.queue;
        // Abandonment must be part of the wait condition: if the consumer is
        // dropped between a failed `try_push` and this park, `wake_producer`
        // fires before the parked flag is up, and space alone will never
        // appear — only the abandoned flag ends the wait.  The watcher's
        // abort request ends the wait the same way (its setter wakes the
        // producer after flipping it).
        queue.producer.park_until(|| {
            self.has_space()
                || queue.abandoned.load(Ordering::Acquire)
                || watcher.is_some_and(BlockWatcher::should_abort)
        });
    }

    fn has_space(&self) -> bool {
        let queue = &*self.queue;
        let tail = queue.tail.load(Ordering::Relaxed);
        let head = queue.head.load(Ordering::Acquire);
        tail - head < queue.capacity()
    }

    /// Closes the queue.  The consumer drains the remaining items and then
    /// observes [`Dequeue::Closed`].  Corresponds to the END marker at the
    /// end of a separate block.
    pub fn close(&self) {
        self.queue.closed.store(true, Ordering::Release);
        self.queue.wake_consumer();
    }

    /// Statistics / inspection access to the underlying queue.
    pub fn queue(&self) -> &BoundedSpsc<T> {
        &self.queue
    }
}

impl<T: Send + 'static> BoundedSpscProducer<T> {
    /// A detached handle that wakes this producer if it is blocked in a
    /// [`push`](Self::push) / [`push_watched`](Self::push_watched).
    ///
    /// The deadlock detector calls it after flipping a watcher's abort flag
    /// so the parked producer re-checks its wait condition; spurious wakes
    /// are harmless (the park protocol re-checks and re-parks).
    pub fn unblocker(&self) -> Arc<dyn Fn() + Send + Sync> {
        let queue = Arc::clone(&self.queue);
        Arc::new(move || queue.wake_producer())
    }

    /// A detached probe answering "is the ring currently full?" — see
    /// [`BoundedSpsc::is_full`].  The deadlock detector re-validates a
    /// registered blocked-push edge with it at scan time.
    pub fn full_probe(&self) -> Arc<dyn Fn() -> bool + Send + Sync> {
        let queue = Arc::clone(&self.queue);
        Arc::new(move || queue.is_full())
    }
}

impl<T> BoundedSpscConsumer<T> {
    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(Some(v))` for an item, `Ok(None)` if the ring is
    /// currently empty but still open, and `Err(Closed)` if it is closed and
    /// drained.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        let queue = &*self.queue;
        let head = queue.head.load(Ordering::Relaxed);
        let tail = queue.tail.load(Ordering::Acquire);
        if head == tail {
            if queue.closed.load(Ordering::Acquire) {
                // Re-check: an item may have been pushed between the tail
                // load and the closed load.
                if queue.tail.load(Ordering::Acquire) != head {
                    return self.try_dequeue();
                }
                return Err(Closed);
            }
            return Ok(None);
        }
        let slot = &queue.slots[head % queue.capacity()];
        // SAFETY: `head < tail`, so the producer published this slot (release
        // store of `tail` observed with acquire) and will not touch it again
        // until `head` moves past it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        queue.head.store(head + 1, Ordering::Release);
        queue.wake_producer();
        Ok(Some(value))
    }

    /// Dequeues the next item, blocking (spin then park) while the ring is
    /// empty but still open.
    pub fn dequeue(&self) -> Dequeue<T> {
        let backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(Some(v)) => return Dequeue::Item(v),
                Err(Closed) => return Dequeue::Closed,
                Ok(None) => {
                    if backoff.is_completed() {
                        self.park_until_work();
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// Drains up to `max` immediately available items into `out` without
    /// blocking.  Returns the number of items appended, or [`Closed`] if the
    /// ring is closed and fully drained.
    pub fn try_drain_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, Closed> {
        crate::batch::try_drain_with(out, max, || self.try_dequeue())
    }

    /// Drains a batch of up to `max` items into `out`, blocking until at
    /// least one item is available or the queue is closed and drained.
    ///
    /// Returns `Dequeue::Item(n)` with `n >= 1` items appended to `out`, or
    /// [`Dequeue::Closed`].  One blocking `drain_batch` observes exactly the
    /// items that `n` repeated [`dequeue`](Self::dequeue) calls would have,
    /// in the same order — batching changes cost, not semantics.
    pub fn drain_batch(&self, out: &mut Vec<T>, max: usize) -> Dequeue<usize> {
        crate::batch::drain_batch_with(
            out,
            max,
            |out, max| self.try_drain_batch(out, max),
            || self.park_until_work(),
        )
    }

    fn park_until_work(&self) {
        let queue = &*self.queue;
        queue.consumer.park_until(|| self.has_work_or_closed());
    }

    fn has_work_or_closed(&self) -> bool {
        let queue = &*self.queue;
        if queue.closed.load(Ordering::Acquire) {
            return true;
        }
        queue.head.load(Ordering::Relaxed) != queue.tail.load(Ordering::Acquire)
    }

    /// Statistics / inspection access to the underlying queue.
    pub fn queue(&self) -> &BoundedSpsc<T> {
        &self.queue
    }

    /// Shared handle to the underlying queue (for detached probes).
    pub(crate) fn shared(&self) -> Arc<BoundedSpsc<T>> {
        Arc::clone(&self.queue)
    }
}

impl<T> Drop for BoundedSpscConsumer<T> {
    fn drop(&mut self) {
        // Drop the undrained items first (ordinary consumer-side dequeues,
        // safe against a concurrent producer): requests carry completion
        // guards whose drop wakes their waiting client (see the runtime's
        // sync/query tokens), and deferring that to the ring's own drop
        // could deadlock — a client parked on such a guard holds the
        // producer half, so the ring would never drop.  Known residue: a
        // push racing with the tail of this drain (its abandoned-check
        // happened before the flag below, its slot write after the drain's
        // last look) can strand one item until the ring drops.
        while let Ok(Some(item)) = self.try_dequeue() {
            drop(item);
        }
        // Nobody will ever drain this queue again: release any producer
        // blocked on a full ring (see `try_push` for the discard semantics).
        self.queue.abandoned.store(true, Ordering::Release);
        self.queue.wake_producer();
    }
}

impl<T> Drop for BoundedSpsc<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for seq in head..tail {
            let slot = &self.slots[seq % self.slots.len()];
            // SAFETY: exclusive access during drop; slots in `head..tail`
            // were written and never read.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded_spsc_channel(8);
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.try_dequeue(), Ok(Some(i)));
        }
        assert_eq!(rx.try_dequeue(), Ok(None));
    }

    #[test]
    fn try_push_rejects_when_full() {
        let (tx, rx) = bounded_spsc_channel(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(Full(3)));
        assert_eq!(tx.queue().len(), 2);
        assert_eq!(rx.try_dequeue(), Ok(Some(1)));
        tx.try_push(3).unwrap();
        assert_eq!(rx.try_dequeue(), Ok(Some(2)));
        assert_eq!(rx.try_dequeue(), Ok(Some(3)));
    }

    #[test]
    fn capacity_one_round_trips() {
        let (tx, rx) = bounded_spsc_channel(1);
        for i in 0..100 {
            tx.try_push(i).unwrap();
            assert_eq!(tx.try_push(i), Err(Full(i)));
            assert_eq!(rx.try_dequeue(), Ok(Some(i)));
        }
    }

    #[test]
    fn blocking_push_waits_for_space_and_counts_the_stall() {
        let (tx, rx) = bounded_spsc_channel(1);
        tx.try_push(1).unwrap();
        let producer = thread::spawn(move || {
            let stalled = tx.push(2);
            (tx, stalled)
        });
        thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rx.try_dequeue(), Ok(Some(1)));
        let (tx, stalled) = producer.join().unwrap();
        assert!(stalled, "push into a full ring must report the stall");
        assert_eq!(tx.queue().total_stalls(), 1);
        assert_eq!(rx.dequeue(), Dequeue::Item(2));
        assert!(!tx.push(3), "push with space is not a stall");
        assert_eq!(tx.queue().total_stalls(), 1);
    }

    #[test]
    fn close_is_observed_after_drain() {
        let (tx, rx) = bounded_spsc_channel(4);
        tx.try_push('a').unwrap();
        tx.close();
        assert_eq!(rx.dequeue(), Dequeue::Item('a'));
        assert_eq!(rx.dequeue(), Dequeue::Closed);
        assert!(rx.queue().is_closed());
    }

    #[test]
    fn drain_batch_takes_at_most_max() {
        let (tx, rx) = bounded_spsc_channel(8);
        for i in 0..6 {
            tx.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.drain_batch(&mut out, 4), Dequeue::Item(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.drain_batch(&mut out, 4), Dequeue::Item(2));
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        tx.close();
        assert_eq!(rx.drain_batch(&mut out, 4), Dequeue::Closed);
    }

    #[test]
    fn concurrent_producer_consumer_preserves_order_and_bound() {
        const CAPACITY: usize = 7;
        let (tx, rx) = bounded_spsc_channel(CAPACITY);
        let n = 50_000usize;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.push(i);
            }
            tx.close();
        });
        let mut expected = 0usize;
        let mut batch = Vec::new();
        loop {
            assert!(rx.queue().len() <= CAPACITY, "ring exceeded its capacity");
            match rx.drain_batch(&mut batch, 5) {
                Dequeue::Closed => break,
                Dequeue::Item(_) => {
                    for v in batch.drain(..) {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                }
            }
        }
        assert_eq!(expected, n);
        producer.join().unwrap();
    }

    #[test]
    fn blocking_dequeue_wakes_on_push_and_close() {
        let (tx, rx) = bounded_spsc_channel(2);
        let consumer = thread::spawn(move || (rx.dequeue(), rx.dequeue()));
        thread::sleep(std::time::Duration::from_millis(30));
        tx.push(9);
        tx.close();
        assert_eq!(
            consumer.join().unwrap(),
            (Dequeue::Item(9), Dequeue::Closed)
        );
    }

    #[test]
    fn dropping_with_unconsumed_items_releases_them() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (tx, rx) = bounded_spsc_channel(4);
            for _ in 0..4 {
                tx.push(D);
            }
            // Wrap the ring so head/tail are past the first lap.
            drop(rx.try_dequeue());
            drop(rx.try_dequeue());
            tx.push(D);
            tx.push(D);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 6);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = bounded_spsc_channel::<u8>(0);
    }

    #[test]
    fn watched_push_can_be_aborted_while_parked() {
        use std::sync::atomic::AtomicUsize;

        struct Abortable {
            begins: AtomicUsize,
            ends: AtomicUsize,
            abort: AtomicBool,
        }
        impl BlockWatcher for Abortable {
            fn block_begin(&self) {
                self.begins.fetch_add(1, Ordering::SeqCst);
            }
            fn should_abort(&self) -> bool {
                self.abort.load(Ordering::SeqCst)
            }
            fn block_end(&self) {
                self.ends.fetch_add(1, Ordering::SeqCst);
            }
        }

        let (tx, rx) = bounded_spsc_channel(1);
        tx.try_push(1).unwrap();
        let watcher = Arc::new(Abortable {
            begins: AtomicUsize::new(0),
            ends: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
        });
        let unblock = tx.unblocker();
        let producer = {
            let watcher = Arc::clone(&watcher);
            thread::spawn(move || {
                let aborted = tx.push_watched(2, &*watcher);
                (tx, aborted)
            })
        };
        // Let the producer block and park, then abort + wake it.
        thread::sleep(std::time::Duration::from_millis(30));
        watcher.abort.store(true, Ordering::SeqCst);
        unblock();
        let (tx, aborted) = producer.join().unwrap();
        assert_eq!(aborted, Err(Full(2)), "abort hands the value back");
        assert_eq!(watcher.begins.load(Ordering::SeqCst), 1);
        assert_eq!(watcher.ends.load(Ordering::SeqCst), 1);
        assert!(tx.queue().is_full(), "nothing was enqueued by the abort");
        // The ring still works: space appears, the next watched push is
        // immediate and never consults the watcher.
        assert_eq!(rx.try_dequeue(), Ok(Some(1)));
        watcher.abort.store(false, Ordering::SeqCst);
        assert_eq!(tx.push_watched(3, &*watcher), Ok(false));
        assert_eq!(watcher.begins.load(Ordering::SeqCst), 1, "no new block");
        assert_eq!(rx.try_dequeue(), Ok(Some(3)));
        assert!(!rx.queue().is_full());
    }

    #[test]
    fn dropping_the_consumer_releases_a_blocked_producer() {
        let (tx, rx) = bounded_spsc_channel(1);
        tx.try_push(1).unwrap();
        let producer = thread::spawn(move || {
            tx.push(2); // blocks: ring is full
            tx.push(3); // discarded outright once abandoned
        });
        thread::sleep(std::time::Duration::from_millis(30));
        drop(rx);
        producer.join().unwrap();
    }
}
