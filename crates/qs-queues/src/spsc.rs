//! An unbounded single-producer/single-consumer queue: the *private queue*.
//!
//! Once a handler has dequeued a client's private queue from the
//! queue-of-queues, "the communication is then single-producer
//! single-consumer; the client enqueues calls, the handler dequeues and
//! executes them" (§3.1).  The queue is a linked list of fixed-size segments;
//! within a segment each slot carries a `ready` flag that the producer
//! publishes with release ordering and the consumer observes with acquire
//! ordering, so neither side ever contends on a shared index.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use qs_sync::{Backoff, CachePadded, Parker, SpinLock};

use crate::{Closed, Dequeue};

/// Number of slots per segment.  Chosen so a segment (with its header) stays
/// within a few cache lines for pointer-sized payloads while amortising the
/// allocation cost of segment creation across many enqueues.
const SEGMENT_SIZE: usize = 64;

struct Slot<T> {
    ready: AtomicBool,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Segment<T> {
    slots: Box<[Slot<T>]>,
    next: AtomicPtr<Segment<T>>,
}

impl<T> Segment<T> {
    fn new() -> Box<Self> {
        let slots = (0..SEGMENT_SIZE)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Segment {
            slots,
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

/// Shared state of the SPSC queue.
///
/// The producer owns `tail_segment`/`tail_index`, the consumer owns
/// `head_segment`/`head_index`; both are cache-padded so the two sides never
/// write to the same line.
pub struct SpscQueue<T> {
    /// Producer cursor (segment pointer + index within it).
    tail: CachePadded<SpinLock<Cursor<T>>>,
    /// Consumer cursor.
    head: CachePadded<SpinLock<Cursor<T>>>,
    /// Set once the producer closes the queue (END of the separate block).
    closed: AtomicBool,
    /// Number of items enqueued over the queue's lifetime (statistics).
    enqueued: AtomicUsize,
    /// Number of items dequeued over the queue's lifetime (statistics).
    dequeued: AtomicUsize,
    /// Parked consumer thread, if any.
    consumer: Parker,
}

struct Cursor<T> {
    segment: *mut Segment<T>,
    index: usize,
}

// SAFETY: the producer/consumer handles below enforce single-threaded access
// to each cursor; values of `T` are moved across threads, requiring `T: Send`.
unsafe impl<T: Send> Send for SpscQueue<T> {}
unsafe impl<T: Send> Sync for SpscQueue<T> {}

impl<T> SpscQueue<T> {
    fn new() -> Arc<Self> {
        let first = Box::into_raw(Segment::new());
        Arc::new(SpscQueue {
            tail: CachePadded::new(SpinLock::new(Cursor {
                segment: first,
                index: 0,
            })),
            head: CachePadded::new(SpinLock::new(Cursor {
                segment: first,
                index: 0,
            })),
            closed: AtomicBool::new(false),
            enqueued: AtomicUsize::new(0),
            dequeued: AtomicUsize::new(0),
            consumer: Parker::new(),
        })
    }

    /// Number of items ever enqueued (statistics; racy snapshot).
    pub fn total_enqueued(&self) -> usize {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Number of items ever dequeued (statistics; racy snapshot).
    pub fn total_dequeued(&self) -> usize {
        self.dequeued.load(Ordering::Relaxed)
    }

    /// Returns `true` if the producer has closed the queue.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn wake_consumer(&self) {
        self.consumer.wake();
    }
}

/// Producer (client) half of the private queue.
pub struct SpscProducer<T> {
    queue: Arc<SpscQueue<T>>,
}

/// Consumer (handler) half of the private queue.
pub struct SpscConsumer<T> {
    queue: Arc<SpscQueue<T>>,
}

/// Creates a new private queue, returning the producer and consumer handles
/// plus a shared reference for statistics inspection.
pub fn spsc_channel<T>() -> (SpscProducer<T>, SpscConsumer<T>) {
    let queue = SpscQueue::new();
    (
        SpscProducer {
            queue: Arc::clone(&queue),
        },
        SpscConsumer { queue },
    )
}

impl<T> SpscProducer<T> {
    /// Enqueues `value` at the tail of the queue.
    ///
    /// This is the non-blocking `call` operation of the execution model: the
    /// client packages a call and appends it to its private queue.
    pub fn enqueue(&self, value: T) {
        let queue = &*self.queue;
        let mut tail = queue.tail.lock();
        // SAFETY: `tail.segment` is a valid segment allocated by this queue
        // and only the producer follows/extends the tail.
        let segment = unsafe { &*tail.segment };
        let slot = &segment.slots[tail.index];
        // SAFETY: the slot at the producer cursor has never been written in
        // this round; the consumer will not read it until `ready` is set.
        unsafe { (*slot.value.get()).write(value) };
        slot.ready.store(true, Ordering::Release);
        tail.index += 1;
        if tail.index == SEGMENT_SIZE {
            let new_segment = Box::into_raw(Segment::new());
            segment.next.store(new_segment, Ordering::Release);
            tail.segment = new_segment;
            tail.index = 0;
        }
        drop(tail);
        queue.enqueued.fetch_add(1, Ordering::Relaxed);
        queue.wake_consumer();
    }

    /// Closes the queue.  The consumer will drain the remaining items and
    /// then observe [`Dequeue::Closed`].  Corresponds to enqueueing the END
    /// marker at the end of a separate block.
    pub fn close(&self) {
        self.queue.closed.store(true, Ordering::Release);
        self.queue.wake_consumer();
    }

    /// Statistics / inspection access to the underlying queue.
    pub fn queue(&self) -> &SpscQueue<T> {
        &self.queue
    }
}

impl<T> SpscConsumer<T> {
    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(Some(v))` for an item, `Ok(None)` if the queue is
    /// currently empty but still open, and `Err(Closed)` if it is closed and
    /// drained.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        let queue = &*self.queue;
        let mut head = queue.head.lock();
        // SAFETY: only the consumer follows the head cursor.
        let segment = unsafe { &*head.segment };
        let slot = &segment.slots[head.index];
        if slot.ready.load(Ordering::Acquire) {
            // SAFETY: `ready` was published after the value write; the
            // consumer takes ownership exactly once.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            head.index += 1;
            if head.index == SEGMENT_SIZE {
                // The producer installed `next` before marking the last slot
                // of this segment ready... but it actually installs `next`
                // right after writing slot SEGMENT_SIZE-1, so spin briefly.
                let backoff = Backoff::new();
                loop {
                    let next = segment.next.load(Ordering::Acquire);
                    if !next.is_null() {
                        let old = head.segment;
                        head.segment = next;
                        head.index = 0;
                        drop(head);
                        // SAFETY: the consumer is past this segment and the
                        // producer moved its tail off it when installing next.
                        unsafe { drop(Box::from_raw(old)) };
                        queue.dequeued.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some(value));
                    }
                    backoff.snooze();
                }
            }
            drop(head);
            queue.dequeued.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(value));
        }
        if queue.closed.load(Ordering::Acquire) {
            // Re-check: an item may have been enqueued between the slot check
            // and the closed check.
            if slot.ready.load(Ordering::Acquire) {
                drop(head);
                return self.try_dequeue();
            }
            return Err(Closed);
        }
        Ok(None)
    }

    /// Dequeues the next item, blocking (spin then park) while the queue is
    /// empty but still open.
    pub fn dequeue(&self) -> Dequeue<T> {
        let backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(Some(v)) => return Dequeue::Item(v),
                Err(Closed) => return Dequeue::Closed,
                Ok(None) => {
                    if backoff.is_completed() {
                        self.park_until_work();
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    /// Drains up to `max` immediately available items into `out` without
    /// blocking.  Returns the number of items appended, or [`Closed`] if the
    /// queue is closed and fully drained.
    pub fn try_drain_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, Closed> {
        crate::batch::try_drain_with(out, max, || self.try_dequeue())
    }

    /// Drains a batch of up to `max` items into `out`, blocking until at
    /// least one item is available or the queue is closed and drained.
    ///
    /// Returns `Dequeue::Item(n)` with `n >= 1` items appended to `out`, or
    /// [`Dequeue::Closed`].  A blocking `drain_batch` observes exactly the
    /// items that `n` repeated [`dequeue`](Self::dequeue) calls would have,
    /// in the same order — batching changes cost, not semantics.
    pub fn drain_batch(&self, out: &mut Vec<T>, max: usize) -> Dequeue<usize> {
        crate::batch::drain_batch_with(
            out,
            max,
            |out, max| self.try_drain_batch(out, max),
            || self.park_until_work(),
        )
    }

    fn park_until_work(&self) {
        self.queue.consumer.park_until(|| self.has_work_or_closed());
    }

    fn has_work_or_closed(&self) -> bool {
        let queue = &*self.queue;
        if queue.closed.load(Ordering::Acquire) {
            return true;
        }
        let head = queue.head.lock();
        // SAFETY: consumer-owned cursor.
        let segment = unsafe { &*head.segment };
        segment.slots[head.index].ready.load(Ordering::Acquire)
    }

    /// Statistics / inspection access to the underlying queue.
    pub fn queue(&self) -> &SpscQueue<T> {
        &self.queue
    }

    /// Shared handle to the underlying queue (for detached probes).
    pub(crate) fn shared(&self) -> Arc<SpscQueue<T>> {
        Arc::clone(&self.queue)
    }
}

impl<T> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        // Drop the undrained items now (ordinary consumer-side dequeues,
        // safe against a concurrent producer): requests carry completion
        // guards whose drop wakes their waiting client, and deferring that
        // to the queue's own drop could deadlock — a client parked on such
        // a completion holds the producer half, so the queue would never
        // drop.  Known residue: an enqueue racing with the tail of this
        // drain can strand one item until the queue drops.
        while let Ok(Some(item)) = self.try_dequeue() {
            drop(item);
        }
    }
}

impl<T> Drop for SpscQueue<T> {
    fn drop(&mut self) {
        // Drain and free any remaining items and segments.
        let mut head = self.head.lock();
        let tail_segment = self.tail.lock().segment;
        loop {
            let segment_ptr = head.segment;
            // SAFETY: exclusive access during drop.
            let segment = unsafe { &*segment_ptr };
            while head.index < SEGMENT_SIZE {
                let slot = &segment.slots[head.index];
                if slot.ready.load(Ordering::Acquire) {
                    // SAFETY: ready items were written and never read.
                    unsafe { (*slot.value.get()).assume_init_drop() };
                    head.index += 1;
                } else {
                    break;
                }
            }
            let next = segment.next.load(Ordering::Acquire);
            // SAFETY: drop owns all segments.
            unsafe { drop(Box::from_raw(segment_ptr)) };
            if segment_ptr == tail_segment || next.is_null() {
                break;
            }
            head.segment = next;
            head.index = 0;
        }
        // Prevent the cursors' raw pointers from being used further.
        head.segment = ptr::null_mut();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = spsc_channel();
        for i in 0..200 {
            tx.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(rx.try_dequeue(), Ok(Some(i)));
        }
        assert_eq!(rx.try_dequeue(), Ok(None));
    }

    #[test]
    fn close_is_observed_after_drain() {
        let (tx, rx) = spsc_channel();
        tx.enqueue(1);
        tx.enqueue(2);
        tx.close();
        assert_eq!(rx.dequeue(), Dequeue::Item(1));
        assert_eq!(rx.dequeue(), Dequeue::Item(2));
        assert_eq!(rx.dequeue(), Dequeue::Closed);
        assert!(rx.queue().is_closed());
    }

    #[test]
    fn crosses_segment_boundaries() {
        let (tx, rx) = spsc_channel();
        let n = SEGMENT_SIZE * 5 + 7;
        for i in 0..n {
            tx.enqueue(i);
        }
        tx.close();
        let mut got = Vec::new();
        while let Dequeue::Item(v) = rx.dequeue() {
            got.push(v);
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producer_consumer_preserves_order() {
        let (tx, rx) = spsc_channel();
        let n = 100_000usize;
        let producer = thread::spawn(move || {
            for i in 0..n {
                tx.enqueue(i);
            }
            tx.close();
        });
        let mut expected = 0usize;
        while let Dequeue::Item(v) = rx.dequeue() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, n);
        producer.join().unwrap();
    }

    #[test]
    fn blocking_dequeue_wakes_on_enqueue() {
        let (tx, rx) = spsc_channel();
        let consumer = thread::spawn(move || rx.dequeue());
        thread::sleep(std::time::Duration::from_millis(30));
        tx.enqueue(99);
        assert_eq!(consumer.join().unwrap(), Dequeue::Item(99));
    }

    #[test]
    fn blocking_dequeue_wakes_on_close() {
        let (tx, rx) = spsc_channel::<u8>();
        let consumer = thread::spawn(move || rx.dequeue());
        thread::sleep(std::time::Duration::from_millis(30));
        tx.close();
        assert_eq!(consumer.join().unwrap(), Dequeue::Closed);
    }

    #[test]
    fn statistics_count_traffic() {
        let (tx, rx) = spsc_channel();
        for i in 0..10 {
            tx.enqueue(i);
        }
        for _ in 0..4 {
            rx.dequeue();
        }
        assert_eq!(rx.queue().total_enqueued(), 10);
        assert_eq!(rx.queue().total_dequeued(), 4);
    }

    #[test]
    fn dropping_with_unconsumed_items_releases_them() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (tx, _rx) = spsc_channel();
            for _ in 0..(SEGMENT_SIZE + 3) {
                tx.enqueue(D);
            }
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), SEGMENT_SIZE + 3);
    }

    #[test]
    fn drain_batch_matches_repeated_dequeue() {
        let (tx, rx) = spsc_channel();
        let n = SEGMENT_SIZE * 2 + 11;
        for i in 0..n {
            tx.enqueue(i);
        }
        tx.close();
        let mut got = Vec::new();
        while let Dequeue::Item(drained) = rx.drain_batch(&mut got, 13) {
            assert!((1..=13).contains(&drained));
        }
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn boxed_payloads_round_trip() {
        let (tx, rx) = spsc_channel::<Box<dyn FnOnce() -> i32 + Send>>();
        tx.enqueue(Box::new(|| 7));
        tx.enqueue(Box::new(|| 8));
        let a = rx.dequeue().into_option().unwrap()();
        let b = rx.dequeue().into_option().unwrap()();
        assert_eq!(a + b, 15);
    }
}
