//! The lock-free multiple-producer/single-consumer *queue-of-queues*.
//!
//! "Each queue-of-queues has many clients trying to gain access, but only one
//! handler removing the private queues. This is a typical multiple-producer
//! single-consumer arrangement, so an efficient lock-free queue specialized
//! for this case can be used" (§3.1).
//!
//! The implementation is the classic Vyukov intrusive MPSC queue: producers
//! append with a single atomic `swap` (wait-free), the unique consumer pops
//! from the other end.  A momentary "inconsistent" window exists while a
//! producer has swapped in its node but not yet linked it; the consumer
//! handles that by retrying with backoff, which is acceptable because the
//! window is a handful of instructions long.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use qs_sync::{Backoff, CachePadded, OnceValue, Parker};

use crate::{Closed, Dequeue, WakeHook, WakeReason};

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

impl<T> Node<T> {
    fn new(value: Option<T>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// Result of a non-blocking pop from the queue-of-queues.
#[derive(Debug, PartialEq, Eq)]
enum Pop<T> {
    Item(T),
    Empty,
    /// A producer is mid-push; retry shortly.
    Inconsistent,
}

/// A lock-free unbounded MPSC queue with a blocking consumer side and a
/// close ("no more work") protocol.
///
/// ```
/// use qs_queues::{QueueOfQueues, Dequeue};
/// let q = QueueOfQueues::new();
/// q.enqueue(5);
/// assert_eq!(q.dequeue(), Dequeue::Item(5));
/// q.close();
/// assert_eq!(q.dequeue(), Dequeue::Closed);
/// ```
pub struct QueueOfQueues<T> {
    /// Producers swap new nodes into `head`.
    head: CachePadded<AtomicPtr<Node<T>>>,
    /// The consumer advances `tail` (the current stub node).
    tail: CachePadded<AtomicPtr<Node<T>>>,
    closed: AtomicBool,
    enqueued: AtomicUsize,
    dequeued: AtomicUsize,
    consumer: Parker,
    /// Optional consumer-wake hook (M:N scheduled consumers); see
    /// [`WakeHook`].
    wake_hook: OnceValue<WakeHook>,
}

// SAFETY: producers only touch `head` (atomic swap) and their own node;
// the single consumer owns `tail`.  Values are moved across threads.
unsafe impl<T: Send> Send for QueueOfQueues<T> {}
unsafe impl<T: Send> Sync for QueueOfQueues<T> {}

impl<T> Default for QueueOfQueues<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> QueueOfQueues<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        let stub = Node::new(None);
        QueueOfQueues {
            head: CachePadded::new(AtomicPtr::new(stub)),
            tail: CachePadded::new(AtomicPtr::new(stub)),
            closed: AtomicBool::new(false),
            enqueued: AtomicUsize::new(0),
            dequeued: AtomicUsize::new(0),
            consumer: Parker::new(),
            wake_hook: OnceValue::new(),
        }
    }

    /// Registers the consumer-wake hook, invoked after every enqueue and on
    /// close.  May be set at most once (subsequent calls are ignored); the
    /// consumer's scheduler registers it before any producer it wants to
    /// hear from starts enqueuing.
    pub fn set_wake_hook(&self, hook: WakeHook) {
        let _ = self.wake_hook.set(hook);
    }

    fn invoke_wake_hook(&self, reason: WakeReason) {
        if let Some(hook) = self.wake_hook.get() {
            hook(reason);
        }
    }

    /// Appends `value`.  Wait-free for producers: one allocation, one swap,
    /// one store.  The queue-of-queues is unbounded, so its wakes always
    /// carry [`WakeReason::Enqueue`] — pressure originates in the (bounded)
    /// private queues, never here.
    pub fn enqueue(&self, value: T) {
        let node = Node::new(Some(value));
        // SAFETY: `node` is a fresh allocation we exclusively own until the
        // consumer reaches it.
        let prev = self.head.swap(node, Ordering::AcqRel);
        // Linking the previous head to the new node completes the push.  The
        // brief window before this store is the "inconsistent" state.
        unsafe { (*prev).next.store(node, Ordering::Release) };
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        self.wake_consumer();
        self.invoke_wake_hook(WakeReason::Enqueue);
    }

    /// Marks the queue closed.  The consumer drains the remaining items and
    /// then observes [`Dequeue::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake_consumer();
        self.invoke_wake_hook(WakeReason::Close);
    }

    /// Returns `true` once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Total number of enqueue operations (statistics; racy snapshot).
    pub fn total_enqueued(&self) -> usize {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Total number of successful dequeue operations (statistics).
    pub fn total_dequeued(&self) -> usize {
        self.dequeued.load(Ordering::Relaxed)
    }

    fn wake_consumer(&self) {
        self.consumer.wake();
    }

    /// Non-blocking pop; must only be called from the single consumer thread.
    fn pop(&self) -> Pop<T> {
        let tail = self.tail.load(Ordering::Relaxed);
        // SAFETY: `tail` is always a valid node owned by the consumer (the
        // current stub).
        let next = unsafe { (*tail).next.load(Ordering::Acquire) };
        if !next.is_null() {
            self.tail.store(next, Ordering::Relaxed);
            // SAFETY: `next` was fully published by its producer (release
            // store observed with acquire); taking the value transfers
            // ownership, and the old stub is ours to free.
            let value = unsafe { (*next).value.take() };
            unsafe { drop(Box::from_raw(tail)) };
            self.dequeued.fetch_add(1, Ordering::Relaxed);
            return Pop::Item(value.expect("non-stub node must carry a value"));
        }
        // No linked successor.  If head == tail the queue is genuinely empty;
        // otherwise a producer is mid-push.
        if self.head.load(Ordering::Acquire) == tail {
            Pop::Empty
        } else {
            Pop::Inconsistent
        }
    }

    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(Some(v))` on success, `Ok(None)` if empty-but-open, and
    /// `Err(Closed)` if closed and drained.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        let backoff = Backoff::new();
        loop {
            match self.pop() {
                Pop::Item(v) => return Ok(Some(v)),
                Pop::Inconsistent => backoff.spin(),
                Pop::Empty => {
                    if self.closed.load(Ordering::Acquire) {
                        // An enqueue may have raced ahead of the close flag.
                        return match self.pop() {
                            Pop::Item(v) => Ok(Some(v)),
                            Pop::Empty => Err(Closed),
                            Pop::Inconsistent => {
                                backoff.spin();
                                continue;
                            }
                        };
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// Dequeues the next item, blocking (spin then park) while the queue is
    /// empty but open.  This is the handler's outer loop operation in Fig. 7.
    pub fn dequeue(&self) -> Dequeue<T> {
        let backoff = Backoff::new();
        loop {
            match self.try_dequeue() {
                Ok(Some(v)) => return Dequeue::Item(v),
                Err(Closed) => return Dequeue::Closed,
                Ok(None) => {
                    if backoff.is_completed() {
                        self.park_until_work();
                        backoff.reset();
                    } else {
                        backoff.snooze();
                    }
                }
            }
        }
    }

    fn park_until_work(&self) {
        self.consumer.park_until(|| self.has_work_or_closed());
    }

    fn has_work_or_closed(&self) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return true;
        }
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        head != tail
    }
}

impl<T> Drop for QueueOfQueues<T> {
    fn drop(&mut self) {
        let mut node = *self.tail.get_mut();
        while !node.is_null() {
            // SAFETY: during drop we own every remaining node.
            let next = unsafe { (*node).next.load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(node)) };
            node = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn single_thread_fifo() {
        let q = QueueOfQueues::new();
        for i in 0..100 {
            q.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(q.try_dequeue(), Ok(Some(i)));
        }
        assert_eq!(q.try_dequeue(), Ok(None));
    }

    #[test]
    fn close_after_drain() {
        let q = QueueOfQueues::new();
        q.enqueue('a');
        q.close();
        assert_eq!(q.dequeue(), Dequeue::Item('a'));
        assert_eq!(q.dequeue(), Dequeue::Closed);
        assert!(q.is_closed());
    }

    #[test]
    fn many_producers_every_item_arrives_exactly_once() {
        const PRODUCERS: usize = 8;
        const PER_PRODUCER: usize = 10_000;
        let q = Arc::new(QueueOfQueues::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue(p * PER_PRODUCER + i);
                }
            }));
        }
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut seen = HashSet::new();
                while let Dequeue::Item(v) = q.dequeue() {
                    assert!(seen.insert(v), "duplicate item {v}");
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen.len(), PRODUCERS * PER_PRODUCER);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // The reasoning guarantee the runtime relies on: each producer's items
        // come out in the order that producer inserted them (global order may
        // interleave).
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let q = Arc::new(QueueOfQueues::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue((p, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut last = [None; PRODUCERS];
        while let Dequeue::Item((p, i)) = q.dequeue() {
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p} reordered: {prev} then {i}");
            }
            last[p] = Some(i);
        }
        for (p, l) in last.iter().enumerate() {
            assert_eq!(*l, Some(PER_PRODUCER - 1), "producer {p} lost items");
        }
    }

    #[test]
    fn blocking_consumer_wakes_on_enqueue() {
        let q = Arc::new(QueueOfQueues::new());
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.dequeue());
        thread::sleep(std::time::Duration::from_millis(30));
        q.enqueue(1u8);
        assert_eq!(consumer.join().unwrap(), Dequeue::Item(1));
    }

    #[test]
    fn blocking_consumer_wakes_on_close() {
        let q = Arc::new(QueueOfQueues::<u8>::new());
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.dequeue());
        thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        assert_eq!(consumer.join().unwrap(), Dequeue::Closed);
    }

    #[test]
    fn drop_frees_pending_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = QueueOfQueues::new();
            for _ in 0..10 {
                q.enqueue(D);
            }
            let _ = q.try_dequeue();
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn statistics_track_traffic() {
        let q = QueueOfQueues::new();
        q.enqueue(1);
        q.enqueue(2);
        let _ = q.try_dequeue();
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 1);
    }
}
