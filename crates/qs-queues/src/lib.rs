//! Specialised queue substrate for the SCOOP/Qs runtime.
//!
//! §3.1 of the paper observes that the queue-of-queues pattern induces two
//! very specific communication shapes, each of which admits a specialised,
//! efficient queue:
//!
//! * the **queue-of-queues** itself has many clients inserting their private
//!   queues but only one handler removing them — a *multiple-producer,
//!   single-consumer* (MPSC) arrangement ([`mpsc::QueueOfQueues`]);
//! * each **private queue** is written by exactly one client and drained by
//!   exactly one handler — a *single-producer, single-consumer* (SPSC)
//!   arrangement ([`spsc::SpscQueue`]).
//!
//! "These optimizations are important as they are involved in all
//! communication between clients and handlers."
//!
//! The crate also provides a naive lock-based queue ([`mutex_queue`]) used by
//! the unoptimised baseline configuration and by the ablation benchmark E9,
//! which quantifies how much the specialised queues matter.
//!
//! Two production-scale extensions sit on top of the paper's structures:
//!
//! * a **capacity-bounded SPSC ring** ([`bounded`]) whose blocking `push`
//!   applies *backpressure* to clients that outrun their handler, instead of
//!   growing the private queue without limit; and
//! * **batch draining** (`drain_batch` on every consumer flavour, including
//!   [`MutexQueue`]), so the handler amortises its dequeue overhead — one
//!   lock acquisition per batch on the mutex queue, one spin/park round and
//!   one accounting update per batch on the lock-free queues — instead of
//!   paying it per request.
//!
//! The [`mailbox`] module unifies the bounded and unbounded private queues
//! behind one producer/consumer pair, keyed by an optional capacity.
//!
//! The blocking (backpressure) push paths additionally accept a
//! [`BlockWatcher`], the instrumentation hook the runtime's deadlock
//! detector uses to register "producer blocked on full mailbox" wait-for
//! edges and to *break* one such push when it sits on a confirmed cycle.
//!
//! For M:N scheduled consumers, every queue accepts a [`WakeHook`] invoked
//! by producers whenever work may have become visible.  Each invocation
//! carries a [`WakeReason`] occupancy hint: bounded queues report
//! [`WakeReason::Pressure`] when a push crosses the half-full watermark or
//! blocks for space, letting the consumer's scheduler prioritise
//! backpressured pipelines.  The reason is advisory only — receivers must
//! honour every wake regardless of reason (see the [`WakeReason`] contract).

#![warn(missing_docs)]

pub(crate) mod batch;
pub mod bounded;
pub mod mailbox;
pub mod mpsc;
pub mod mutex_queue;
pub mod spsc;

pub use bounded::{
    bounded_spsc_channel, BoundedSpsc, BoundedSpscConsumer, BoundedSpscProducer, Full,
};
pub use mailbox::{mailbox, MailboxConsumer, MailboxProducer};
pub use mpsc::QueueOfQueues;
pub use mutex_queue::MutexQueue;
pub use spsc::{spsc_channel, SpscConsumer, SpscProducer, SpscQueue};

/// A consumer-wake callback registered on a queue by its (single) consumer's
/// scheduler.
///
/// Producers invoke the hook after every operation that can make new work
/// visible to the consumer — an enqueue or a close — so a consumer that is
/// *not* parked inside the blocking dequeue/drain entry points (an M:N
/// scheduled handler that returned to its pool instead of blocking) can be
/// re-armed.  Producers may invoke the hook spuriously (more often than the
/// queue transitions from empty to nonempty); deduplication is the
/// receiver's job — the scheduler's schedule-flag protocol collapses
/// redundant wakes, which keeps the queue-side contract trivial: *never miss
/// one*, duplicates are free.
///
/// Every invocation carries a [`WakeReason`] occupancy hint.  The reason is
/// *advisory*: a receiver must treat every invocation, whatever the reason,
/// as "work may now be visible" — it may only use the reason to decide *how
/// urgently* to run the consumer, never *whether* to wake it at all.
pub type WakeHook = std::sync::Arc<dyn Fn(WakeReason) + Send + Sync>;

/// Observer of producer-side *blocking* on a bounded queue, the
/// instrumentation hook behind runtime deadlock detection.
///
/// A blocking push that finds the queue full calls
/// [`block_begin`](BlockWatcher::block_begin) once before waiting,
/// [`should_abort`](BlockWatcher::should_abort) inside the wait loop (after
/// every wake), and [`block_end`](BlockWatcher::block_end) once when the
/// wait ends — whether space appeared, the queue closed/was abandoned, or
/// the watcher aborted it.  When `should_abort` returns `true` the push
/// gives up and hands the value back to the caller instead of enqueueing.
///
/// The watcher's implementor is responsible for waking the blocked producer
/// (e.g. via [`BoundedSpscProducer::unblocker`] /
/// [`MutexQueue::wake_producers`]) after making `should_abort` true; the
/// queue re-checks it on every wake-up.  Watcher methods are called with no
/// queue lock held, so they may take their own locks freely.
pub trait BlockWatcher: Send + Sync {
    /// The push found the queue full and is about to wait for space.
    fn block_begin(&self);
    /// Polled inside the wait loop; returning `true` aborts the push.
    fn should_abort(&self) -> bool;
    /// The wait ended (success, close/abandon, or abort).
    fn block_end(&self);
}

/// Occupancy hint carried by every [`WakeHook`] invocation.
///
/// # Contract
///
/// * Producers fire [`Pressure`](WakeReason::Pressure) when a push into a
///   *bounded* queue crosses the half-full watermark (`len * 2 >= capacity`
///   after the push) or had to block for space; such a wake means the
///   producer is at (or near) the point of being throttled, and the consumer
///   should be scheduled promptly so backpressured pipelines keep the fine
///   producer/consumer interleaving dedicated threads would get.
/// * All other enqueues fire [`Enqueue`](WakeReason::Enqueue), and a close
///   fires [`Close`](WakeReason::Close).
/// * The queues themselves never fire [`Guard`](WakeReason::Guard); a
///   runtime layer that knows clients are parked on a guard whose truth the
///   consumer's progress may change fires it *in addition to* the ordinary
///   close wake, asking for prompt scheduling like `Pressure` does.
/// * Receivers may not drop a wake based on its reason: the reason modulates
///   scheduling priority only.  Producers may over-report pressure
///   (spuriously), never under-report it while actually blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// An ordinary enqueue made work visible; no urgency implied.
    Enqueue,
    /// The queue was closed (END of a separate block / shutdown).
    Close,
    /// A push crossed the bounded queue's half-full watermark or blocked on
    /// a full queue: the producer is being throttled, schedule the consumer
    /// promptly.
    Pressure,
    /// Clients are parked on a wait condition over the consumer's state and
    /// the work just made visible may change its truth: schedule the
    /// consumer promptly so the pending guard signal (fired when the
    /// consumer processes the work) is not delayed behind a long run queue.
    Guard,
    /// The consumer previously failed to take its object's reader–writer
    /// gate in write mode (shared-read reservations were active) and the
    /// gate may now be writable: schedule the consumer promptly so stashed
    /// work is applied as soon as the last reader leaves.  Like
    /// [`Guard`](WakeReason::Guard), fired by a runtime layer — never by the
    /// queues themselves.
    Writable,
}

/// Outcome of a blocking dequeue operation.
///
/// Mirrors the Boolean protocol of the paper's handler loop (Fig. 7): a
/// `false` result of `dequeue` does not mean "momentarily empty" but "no more
/// work will ever arrive" (queue closed / END marker reached).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dequeue<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue was closed and fully drained; no item will ever arrive.
    Closed,
}

/// Error returned by the non-blocking `try_dequeue` operations when the
/// queue has been closed and fully drained: no item will ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue closed and drained")
    }
}

impl std::error::Error for Closed {}

impl<T> Dequeue<T> {
    /// Converts to an `Option`, mapping [`Dequeue::Closed`] to `None`.
    pub fn into_option(self) -> Option<T> {
        match self {
            Dequeue::Item(v) => Some(v),
            Dequeue::Closed => None,
        }
    }

    /// Returns `true` if this is an [`Dequeue::Item`].
    pub fn is_item(&self) -> bool {
        matches!(self, Dequeue::Item(_))
    }
}
