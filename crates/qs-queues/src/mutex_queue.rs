//! A naive lock-based MPMC queue, optionally capacity-bounded.
//!
//! This is the queue the *unoptimised* SCOOP runtime (configuration "None" in
//! §4) uses for its single request queue, and the baseline in the queue
//! ablation benchmark (E9): every operation takes a mutex and blocking uses a
//! condition variable, so each handoff pays at least one lock round-trip and
//! usually an OS wake-up.
//!
//! To keep the optimisation study apples-to-apples, the lock-based
//! configuration gets the same mailbox semantics as the queue-of-queues one:
//! [`with_capacity`](MutexQueue::with_capacity) bounds the queue (producers
//! block — *backpressure* — instead of growing it without limit) and
//! [`drain_batch`](MutexQueue::drain_batch) hands the consumer a whole batch
//! per lock acquisition instead of one item.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use qs_sync::OnceValue;

use crate::{BlockWatcher, Closed, Dequeue, WakeHook, WakeReason};

/// A mutex+condvar protected FIFO queue with a close protocol and an
/// optional capacity bound.
///
/// ```
/// use qs_queues::{MutexQueue, Dequeue};
/// let q = MutexQueue::new();
/// q.enqueue(3);
/// assert_eq!(q.dequeue(), Dequeue::Item(3));
/// q.close();
/// assert_eq!(q.dequeue(), Dequeue::Closed);
/// ```
pub struct MutexQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    /// `None` = unbounded (the seed behaviour).
    capacity: Option<usize>,
    /// Optional consumer-wake hook (M:N scheduled consumers); see
    /// [`WakeHook`].
    wake_hook: OnceValue<WakeHook>,
}

impl<T> std::fmt::Debug for MutexQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    enqueued: usize,
    dequeued: usize,
    stalls: usize,
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexQueue<T> {
    /// Creates an empty, open, unbounded queue.
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// Creates an empty, open queue bounded at `capacity` items (`None` =
    /// unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `Some(0)`.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        assert!(capacity != Some(0), "a bounded queue needs capacity >= 1");
        MutexQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                enqueued: 0,
                dequeued: 0,
                stalls: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            wake_hook: OnceValue::new(),
        }
    }

    /// Registers the consumer-wake hook, invoked after every enqueue and on
    /// close (outside the queue lock).  May be set at most once; subsequent
    /// calls are ignored.
    pub fn set_wake_hook(&self, hook: WakeHook) {
        let _ = self.wake_hook.set(hook);
    }

    fn invoke_wake_hook(&self, reason: WakeReason) {
        if let Some(hook) = self.wake_hook.get() {
            hook(reason);
        }
    }

    /// The capacity bound, or `None` if unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn is_full(&self, inner: &Inner<T>) -> bool {
        matches!(self.capacity, Some(cap) if inner.items.len() >= cap)
    }

    /// Whether `len` items sit at or past the half-full watermark of a
    /// bounded queue (see [`WakeReason::Pressure`]); unbounded queues are
    /// never pressured.
    fn pressured_at(&self, len: usize) -> bool {
        matches!(self.capacity, Some(cap) if len * 2 >= cap)
    }

    /// The [`WakeReason`] for a push that left `len` items queued and may
    /// have stalled waiting for space.
    fn push_reason(&self, stalled: bool, len: usize) -> WakeReason {
        if stalled || self.pressured_at(len) {
            WakeReason::Pressure
        } else {
            WakeReason::Enqueue
        }
    }

    /// Returns `true` while a bounded queue sits at or past its half-full
    /// watermark.  Always `false` for unbounded queues — answered without
    /// touching the queue mutex, since consumers poll this on their hot
    /// path.
    pub fn is_pressured(&self) -> bool {
        self.capacity.is_some() && self.pressured_at(self.len())
    }

    /// Signals waiting producers that space appeared.  An unbounded queue
    /// can never have a producer waiting on `not_full`, so the consumer-side
    /// hot path (the E9 lock-based baseline) skips the condvar entirely.
    fn notify_space(&self) {
        if self.capacity.is_some() {
            self.not_full.notify_all();
        }
    }

    /// Attempts to append `value` without blocking; hands it back when the
    /// queue is at capacity.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if self.is_full(&inner) {
            return Err(value);
        }
        inner.items.push_back(value);
        inner.enqueued += 1;
        let len = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        self.invoke_wake_hook(self.push_reason(false, len));
        Ok(())
    }

    /// Appends `value`, blocking while the queue is at capacity
    /// (backpressure).  Returns `true` if the enqueue had to wait for space.
    ///
    /// Once the queue is closed the bound is no longer enforced: a draining
    /// (or exiting) consumer must never leave a producer blocked forever, so
    /// shutdown reverts to the unbounded enqueue semantics.
    pub fn enqueue(&self, value: T) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let mut stalled = false;
        while self.is_full(&inner) && !inner.closed {
            if !stalled {
                stalled = true;
                inner.stalls += 1;
            }
            inner = self.not_full.wait(inner).unwrap();
        }
        inner.items.push_back(value);
        inner.enqueued += 1;
        let len = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        self.invoke_wake_hook(self.push_reason(stalled, len));
        stalled
    }

    /// [`enqueue`](Self::enqueue) under a [`BlockWatcher`]: the watcher
    /// observes the blocking (backpressure) interval and may abort the wait,
    /// in which case the value is handed back in `Err` without having been
    /// enqueued.  An unbounded queue never blocks and never consults the
    /// watcher.
    ///
    /// Watcher callbacks run *outside* the queue lock (they typically take a
    /// registry lock of their own).  The wait polls `should_abort` on a
    /// short condvar timeout, so an abort is observed promptly even without
    /// a [`wake_producers`](Self::wake_producers) nudge.
    pub fn enqueue_watched(&self, value: T, watcher: &dyn BlockWatcher) -> Result<bool, T> {
        let mut stalled = false;
        let mut inner = self.inner.lock().unwrap();
        while self.is_full(&inner) && !inner.closed {
            if !stalled {
                stalled = true;
                inner.stalls += 1;
                // First wait round: register the block with the watcher,
                // outside the queue lock, then re-evaluate from scratch.
                drop(inner);
                watcher.block_begin();
            } else {
                let (guard, _timed_out) = self
                    .not_full
                    .wait_timeout(inner, Duration::from_millis(5))
                    .unwrap();
                // Poll the abort flag outside the queue lock (the watcher
                // contract), re-acquiring it for the loop re-check.
                drop(guard);
            }
            if watcher.should_abort() {
                watcher.block_end();
                return Err(value);
            }
            inner = self.inner.lock().unwrap();
        }
        inner.items.push_back(value);
        inner.enqueued += 1;
        let len = inner.items.len();
        drop(inner);
        if stalled {
            watcher.block_end();
        }
        self.not_empty.notify_one();
        self.invoke_wake_hook(self.push_reason(stalled, len));
        Ok(stalled)
    }

    /// Wakes every producer blocked waiting for space (the deadlock
    /// detector's nudge after requesting an abort; spurious wakes are
    /// harmless).  No-op for unbounded queues, which never block producers.
    pub fn wake_producers(&self) {
        self.notify_space();
    }

    /// Returns `true` while a bounded queue is at capacity; always `false`
    /// for unbounded queues.  The deadlock detector's liveness probe for
    /// registered blocked-push edges.
    pub fn is_at_capacity(&self) -> bool {
        self.capacity.is_some() && self.is_full(&self.inner.lock().unwrap())
    }

    /// Closes the queue; consumers observe [`Dequeue::Closed`] after draining.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
        self.invoke_wake_hook(WakeReason::Close);
    }

    /// Returns `true` once the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Returns `true` if no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of enqueue operations so far.
    pub fn total_enqueued(&self) -> usize {
        self.inner.lock().unwrap().enqueued
    }

    /// Total number of successful dequeues so far.
    pub fn total_dequeued(&self) -> usize {
        self.inner.lock().unwrap().dequeued
    }

    /// Number of blocking enqueues that found the queue full and had to wait
    /// (the backpressure stall count).  Always zero for unbounded queues.
    pub fn total_stalls(&self) -> usize {
        self.inner.lock().unwrap().stalls
    }

    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(Some(v))` for an item, `Ok(None)` if currently empty but
    /// open, `Err(Closed)` if closed and drained.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.items.pop_front() {
            inner.dequeued += 1;
            drop(inner);
            self.notify_space();
            Ok(Some(v))
        } else if inner.closed {
            Err(Closed)
        } else {
            Ok(None)
        }
    }

    /// Dequeues the next item, blocking while the queue is empty but open.
    pub fn dequeue(&self) -> Dequeue<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.items.pop_front() {
                inner.dequeued += 1;
                drop(inner);
                self.notify_space();
                return Dequeue::Item(v);
            }
            if inner.closed {
                return Dequeue::Closed;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Drains up to `max` immediately available items into `out` without
    /// blocking.  Returns the number of items appended, or [`Closed`] if the
    /// queue is closed and fully drained.
    pub fn try_drain_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, Closed> {
        let mut inner = self.inner.lock().unwrap();
        if inner.items.is_empty() && inner.closed {
            return Err(Closed);
        }
        let drained = self.drain_locked(&mut inner, out, max);
        drop(inner);
        if drained > 0 {
            self.notify_space();
        }
        Ok(drained)
    }

    /// Drains a batch of up to `max` items into `out`, blocking until at
    /// least one item is available or the queue is closed and drained.
    ///
    /// One `drain_batch` under the lock replaces `n` lock round-trips of
    /// repeated [`dequeue`](Self::dequeue), observing the same items in the
    /// same order.
    pub fn drain_batch(&self, out: &mut Vec<T>, max: usize) -> Dequeue<usize> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                let drained = self.drain_locked(&mut inner, out, max);
                drop(inner);
                self.notify_space();
                return Dequeue::Item(drained);
            }
            if inner.closed {
                return Dequeue::Closed;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    fn drain_locked(&self, inner: &mut Inner<T>, out: &mut Vec<T>, max: usize) -> usize {
        let take = inner.items.len().min(max);
        out.extend(inner.items.drain(..take));
        inner.dequeued += take;
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = MutexQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(), Dequeue::Item(1));
        assert_eq!(q.dequeue(), Dequeue::Item(2));
        assert_eq!(q.dequeue(), Dequeue::Item(3));
        assert!(q.is_empty());
    }

    #[test]
    fn try_dequeue_distinguishes_empty_and_closed() {
        let q = MutexQueue::<i32>::new();
        assert_eq!(q.try_dequeue(), Ok(None));
        q.close();
        assert_eq!(q.try_dequeue(), Err(Closed));
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_dequeue_wakes_on_enqueue_and_close() {
        let q = Arc::new(MutexQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || (q2.dequeue(), q2.dequeue()));
        thread::sleep(std::time::Duration::from_millis(20));
        q.enqueue(7);
        q.close();
        assert_eq!(t.join().unwrap(), (Dequeue::Item(7), Dequeue::Closed));
    }

    #[test]
    fn bounded_enqueue_blocks_and_counts_the_stall() {
        let q = Arc::new(MutexQueue::with_capacity(Some(2)));
        assert_eq!(q.capacity(), Some(2));
        assert!(!q.enqueue(1));
        assert!(!q.enqueue(2));
        assert_eq!(q.try_enqueue(3), Err(3));
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.enqueue(3));
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.dequeue(), Dequeue::Item(1));
        assert!(producer.join().unwrap(), "full enqueue must report a stall");
        assert_eq!(q.total_stalls(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn watched_enqueue_can_be_aborted() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        struct Abortable {
            begins: AtomicUsize,
            ends: AtomicUsize,
            abort: AtomicBool,
        }
        impl BlockWatcher for Abortable {
            fn block_begin(&self) {
                self.begins.fetch_add(1, Ordering::SeqCst);
            }
            fn should_abort(&self) -> bool {
                self.abort.load(Ordering::SeqCst)
            }
            fn block_end(&self) {
                self.ends.fetch_add(1, Ordering::SeqCst);
            }
        }

        let q = Arc::new(MutexQueue::with_capacity(Some(1)));
        q.enqueue(1);
        let watcher = Arc::new(Abortable {
            begins: AtomicUsize::new(0),
            ends: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
        });
        let producer = {
            let (q, watcher) = (Arc::clone(&q), Arc::clone(&watcher));
            thread::spawn(move || q.enqueue_watched(2, &*watcher))
        };
        thread::sleep(std::time::Duration::from_millis(30));
        assert!(q.is_at_capacity());
        watcher.abort.store(true, Ordering::SeqCst);
        q.wake_producers();
        assert_eq!(
            producer.join().unwrap(),
            Err(2),
            "abort hands the value back"
        );
        assert_eq!(watcher.begins.load(Ordering::SeqCst), 1);
        assert_eq!(watcher.ends.load(Ordering::SeqCst), 1);
        assert_eq!(q.len(), 1, "nothing enqueued by the abort");
        // Un-aborted watched enqueues behave like plain ones.
        watcher.abort.store(false, Ordering::SeqCst);
        assert_eq!(q.dequeue(), Dequeue::Item(1));
        assert_eq!(q.enqueue_watched(3, &*watcher), Ok(false));
        assert_eq!(watcher.begins.load(Ordering::SeqCst), 1, "no new block");
        assert!(!MutexQueue::<u8>::new().is_at_capacity());
    }

    #[test]
    fn unbounded_queue_never_stalls() {
        let q = MutexQueue::new();
        for i in 0..10_000 {
            assert!(!q.enqueue(i));
        }
        assert_eq!(q.total_stalls(), 0);
    }

    #[test]
    fn wake_hook_reports_pressure_only_at_a_bound() {
        use crate::WakeReason;

        let reasons: Arc<std::sync::Mutex<Vec<WakeReason>>> = Arc::default();
        let sink = Arc::clone(&reasons);
        let q = MutexQueue::with_capacity(Some(4));
        q.set_wake_hook(Arc::new(move |reason| sink.lock().unwrap().push(reason)));
        assert!(!q.is_pressured());
        q.enqueue(1); // 1/4: below the watermark
        q.try_enqueue(2).unwrap(); // 2/4: at it
        assert!(q.is_pressured());
        q.close();
        assert_eq!(
            *reasons.lock().unwrap(),
            vec![WakeReason::Enqueue, WakeReason::Pressure, WakeReason::Close]
        );

        let unbounded = MutexQueue::new();
        for i in 0..100 {
            unbounded.enqueue(i);
        }
        assert!(
            !unbounded.is_pressured(),
            "an unbounded queue has no watermark"
        );
    }

    #[test]
    fn drain_batch_matches_repeated_dequeue() {
        let q = MutexQueue::new();
        for i in 0..50 {
            q.enqueue(i);
        }
        q.close();
        let mut got = Vec::new();
        while let Dequeue::Item(n) = q.drain_batch(&mut got, 7) {
            assert!((1..=7).contains(&n));
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(q.total_dequeued(), 50);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let q = Arc::new(MutexQueue::with_capacity(Some(64)));
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue(p * PER_PRODUCER + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut count = 0usize;
                let mut batch = Vec::new();
                while let Dequeue::Item(n) = q.drain_batch(&mut batch, 16) {
                    count += n;
                    batch.clear();
                }
                count
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, PRODUCERS * PER_PRODUCER);
        assert_eq!(q.total_enqueued(), PRODUCERS * PER_PRODUCER);
        assert_eq!(q.total_dequeued(), PRODUCERS * PER_PRODUCER);
    }
}
