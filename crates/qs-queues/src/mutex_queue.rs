//! A naive lock-based MPMC queue.
//!
//! This is the queue the *unoptimised* SCOOP runtime (configuration "None" in
//! §4) uses for its single request queue, and the baseline in the queue
//! ablation benchmark (E9): every operation takes a mutex and blocking uses a
//! condition variable, so each handoff pays at least one lock round-trip and
//! usually an OS wake-up.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::{Closed, Dequeue};

/// A mutex+condvar protected FIFO queue with a close protocol.
///
/// ```
/// use qs_queues::{MutexQueue, Dequeue};
/// let q = MutexQueue::new();
/// q.enqueue(3);
/// assert_eq!(q.dequeue(), Dequeue::Item(3));
/// q.close();
/// assert_eq!(q.dequeue(), Dequeue::Closed);
/// ```
#[derive(Debug)]
pub struct MutexQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    enqueued: usize,
    dequeued: usize,
}

impl<T> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MutexQueue<T> {
    /// Creates an empty, open queue.
    pub fn new() -> Self {
        MutexQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                enqueued: 0,
                dequeued: 0,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Appends `value` to the queue.
    pub fn enqueue(&self, value: T) {
        let mut inner = self.inner.lock().unwrap();
        inner.items.push_back(value);
        inner.enqueued += 1;
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Closes the queue; consumers observe [`Dequeue::Closed`] after draining.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Returns `true` once the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Returns `true` if no items are currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of enqueue operations so far.
    pub fn total_enqueued(&self) -> usize {
        self.inner.lock().unwrap().enqueued
    }

    /// Total number of successful dequeues so far.
    pub fn total_dequeued(&self) -> usize {
        self.inner.lock().unwrap().dequeued
    }

    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(Some(v))` for an item, `Ok(None)` if currently empty but
    /// open, `Err(Closed)` if closed and drained.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.items.pop_front() {
            inner.dequeued += 1;
            Ok(Some(v))
        } else if inner.closed {
            Err(Closed)
        } else {
            Ok(None)
        }
    }

    /// Dequeues the next item, blocking while the queue is empty but open.
    pub fn dequeue(&self) -> Dequeue<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.items.pop_front() {
                inner.dequeued += 1;
                return Dequeue::Item(v);
            }
            if inner.closed {
                return Dequeue::Closed;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = MutexQueue::new();
        q.enqueue(1);
        q.enqueue(2);
        q.enqueue(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeue(), Dequeue::Item(1));
        assert_eq!(q.dequeue(), Dequeue::Item(2));
        assert_eq!(q.dequeue(), Dequeue::Item(3));
        assert!(q.is_empty());
    }

    #[test]
    fn try_dequeue_distinguishes_empty_and_closed() {
        let q = MutexQueue::<i32>::new();
        assert_eq!(q.try_dequeue(), Ok(None));
        q.close();
        assert_eq!(q.try_dequeue(), Err(Closed));
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_dequeue_wakes_on_enqueue_and_close() {
        let q = Arc::new(MutexQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || (q2.dequeue(), q2.dequeue()));
        thread::sleep(std::time::Duration::from_millis(20));
        q.enqueue(7);
        q.close();
        assert_eq!(t.join().unwrap(), (Dequeue::Item(7), Dequeue::Closed));
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let q = Arc::new(MutexQueue::new());
        let mut producers = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    q.enqueue(p * PER_PRODUCER + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut count = 0usize;
                while let Dequeue::Item(_) = q.dequeue() {
                    count += 1;
                }
                count
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, PRODUCERS * PER_PRODUCER);
        assert_eq!(q.total_enqueued(), PRODUCERS * PER_PRODUCER);
        assert_eq!(q.total_dequeued(), PRODUCERS * PER_PRODUCER);
    }
}
