//! The *mailbox*: one client's private queue, bounded or unbounded.
//!
//! The runtime threads a `mailbox_capacity` knob through its configuration;
//! this module gives it a single producer/consumer pair that dispatches to
//! the unbounded segment-list queue ([`crate::spsc`], the paper's §3.1
//! structure) or to the capacity-bounded ring ([`crate::bounded`], the
//! backpressure variant) depending on that knob.  Both sides expose the
//! batch-draining consumer interface, so the handler main loop is written
//! once against mailboxes and never matches on the configuration again.

use std::sync::Arc;

use crate::bounded::{bounded_spsc_channel, BoundedSpscConsumer, BoundedSpscProducer, Full};
use crate::spsc::{spsc_channel, SpscConsumer, SpscProducer};
use crate::{BlockWatcher, Closed, Dequeue, WakeHook, WakeReason};

/// The two underlying queue flavours of a mailbox producer.
enum ProducerFlavour<T> {
    /// Unbounded private queue (the seed behaviour; `capacity = None`).
    Unbounded(SpscProducer<T>),
    /// Capacity-bounded ring with blocking-push backpressure.
    Bounded(BoundedSpscProducer<T>),
}

/// Producer (client) half of a mailbox.
pub struct MailboxProducer<T> {
    flavour: ProducerFlavour<T>,
    /// Optional consumer-wake hook; see [`WakeHook`].  Carried by the
    /// producer (rather than the shared queue) because a mailbox's consumer
    /// scheduler is known at creation time — the client building the mailbox
    /// copies the hook from the handler it is reserving.
    wake_hook: Option<WakeHook>,
}

/// Consumer (handler) half of a mailbox.
pub enum MailboxConsumer<T> {
    /// Unbounded private queue (the seed behaviour; `capacity = None`).
    Unbounded(SpscConsumer<T>),
    /// Capacity-bounded ring with blocking-push backpressure.
    Bounded(BoundedSpscConsumer<T>),
}

/// Creates a mailbox: unbounded when `capacity` is `None`, a bounded ring
/// otherwise.
///
/// # Panics
///
/// Panics if `capacity` is `Some(0)`.
pub fn mailbox<T>(capacity: Option<usize>) -> (MailboxProducer<T>, MailboxConsumer<T>) {
    let (flavour, consumer) = match capacity {
        None => {
            let (tx, rx) = spsc_channel();
            (
                ProducerFlavour::Unbounded(tx),
                MailboxConsumer::Unbounded(rx),
            )
        }
        Some(capacity) => {
            let (tx, rx) = bounded_spsc_channel(capacity);
            (ProducerFlavour::Bounded(tx), MailboxConsumer::Bounded(rx))
        }
    };
    (
        MailboxProducer {
            flavour,
            wake_hook: None,
        },
        consumer,
    )
}

impl<T> MailboxProducer<T> {
    /// Attaches a consumer-wake hook, invoked after every enqueue and on
    /// close.  Used by M:N scheduled consumers that poll the mailbox instead
    /// of blocking inside it.
    pub fn with_wake_hook(mut self, hook: WakeHook) -> Self {
        self.wake_hook = Some(hook);
        self
    }

    fn invoke_wake_hook(&self, reason: WakeReason) {
        if let Some(hook) = &self.wake_hook {
            hook(reason);
        }
    }

    /// The [`WakeReason`] for a completed push: a bounded mailbox that had
    /// to block for space, or sits at/past its half-full watermark after the
    /// push, reports [`WakeReason::Pressure`].
    fn push_reason(&self, stalled: bool) -> WakeReason {
        match &self.flavour {
            ProducerFlavour::Unbounded(_) => WakeReason::Enqueue,
            ProducerFlavour::Bounded(tx) => {
                if stalled || tx.queue().is_pressured() {
                    WakeReason::Pressure
                } else {
                    WakeReason::Enqueue
                }
            }
        }
    }

    /// Enqueues `value`, blocking for space when the mailbox is bounded and
    /// full.  Returns `true` if the enqueue had to wait (a backpressure
    /// stall); an unbounded mailbox never stalls.
    pub fn enqueue(&self, value: T) -> bool {
        let stalled = match &self.flavour {
            ProducerFlavour::Unbounded(tx) => {
                tx.enqueue(value);
                false
            }
            ProducerFlavour::Bounded(tx) => tx.push(value),
        };
        self.invoke_wake_hook(self.push_reason(stalled));
        stalled
    }

    /// [`enqueue`](Self::enqueue) under a [`BlockWatcher`]: the watcher
    /// observes the blocking interval of a bounded mailbox and may abort the
    /// wait, in which case the value is handed back in `Err` without having
    /// been enqueued.  Unbounded mailboxes never block, never consult the
    /// watcher, and never fail.
    pub fn enqueue_watched(&self, value: T, watcher: &dyn BlockWatcher) -> Result<bool, T> {
        let stalled = match &self.flavour {
            ProducerFlavour::Unbounded(tx) => {
                tx.enqueue(value);
                false
            }
            ProducerFlavour::Bounded(tx) => match tx.push_watched(value, watcher) {
                Ok(stalled) => stalled,
                Err(Full(value)) => return Err(value),
            },
        };
        self.invoke_wake_hook(self.push_reason(stalled));
        Ok(stalled)
    }

    /// Attempts to enqueue without blocking; hands `value` back when a
    /// bounded mailbox is at capacity.  Never fails on an unbounded mailbox.
    pub fn try_enqueue(&self, value: T) -> Result<(), T> {
        let result = match &self.flavour {
            ProducerFlavour::Unbounded(tx) => {
                tx.enqueue(value);
                Ok(())
            }
            ProducerFlavour::Bounded(tx) => tx.try_push(value).map_err(|full| full.0),
        };
        if result.is_ok() {
            self.invoke_wake_hook(self.push_reason(false));
        }
        result
    }

    /// Closes the mailbox (the END marker of a separate block).
    pub fn close(&self) {
        match &self.flavour {
            ProducerFlavour::Unbounded(tx) => tx.close(),
            ProducerFlavour::Bounded(tx) => tx.close(),
        }
        self.invoke_wake_hook(WakeReason::Close);
    }

    /// The capacity bound, or `None` if unbounded.
    pub fn capacity(&self) -> Option<usize> {
        match &self.flavour {
            ProducerFlavour::Unbounded(_) => None,
            ProducerFlavour::Bounded(tx) => Some(tx.queue().capacity()),
        }
    }

    /// Number of blocking enqueues that had to wait for space so far.
    pub fn total_stalls(&self) -> usize {
        match &self.flavour {
            ProducerFlavour::Unbounded(_) => 0,
            ProducerFlavour::Bounded(tx) => tx.queue().total_stalls(),
        }
    }
}

impl<T: Send + 'static> MailboxProducer<T> {
    /// A detached handle that wakes this producer if it is blocked in a
    /// bounded [`enqueue`](Self::enqueue) /
    /// [`enqueue_watched`](Self::enqueue_watched); `None` for unbounded
    /// mailboxes, which never block.  See
    /// [`BoundedSpscProducer::unblocker`].
    pub fn unblocker(&self) -> Option<Arc<dyn Fn() + Send + Sync>> {
        match &self.flavour {
            ProducerFlavour::Unbounded(_) => None,
            ProducerFlavour::Bounded(tx) => Some(tx.unblocker()),
        }
    }

    /// A detached probe answering "is this mailbox currently full?"; `None`
    /// for unbounded mailboxes.  The deadlock detector uses it to
    /// re-validate a registered blocked-push edge at scan time.
    pub fn full_probe(&self) -> Option<Arc<dyn Fn() -> bool + Send + Sync>> {
        match &self.flavour {
            ProducerFlavour::Unbounded(_) => None,
            ProducerFlavour::Bounded(tx) => Some(tx.full_probe()),
        }
    }
}

impl<T> MailboxConsumer<T> {
    /// Attempts to dequeue one item without blocking.
    pub fn try_dequeue(&self) -> Result<Option<T>, Closed> {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.try_dequeue(),
            MailboxConsumer::Bounded(rx) => rx.try_dequeue(),
        }
    }

    /// Dequeues the next item, blocking while the mailbox is empty but open.
    pub fn dequeue(&self) -> Dequeue<T> {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.dequeue(),
            MailboxConsumer::Bounded(rx) => rx.dequeue(),
        }
    }

    /// Drains up to `max` immediately available items into `out` without
    /// blocking; `Err(Closed)` once closed and fully drained.
    pub fn try_drain_batch(&self, out: &mut Vec<T>, max: usize) -> Result<usize, Closed> {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.try_drain_batch(out, max),
            MailboxConsumer::Bounded(rx) => rx.try_drain_batch(out, max),
        }
    }

    /// Drains a batch of up to `max` items into `out`, blocking until at
    /// least one item is available or the mailbox is closed and drained.
    pub fn drain_batch(&self, out: &mut Vec<T>, max: usize) -> Dequeue<usize> {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.drain_batch(out, max),
            MailboxConsumer::Bounded(rx) => rx.drain_batch(out, max),
        }
    }

    /// Number of items ever enqueued into this mailbox.
    pub fn total_enqueued(&self) -> usize {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.queue().total_enqueued(),
            MailboxConsumer::Bounded(rx) => rx.queue().total_enqueued(),
        }
    }

    /// Number of items ever dequeued from this mailbox.
    pub fn total_dequeued(&self) -> usize {
        match self {
            MailboxConsumer::Unbounded(rx) => rx.queue().total_dequeued(),
            MailboxConsumer::Bounded(rx) => rx.queue().total_dequeued(),
        }
    }

    /// Returns `true` while a bounded mailbox sits at or past its half-full
    /// watermark (see [`WakeReason::Pressure`]).  An unbounded mailbox is
    /// never pressured.
    pub fn is_pressured(&self) -> bool {
        match self {
            MailboxConsumer::Unbounded(_) => false,
            MailboxConsumer::Bounded(rx) => rx.queue().is_pressured(),
        }
    }

    /// Number of blocking enqueues into this mailbox that had to wait for
    /// space so far.  Always zero for an unbounded mailbox.
    pub fn total_stalls(&self) -> usize {
        match self {
            MailboxConsumer::Unbounded(_) => 0,
            MailboxConsumer::Bounded(rx) => rx.queue().total_stalls(),
        }
    }
}

impl<T: Send + 'static> MailboxConsumer<T> {
    /// A detached probe answering "is this mailbox still open and empty?" —
    /// the liveness condition of a consumer *parked on* it.
    ///
    /// The deadlock detector attaches it to the handler's "parked on this
    /// client's open queue" (Serving) wait-for edge: the moment the client
    /// enqueues something or ends its block, the probe goes false and a
    /// stale edge (registered at the idle transition, not yet cleared
    /// because the woken consumer is still waiting for a worker) cannot
    /// complete a phantom cycle.
    pub fn serving_probe(&self) -> Arc<dyn Fn() -> bool + Send + Sync> {
        match self {
            MailboxConsumer::Unbounded(rx) => {
                let queue = rx.shared();
                Arc::new(move || {
                    !queue.is_closed() && queue.total_dequeued() == queue.total_enqueued()
                })
            }
            MailboxConsumer::Bounded(rx) => {
                let queue = rx.shared();
                Arc::new(move || !queue.is_closed() && queue.is_empty())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_mailbox_never_stalls() {
        let (tx, rx) = mailbox(None);
        assert_eq!(tx.capacity(), None);
        for i in 0..1_000 {
            assert!(!tx.enqueue(i));
        }
        assert_eq!(tx.total_stalls(), 0);
        tx.close();
        let mut out = Vec::new();
        while let Dequeue::Item(_) = rx.drain_batch(&mut out, 64) {}
        assert_eq!(out, (0..1_000).collect::<Vec<_>>());
        assert_eq!(rx.total_dequeued(), 1_000);
    }

    #[test]
    fn bounded_mailbox_enforces_capacity() {
        let (tx, rx) = mailbox(Some(3));
        assert_eq!(tx.capacity(), Some(3));
        tx.try_enqueue(1).unwrap();
        tx.try_enqueue(2).unwrap();
        tx.try_enqueue(3).unwrap();
        assert_eq!(tx.try_enqueue(4), Err(4));
        assert_eq!(rx.try_dequeue(), Ok(Some(1)));
        tx.try_enqueue(4).unwrap();
        tx.close();
        let mut out = Vec::new();
        while let Dequeue::Item(_) = rx.drain_batch(&mut out, 2) {}
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn both_flavours_share_the_dequeue_protocol() {
        for capacity in [None, Some(2)] {
            let (tx, rx) = mailbox(capacity);
            tx.enqueue('x');
            tx.close();
            assert_eq!(rx.dequeue(), Dequeue::Item('x'));
            assert_eq!(rx.dequeue(), Dequeue::Closed);
            assert_eq!(rx.total_enqueued(), 1);
        }
    }

    #[test]
    fn bounded_wake_hook_reports_pressure_at_the_watermark() {
        use crate::WakeReason;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let reasons: Arc<std::sync::Mutex<Vec<WakeReason>>> = Arc::default();
        let sink = Arc::clone(&reasons);
        let (tx, rx) = mailbox::<u32>(Some(4));
        let tx = tx.with_wake_hook(Arc::new(move |reason| sink.lock().unwrap().push(reason)));
        // 1 of 4: below the half-full watermark.
        tx.enqueue(1);
        // 2..4 of 4: at or past it.
        tx.enqueue(2);
        tx.try_enqueue(3).unwrap();
        tx.enqueue(4);
        tx.close();
        assert!(rx.is_pressured(), "full ring is pressured");
        assert_eq!(
            *reasons.lock().unwrap(),
            vec![
                WakeReason::Enqueue,
                WakeReason::Pressure,
                WakeReason::Pressure,
                WakeReason::Pressure,
                WakeReason::Close,
            ]
        );
        // Draining below the watermark clears the consumer-visible signal.
        rx.try_dequeue().unwrap();
        rx.try_dequeue().unwrap();
        rx.try_dequeue().unwrap();
        assert!(!rx.is_pressured());
        assert_eq!(rx.total_stalls(), 0, "no push ever blocked");

        // A blocked push reports pressure (and the stall) even though the
        // ring is briefly below the watermark when it completes.
        let stalls = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mailbox::<u32>(Some(1));
        let observed = Arc::clone(&stalls);
        let tx = tx.with_wake_hook(Arc::new(move |reason| {
            if reason == WakeReason::Pressure {
                observed.fetch_add(1, Ordering::SeqCst);
            }
        }));
        tx.enqueue(1); // capacity 1: immediately at the watermark
        let producer = std::thread::spawn(move || assert!(tx.enqueue(2), "push must stall"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.try_dequeue(), Ok(Some(1)));
        producer.join().unwrap();
        assert!(rx.total_stalls() >= 1);
        assert!(stalls.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn unbounded_wake_hook_never_reports_pressure() {
        use crate::WakeReason;
        use std::sync::Arc;

        let reasons: Arc<std::sync::Mutex<Vec<WakeReason>>> = Arc::default();
        let sink = Arc::clone(&reasons);
        let (tx, rx) = mailbox::<u32>(None);
        let tx = tx.with_wake_hook(Arc::new(move |reason| sink.lock().unwrap().push(reason)));
        for i in 0..100 {
            tx.enqueue(i);
        }
        tx.close();
        assert!(!rx.is_pressured());
        assert_eq!(rx.total_stalls(), 0);
        let reasons = reasons.lock().unwrap();
        assert_eq!(reasons.len(), 101);
        assert!(reasons[..100].iter().all(|r| *r == WakeReason::Enqueue));
        assert_eq!(reasons[100], WakeReason::Close);
    }
}
