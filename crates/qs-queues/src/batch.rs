//! Shared batch-draining loops.
//!
//! Every consumer flavour (unbounded SPSC, bounded ring, mutex queue) offers
//! the same two operations — a non-blocking `try_drain_batch` and a blocking
//! `drain_batch` — with identical semantics: draining a batch observes
//! exactly the items that repeated single dequeues would have, in the same
//! order.  The loops live here once so a fix (e.g. to the close protocol or
//! the spin-then-park policy) cannot drift between flavours.

use qs_sync::Backoff;

use crate::{Closed, Dequeue};

/// Drains up to `max` immediately available items into `out` via repeated
/// `try_dequeue`, stopping at the first empty/closed observation.  Returns
/// the number of items appended, or [`Closed`] only when the queue is closed
/// and `out` received nothing.
pub(crate) fn try_drain_with<T>(
    out: &mut Vec<T>,
    max: usize,
    mut try_dequeue: impl FnMut() -> Result<Option<T>, Closed>,
) -> Result<usize, Closed> {
    let mut drained = 0;
    while drained < max {
        match try_dequeue() {
            Ok(Some(v)) => {
                out.push(v);
                drained += 1;
            }
            Ok(None) => break,
            Err(Closed) => {
                if drained == 0 {
                    return Err(Closed);
                }
                break;
            }
        }
    }
    Ok(drained)
}

/// The blocking drain loop: spin-then-park (via `park`) until `try_drain`
/// yields at least one item (`Dequeue::Item(n)`, `n >= 1`) or reports the
/// queue closed and drained ([`Dequeue::Closed`]).
pub(crate) fn drain_batch_with<T>(
    out: &mut Vec<T>,
    max: usize,
    mut try_drain: impl FnMut(&mut Vec<T>, usize) -> Result<usize, Closed>,
    mut park: impl FnMut(),
) -> Dequeue<usize> {
    let max = max.max(1);
    let backoff = Backoff::new();
    loop {
        match try_drain(out, max) {
            Err(Closed) => return Dequeue::Closed,
            Ok(0) => {
                if backoff.is_completed() {
                    park();
                    backoff.reset();
                } else {
                    backoff.snooze();
                }
            }
            Ok(n) => return Dequeue::Item(n),
        }
    }
}
