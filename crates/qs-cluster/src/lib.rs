//! # qs-cluster — multi-node SCOOP/Qs over real sockets
//!
//! The distributed layer the paper's §7 points at: private queues carried by
//! sockets, handlers sharded across node *processes*.  `qs-remote` provides
//! the substrate (frames, socket transport, block guards); this crate adds
//! what a multi-node service needs on top:
//!
//! * [`ring`] — consistent-hash placement: `handler id → node`, with
//!   virtual nodes for balance and minimal movement on join/leave;
//! * [`server`] — the node process: a socket front-end over a pooled
//!   [`qs_runtime::Runtime`], hosting one runtime handler per service
//!   handler id (spawned lazily), multiplexing any number of separate
//!   blocks per connection and Nack-ing blocks for handlers it does not
//!   own;
//! * [`client`] — the routing client: same ring, pooled connections,
//!   bounded response waits so dead nodes surface
//!   [`qs_remote::RemoteError::Timeout`] instead of hanging;
//! * [`bank`] — the demo service (one account handler per user) used by
//!   `examples/bank_cluster.rs` and the `run_experiments remote` sweep.
//!
//! ## Example (in-process, two nodes)
//!
//! ```
//! use qs_cluster::{bank_service, ClusterClient, NodeConfig, NodeServer};
//! use qs_remote::{NodeAddr, WireValue};
//!
//! let a = NodeServer::start(bank_service(), NodeConfig::at(NodeAddr::parse("tcp:127.0.0.1:0").unwrap())).unwrap();
//! let b = NodeServer::start(bank_service(), NodeConfig::at(NodeAddr::parse("tcp:127.0.0.1:0").unwrap())).unwrap();
//! let client = ClusterClient::new("quickstart", &[]);
//! client.set_ring(&[a.addr().clone(), b.addr().clone()]).unwrap();
//! for user in 0..100u64 {
//!     client.separate(user, |s| {
//!         s.call("deposit", vec![WireValue::Int(user as i64)]).unwrap();
//!         assert_eq!(s.query("balance", vec![]).unwrap(), WireValue::Int(user as i64));
//!     }).unwrap();
//! }
//! client.shutdown_cluster();
//! ```
//!
//! The same protocol runs across OS processes — see
//! `examples/bank_cluster.rs`, which spawns N node processes and drives
//! them over loopback TCP and Unix sockets.

#![warn(missing_docs)]

pub mod bank;
pub mod client;
pub mod ring;
pub mod server;

pub use bank::{bank_registry, bank_service, Account};
pub use client::ClusterClient;
pub use ring::HashRing;
pub use server::{ClusterService, NodeConfig, NodeServer};
