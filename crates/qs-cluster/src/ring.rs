//! Consistent-hash placement: which node owns which handler.
//!
//! Handlers are sharded across node processes by id.  A plain
//! `handler % nodes` mapping would reshuffle almost every handler whenever a
//! node joins or leaves; the classic consistent-hash ring moves only the
//! handlers that land on the changed node (~`1/N` of them).  Each node is
//! inserted at `replicas` pseudo-random points ("virtual nodes") so the load
//! split stays close to uniform even with a handful of physical nodes.
//!
//! Both the [`crate::ClusterClient`] (to route blocks) and every
//! [`crate::NodeServer`] (to refuse blocks for handlers it does not own)
//! hold a ring; join/leave control messages keep them in agreement.

use std::collections::{BTreeMap, BTreeSet};

/// Default number of virtual nodes per physical node.  High enough that
/// even a two-node ring splits the handler space within a few percent of
/// evenly (one ring point is ~16 bytes, so the memory cost is noise).
pub const DEFAULT_REPLICAS: usize = 256;

/// A consistent-hash ring mapping handler ids to node names.
///
/// Node names are opaque strings; the cluster uses the textual address
/// (`tcp:HOST:PORT` / `unix:PATH`) so the route is directly dialable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    replicas: usize,
    points: BTreeMap<u64, String>,
    nodes: BTreeSet<String>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual nodes per physical node.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> HashRing {
        assert!(replicas > 0, "a ring needs at least one point per node");
        HashRing {
            replicas,
            points: BTreeMap::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// Builds a ring over `nodes` with [`DEFAULT_REPLICAS`] virtual nodes.
    pub fn with_nodes<I, S>(nodes: I) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ring = HashRing::new(DEFAULT_REPLICAS);
        for node in nodes {
            ring.add(node.as_ref());
        }
        ring
    }

    /// Adds a node; returns `false` if it was already a member.
    pub fn add(&mut self, node: &str) -> bool {
        if !self.nodes.insert(node.to_string()) {
            return false;
        }
        for replica in 0..self.replicas {
            self.points
                .insert(point_hash(node, replica), node.to_string());
        }
        true
    }

    /// Removes a node; returns `false` if it was not a member.
    pub fn remove(&mut self, node: &str) -> bool {
        if !self.nodes.remove(node) {
            return false;
        }
        for replica in 0..self.replicas {
            self.points.remove(&point_hash(node, replica));
        }
        true
    }

    /// The node owning `handler`: the first ring point at or after the
    /// handler's hash, wrapping around.  `None` on an empty ring.
    pub fn route(&self, handler: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(handler);
        self.points
            .range(hash..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, node)| node.as_str())
    }

    /// Whether `node` is a ring member.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.contains(node)
    }

    /// The member nodes, sorted.
    pub fn nodes(&self) -> Vec<&str> {
        self.nodes.iter().map(String::as_str).collect()
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The ring point of one virtual node: FNV-1a over the node name plus the
/// replica index, finished with a splitmix64 scramble.  Plain FNV-1a has
/// weak high-bit avalanche for strings differing in one late character
/// (node addresses usually do: `…-0.sock` vs `…-1.sock`), which showed up
/// as 98/2 load splits; the finalizer restores uniformity.
fn point_hash(node: &str, replica: usize) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in node.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    for byte in (replica as u64).to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    splitmix64(hash)
}

/// splitmix64: scrambles sequential handler ids (0, 1, 2, …) into uniform
/// ring positions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_nodes() -> HashRing {
        HashRing::with_nodes([
            "tcp:10.0.0.1:7101",
            "tcp:10.0.0.2:7101",
            "tcp:10.0.0.3:7101",
            "tcp:10.0.0.4:7101",
        ])
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = four_nodes();
        for handler in 0..10_000u64 {
            let a = ring.route(handler).unwrap().to_string();
            let b = ring.route(handler).unwrap().to_string();
            assert_eq!(a, b);
            assert!(ring.contains(&a));
        }
    }

    #[test]
    fn load_splits_roughly_evenly() {
        let ring = four_nodes();
        let mut counts = std::collections::HashMap::<String, usize>::new();
        let total = 40_000u64;
        for handler in 0..total {
            *counts
                .entry(ring.route(handler).unwrap().to_string())
                .or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every node should receive handlers");
        let ideal = total as usize / 4;
        for (node, count) in &counts {
            assert!(
                *count > ideal / 2 && *count < ideal * 2,
                "node {node} got {count} of {total} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_removed_nodes_handlers() {
        let mut ring = four_nodes();
        let before: Vec<String> = (0..10_000u64)
            .map(|h| ring.route(h).unwrap().to_string())
            .collect();
        let removed = "tcp:10.0.0.3:7101";
        ring.remove(removed);
        let mut moved_from_other_nodes = 0;
        for (handler, old) in before.iter().enumerate() {
            let new = ring.route(handler as u64).unwrap();
            if old != removed {
                assert_eq!(new, old, "handler {handler} moved although its node stayed");
            } else if new != old {
                moved_from_other_nodes += 1;
            }
        }
        assert!(
            moved_from_other_nodes > 0,
            "the removed node's handlers moved"
        );
    }

    #[test]
    fn join_is_idempotent_and_membership_is_reported() {
        let mut ring = HashRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.route(7), None);
        assert!(ring.add("a"));
        assert!(!ring.add("a"), "double join is a no-op");
        assert!(ring.add("b"));
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.nodes(), vec!["a", "b"]);
        assert!(!ring.remove("c"));
        assert!(ring.remove("b"));
        assert_eq!(
            ring.route(7),
            Some("a"),
            "all handlers land on the last node"
        );
    }
}
