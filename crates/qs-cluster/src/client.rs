//! The client side: consistent-hash routing plus pooled connections.
//!
//! A [`ClusterClient`] holds the same [`HashRing`] as the nodes and routes
//! every separate block to the node owning the target handler.  Connections
//! are dialled lazily, kept in a small per-node pool, and multiplexed: one
//! connection carries many blocks in sequence (`Open … End`, then the next
//! `Open`).  A connection whose block failed — timeout, disconnect,
//! malformed or refused response — is dropped instead of returned to the
//! pool, because a timed-out socket stream may be desynchronised
//! ([`RemoteSeparate::is_failed`]).

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;
use qs_remote::transport::NodeAddr;
use qs_remote::wire::{Frame, WireValue, WIRE_VERSION};
use qs_remote::{ByteReceiver, ByteSender, RecvError, RemoteError, RemoteSeparate};

use crate::ring::HashRing;

/// How many idle connections the client keeps per node.
const POOLED_PER_NODE: usize = 4;

struct Conn {
    requests: ByteSender,
    responses: ByteReceiver,
}

/// A routing client for a cluster service.
pub struct ClusterClient {
    client: String,
    ring: Mutex<HashRing>,
    pool: Mutex<HashMap<String, Vec<Conn>>>,
    response_timeout: Option<Duration>,
}

impl ClusterClient {
    /// Creates a client routing across `nodes` (dialled lazily).
    pub fn new(client: &str, nodes: &[NodeAddr]) -> ClusterClient {
        ClusterClient {
            client: client.to_string(),
            ring: Mutex::new(HashRing::with_nodes(nodes.iter().map(|n| n.to_string()))),
            pool: Mutex::new(HashMap::new()),
            response_timeout: None,
        }
    }

    /// Bounds every response wait (query/sync/control), so a dead node
    /// surfaces [`RemoteError::Timeout`] instead of hanging the client.
    pub fn with_response_timeout(mut self, timeout: Duration) -> ClusterClient {
        self.response_timeout = Some(timeout);
        self
    }

    /// The node currently owning `handler`.
    pub fn route(&self, handler: u64) -> Option<String> {
        self.ring.lock().route(handler).map(str::to_string)
    }

    /// The member nodes, sorted.
    pub fn nodes(&self) -> Vec<String> {
        self.ring
            .lock()
            .nodes()
            .iter()
            .map(|n| n.to_string())
            .collect()
    }

    fn checkout(&self, node: &str) -> Option<Conn> {
        self.pool.lock().get_mut(node)?.pop()
    }

    fn give_back(&self, node: &str, conn: Conn) {
        let mut pool = self.pool.lock();
        let conns = pool.entry(node.to_string()).or_default();
        if conns.len() < POOLED_PER_NODE {
            conns.push(conn);
        }
    }

    fn dial(&self, node: &str) -> Result<Conn, RemoteError> {
        let addr = NodeAddr::parse(node).map_err(RemoteError::Protocol)?;
        let (requests, responses) = addr.connect().map_err(|_| RemoteError::Disconnected)?;
        requests
            .send_frame(&Frame::Hello {
                version: WIRE_VERSION,
                client: self.client.clone(),
            })
            .map_err(|_| RemoteError::Disconnected)?;
        Ok(Conn {
            requests,
            responses,
        })
    }

    /// A connection to `node` with the `Open{handler}` (or none for
    /// controls) already sent: a pooled connection whose first send
    /// succeeds, else one fresh dial.  The single retry absorbs pooled
    /// connections that died while idle.
    fn conn_with_prologue(
        &self,
        node: &str,
        prologue: Option<&Frame>,
    ) -> Result<Conn, RemoteError> {
        if let Some(conn) = self.checkout(node) {
            match prologue {
                Some(frame) if conn.requests.send_frame(frame).is_err() => {}
                _ => return Ok(conn),
            }
        }
        let conn = self.dial(node)?;
        if let Some(frame) = prologue {
            conn.requests
                .send_frame(frame)
                .map_err(|_| RemoteError::Disconnected)?;
        }
        Ok(conn)
    }

    /// Opens a separate block against `handler`, routed to its owning node.
    pub fn separate<R>(
        &self,
        handler: u64,
        body: impl FnOnce(&mut RemoteSeparate) -> R,
    ) -> Result<R, RemoteError> {
        let node = self
            .route(handler)
            .ok_or_else(|| RemoteError::Protocol("cluster has no nodes".to_string()))?;
        let conn = self.conn_with_prologue(&node, Some(&Frame::Open { handler }))?;
        let mut guard = RemoteSeparate::over(
            conn.requests.clone(),
            conn.responses.clone(),
            self.response_timeout,
        );
        let result = body(&mut guard);
        guard.end();
        if !guard.is_failed() {
            self.give_back(&node, conn);
        }
        Ok(result)
    }

    /// Fire-and-forget convenience: one asynchronous call in its own block.
    pub fn call(
        &self,
        handler: u64,
        method: &str,
        args: Vec<WireValue>,
    ) -> Result<(), RemoteError> {
        self.separate(handler, |s| s.call(method, args))?
    }

    /// Convenience: one query in its own block.
    pub fn query(
        &self,
        handler: u64,
        method: &str,
        args: Vec<WireValue>,
    ) -> Result<WireValue, RemoteError> {
        self.separate(handler, |s| s.query(method, args))?
    }

    /// Sends one management operation to `node` and awaits its result.
    pub fn control(
        &self,
        node: &str,
        op: &str,
        args: Vec<WireValue>,
    ) -> Result<WireValue, RemoteError> {
        let conn = self.conn_with_prologue(
            node,
            Some(&Frame::Control {
                op: op.to_string(),
                args,
            }),
        )?;
        match conn.responses.recv_frame_timeout(self.response_timeout) {
            Ok(Frame::ControlResult { result }) => {
                // A node answering `shutdown` closes the connection next;
                // pooling it would hand a dead connection to the next block.
                if op != "shutdown" {
                    self.give_back(node, conn);
                }
                result.map_err(RemoteError::Application)
            }
            Ok(Frame::Nack { message }) => Err(RemoteError::Protocol(message)),
            Ok(other) => Err(RemoteError::Protocol(format!(
                "expected ControlResult, received {other:?}"
            ))),
            Err(RecvError::TimedOut) => Err(RemoteError::Timeout),
            Err(_) => Err(RemoteError::Disconnected),
        }
    }

    /// Distributes the full ring membership: updates the local ring and
    /// sends the `ring` control op to every member, so client and nodes
    /// agree on placement.  This is the bootstrap step after every node
    /// process has reported its bound address.
    pub fn set_ring(&self, nodes: &[NodeAddr]) -> Result<(), RemoteError> {
        let members: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        *self.ring.lock() = HashRing::with_nodes(&members);
        let args: Vec<WireValue> = members.iter().map(|m| WireValue::Str(m.clone())).collect();
        for member in &members {
            self.control(member, "ring", args.clone())?;
        }
        Ok(())
    }

    /// Adds a node: tells every current member (and the newcomer) about the
    /// join, then updates the local ring.
    pub fn add_node(&self, node: &NodeAddr) -> Result<(), RemoteError> {
        let name = node.to_string();
        let mut members = self.nodes();
        if !members.contains(&name) {
            members.push(name.clone());
        }
        for member in &members {
            if member == &name {
                // The newcomer gets the whole membership, not just itself.
                let args = members.iter().map(|m| WireValue::Str(m.clone())).collect();
                self.control(member, "ring", args)?;
            } else {
                self.control(member, "join", vec![WireValue::Str(name.clone())])?;
            }
        }
        self.ring.lock().add(&name);
        Ok(())
    }

    /// Removes a node from the ring (remaining members are told; the node
    /// itself may already be dead, which is fine).
    pub fn remove_node(&self, node: &NodeAddr) -> Result<(), RemoteError> {
        let name = node.to_string();
        self.ring.lock().remove(&name);
        self.pool.lock().remove(&name);
        for member in self.nodes() {
            self.control(&member, "leave", vec![WireValue::Str(name.clone())])?;
        }
        Ok(())
    }

    /// Sends `shutdown` to every member node (best-effort: nodes that are
    /// already gone are skipped).
    pub fn shutdown_cluster(&self) {
        for member in self.nodes() {
            let _ = self.control(&member, "shutdown", vec![]);
        }
    }
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("client", &self.client)
            .field("nodes", &self.nodes())
            .finish()
    }
}
