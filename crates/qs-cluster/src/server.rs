//! The node process: a socket front-end over a pooled SCOOP/Qs runtime.
//!
//! A [`NodeServer`] is one shard of a cluster service.  It owns a
//! [`qs_runtime::Runtime`] (M:N pooled scheduling — tens of thousands of
//! idle handlers cost a few worker threads, PR 3's result) and hosts one
//! runtime handler per *service handler id* that clients open blocks
//! against.  Handlers are spawned lazily on first use; their state comes
//! from the service's factory.
//!
//! Each accepted connection gets a protocol-adapter thread translating wire
//! frames into runtime operations:
//!
//! ```text
//! Hello                — once per connection (version check)
//! Open{handler}        — begin a separate block against one handler
//!   Call/Query/Sync…   — the block body (Fig. 8 over the wire)
//! End                  — end the block; next Open may follow
//! Control{op, args}    — out-of-block management (ping/stats/ring/…)
//! ```
//!
//! Connections are *multiplexed*: one connection carries any number of
//! blocks against any handlers this node owns, in sequence.  The block
//! itself maps onto [`qs_runtime::Handler::separate`], so the §2.2
//! reasoning guarantees (per-block order, no interleaving) are enforced by
//! the same runtime machinery as in-process code.
//!
//! Placement is checked on every `Open`: the node routes the handler id on
//! its own copy of the [`HashRing`] and answers [`Frame::Nack`] when the
//! handler belongs to a different node — a routing bug fails loudly instead
//! of silently splitting a handler's state across nodes.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use qs_remote::transport::{NodeAddr, NodeListener};
use qs_remote::wire::{Frame, WireValue, WIRE_VERSION};
use qs_remote::{ByteReceiver, ByteSender, MethodRegistry};
use qs_runtime::{Handler, Runtime, RuntimeConfig};

use crate::ring::HashRing;

/// A cluster-hosted service: a name, the methods every handler exposes, and
/// a factory producing the per-handler state (`handler id → fresh state`).
pub struct ClusterService<S> {
    name: String,
    registry: Arc<MethodRegistry<S>>,
    factory: Arc<dyn Fn(u64) -> S + Send + Sync>,
}

impl<S> Clone for ClusterService<S> {
    fn clone(&self) -> Self {
        ClusterService {
            name: self.name.clone(),
            registry: Arc::clone(&self.registry),
            factory: Arc::clone(&self.factory),
        }
    }
}

impl<S> ClusterService<S> {
    /// Bundles a service name, its method registry and its state factory.
    pub fn new(
        name: &str,
        registry: MethodRegistry<S>,
        factory: impl Fn(u64) -> S + Send + Sync + 'static,
    ) -> ClusterService<S> {
        ClusterService {
            name: name.to_string(),
            registry: Arc::new(registry),
            factory: Arc::new(factory),
        }
    }

    /// The service name (reported by the `ping` control op).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Configuration of one node process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Where to listen (`tcp:127.0.0.1:0` requests an ephemeral port; read
    /// the bound address back with [`NodeServer::addr`]).
    pub listen: NodeAddr,
    /// Initial ring membership (textual addresses).  Empty means "just
    /// myself" — a driver then distributes the full membership with the
    /// `ring` control op once every node has reported its bound address.
    pub nodes: Vec<String>,
    /// The runtime configuration handlers run under (defaults to the fully
    /// optimised pooled runtime).
    pub runtime: RuntimeConfig,
    /// Optional TCP address (`HOST:PORT`, port 0 for ephemeral) of a
    /// plain-text HTTP endpoint serving the process's metrics registry in
    /// Prometheus exposition format — scrape `http://HOST:PORT/metrics`
    /// (any path answers).  `None` (the default) starts no endpoint.
    pub metrics_listen: Option<String>,
}

impl NodeConfig {
    /// Listens on `listen` with a default runtime and a self-only ring.
    pub fn at(listen: NodeAddr) -> NodeConfig {
        NodeConfig {
            listen,
            nodes: Vec::new(),
            runtime: RuntimeConfig::default(),
            metrics_listen: None,
        }
    }

    /// Enables the HTTP metrics endpoint on `addr` (builder form).
    pub fn with_metrics_listen(mut self, addr: &str) -> NodeConfig {
        self.metrics_listen = Some(addr.to_string());
        self
    }
}

#[derive(Default)]
struct NodeServerCounters {
    connections: AtomicU64,
    blocks: AtomicU64,
    nacks: AtomicU64,
    calls: AtomicU64,
    queries: AtomicU64,
}

struct ServerShared<S: Send + 'static> {
    service: ClusterService<S>,
    self_name: String,
    self_addr: NodeAddr,
    ring: Mutex<HashRing>,
    runtime: Runtime,
    handlers: Mutex<HashMap<u64, Handler<S>>>,
    stopping: AtomicBool,
    /// Response senders of live connections; closed on stop so clients
    /// observe the node's death instead of talking to a half-dead server
    /// (the in-process analogue of a dying process closing its sockets).
    conns: Mutex<Vec<ByteSender>>,
    counters: NodeServerCounters,
    /// Bound address of the HTTP metrics endpoint, when one was requested;
    /// dialled once on stop to unblock its accept loop.
    metrics_addr: Option<std::net::SocketAddr>,
}

/// A running cluster node: listener + protocol adapters + pooled runtime.
pub struct NodeServer<S: Send + 'static> {
    shared: Arc<ServerShared<S>>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl<S: Send + 'static> NodeServer<S> {
    /// Binds the listener and starts serving `service`.
    pub fn start(service: ClusterService<S>, config: NodeConfig) -> io::Result<NodeServer<S>> {
        let listener = NodeListener::bind(&config.listen)?;
        let self_addr = listener.local_addr()?;
        let self_name = self_addr.to_string();
        let mut ring = HashRing::with_nodes(&config.nodes);
        if config.nodes.is_empty() {
            ring.add(&self_name);
        }
        let metrics_listener = config
            .metrics_listen
            .as_deref()
            .map(std::net::TcpListener::bind)
            .transpose()?;
        let metrics_addr = metrics_listener
            .as_ref()
            .map(std::net::TcpListener::local_addr)
            .transpose()?;
        let shared = Arc::new(ServerShared {
            service,
            self_name,
            self_addr,
            ring: Mutex::new(ring),
            runtime: Runtime::new(config.runtime),
            handlers: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            counters: NodeServerCounters::default(),
            metrics_addr,
        });
        if let Some(listener) = metrics_listener {
            let metrics_shared = Arc::clone(&shared);
            let _ = std::thread::Builder::new()
                .name(format!("cluster-metrics-{}", shared.self_name))
                .spawn(move || serve_metrics_http(&metrics_shared, &listener));
        }
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("cluster-accept-{}", shared.self_name))
            .spawn(move || loop {
                match listener.accept() {
                    Ok((responses, requests)) => {
                        if accept_shared.stopping.load(Ordering::Acquire) {
                            return;
                        }
                        accept_shared
                            .counters
                            .connections
                            .fetch_add(1, Ordering::Relaxed);
                        accept_shared.conns.lock().push(responses.clone());
                        let conn_shared = Arc::clone(&accept_shared);
                        let _ = std::thread::Builder::new()
                            .name(format!("cluster-conn-{}", conn_shared.self_name))
                            .spawn(move || serve_connection(&conn_shared, &requests, &responses));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn cluster accept thread");
        Ok(NodeServer {
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (ephemeral TCP ports resolved).
    pub fn addr(&self) -> &NodeAddr {
        &self.shared.self_addr
    }

    /// This node's name on the ring (the textual form of [`Self::addr`]).
    pub fn name(&self) -> &str {
        &self.shared.self_name
    }

    /// Number of handlers spawned on this node so far.
    pub fn handlers_live(&self) -> usize {
        self.shared.handlers.lock().len()
    }

    /// The bound address of the HTTP metrics endpoint, when
    /// [`NodeConfig::metrics_listen`] requested one (ephemeral ports
    /// resolved).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.shared.metrics_addr
    }

    /// Blocks until the server stops (via the `shutdown` control op or
    /// [`Self::shutdown`] from another thread).
    pub fn wait(&self) {
        let thread = self.accept_thread.lock().take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }

    /// Stops accepting connections and shuts the runtime's handlers down.
    /// Connections currently being served finish their in-flight block and
    /// exit when the peer closes.
    pub fn shutdown(&self) {
        request_stop(&self.shared);
        self.wait();
        self.shared.handlers.lock().clear();
    }
}

impl<S: Send + 'static> Drop for NodeServer<S> {
    fn drop(&mut self) {
        request_stop(&self.shared);
        self.wait();
    }
}

/// Flags the server as stopping and unblocks its accept loop by dialling it
/// once.
fn request_stop<S: Send + 'static>(shared: &ServerShared<S>) {
    if !shared.stopping.swap(true, Ordering::AcqRel) {
        let _ = shared.self_addr.connect();
        if let Some(addr) = shared.metrics_addr {
            let _ = std::net::TcpStream::connect(addr);
        }
        for conn in shared.conns.lock().drain(..) {
            conn.close();
        }
    }
}

/// Minimal HTTP/1.1 server for Prometheus scrapes: every request (any
/// method, any path) is answered with the process-wide metrics registry in
/// exposition format and the connection is closed.  One request per
/// connection — exactly the shape a scraper produces.
fn serve_metrics_http<S: Send + 'static>(
    shared: &Arc<ServerShared<S>>,
    listener: &std::net::TcpListener,
) {
    use std::io::{Read, Write};
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = stream else { return };
        // Read (and discard) the request head; scrapers send it in one
        // segment, and the response does not depend on it.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
        let mut head = [0u8; 1024];
        let _ = stream.read(&mut head);
        let body = qs_obs::registry().to_prometheus_text();
        let response = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.write_all(response.as_bytes());
    }
}

/// Looks up (or lazily spawns) the runtime handler hosting `id`.
fn handler_for<S: Send + 'static>(shared: &ServerShared<S>, id: u64) -> Handler<S> {
    let mut handlers = shared.handlers.lock();
    handlers
        .entry(id)
        .or_insert_with(|| shared.runtime.spawn_handler((shared.service.factory)(id)))
        .clone()
}

/// One connection's protocol-adapter loop.
fn serve_connection<S: Send + 'static>(
    shared: &Arc<ServerShared<S>>,
    requests: &ByteReceiver,
    responses: &ByteSender,
) {
    loop {
        match requests.recv_frame() {
            Ok(Frame::Hello { version, .. }) => {
                if version != WIRE_VERSION {
                    let _ = responses.send_frame(&Frame::Nack {
                        message: format!(
                            "wire version {version} not supported (node speaks {WIRE_VERSION})"
                        ),
                    });
                    return;
                }
            }
            Ok(Frame::Open { handler }) => {
                if shared.stopping.load(Ordering::Acquire) {
                    return;
                }
                let owner = shared.ring.lock().route(handler).map(str::to_string);
                if owner.as_deref() != Some(shared.self_name.as_str()) {
                    shared.counters.nacks.fetch_add(1, Ordering::Relaxed);
                    let message = match owner {
                        Some(owner) => {
                            format!(
                                "handler {handler} lives on {owner}, not {}",
                                shared.self_name
                            )
                        }
                        None => "ring not configured".to_string(),
                    };
                    if responses.send_frame(&Frame::Nack { message }).is_err()
                        || drain_refused_block(requests).is_err()
                    {
                        return;
                    }
                    continue;
                }
                let handler = handler_for(shared, handler);
                shared.counters.blocks.fetch_add(1, Ordering::Relaxed);
                if serve_block(shared, &handler, requests, responses).is_err() {
                    return;
                }
            }
            Ok(Frame::Control { op, args }) => {
                let result = apply_control(shared, &op, &args);
                if responses
                    .send_frame(&Frame::ControlResult { result })
                    .is_err()
                {
                    return;
                }
                if op == "shutdown" {
                    request_stop(shared);
                    return;
                }
            }
            // Anything else outside a block is a protocol violation; the
            // stream cannot be trusted any more.
            Ok(_) | Err(_) => return,
        }
    }
}

/// Skips the frames of a refused block so the connection stays usable: the
/// client pipelines calls without waiting, so they are already in flight
/// when the Nack is sent.
fn drain_refused_block(requests: &ByteReceiver) -> Result<(), ()> {
    loop {
        match requests.recv_frame() {
            Ok(Frame::End) => return Ok(()),
            Ok(Frame::Call { .. }) | Ok(Frame::Query { .. }) | Ok(Frame::Sync) => {}
            Ok(_) | Err(_) => return Err(()),
        }
    }
}

/// Serves one block: wire frames become operations on the handler's
/// separate-block guard, so ordering and atomicity come from the runtime.
fn serve_block<S: Send + 'static>(
    shared: &Arc<ServerShared<S>>,
    handler: &Handler<S>,
    requests: &ByteReceiver,
    responses: &ByteSender,
) -> Result<(), ()> {
    handler.separate(|guard| loop {
        match requests.recv_frame() {
            Ok(Frame::Call { method, args }) => {
                shared.counters.calls.fetch_add(1, Ordering::Relaxed);
                let registry = Arc::clone(&shared.service.registry);
                // An asynchronous call has nobody to report errors to; the
                // dispatch result is dropped, matching RemoteNode.
                guard.call(move |state| {
                    let _ = registry.dispatch(state, &method, &args);
                });
            }
            Ok(Frame::Query { method, args }) => {
                shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                let registry = Arc::clone(&shared.service.registry);
                let result = guard.query(move |state| registry.dispatch(state, &method, &args));
                if responses
                    .send_frame(&Frame::QueryResult { result })
                    .is_err()
                {
                    return Err(());
                }
            }
            Ok(Frame::Sync) => {
                guard.sync();
                if responses.send_frame(&Frame::SyncAck).is_err() {
                    return Err(());
                }
            }
            Ok(Frame::End) => return Ok(()),
            Ok(_) | Err(_) => return Err(()),
        }
    })
}

/// Applies one management operation.
fn apply_control<S: Send + 'static>(
    shared: &ServerShared<S>,
    op: &str,
    args: &[WireValue],
) -> Result<WireValue, String> {
    match op {
        "ping" => Ok(WireValue::Str(format!(
            "{}@{}",
            shared.service.name, shared.self_name
        ))),
        "handlers" => Ok(WireValue::Int(shared.handlers.lock().len() as i64)),
        "stats" => {
            let c = &shared.counters;
            let pair = |k: &str, v: u64| {
                WireValue::List(vec![
                    WireValue::Str(k.to_string()),
                    WireValue::Int(v as i64),
                ])
            };
            Ok(WireValue::List(vec![
                pair("connections", c.connections.load(Ordering::Relaxed)),
                pair("blocks", c.blocks.load(Ordering::Relaxed)),
                pair("nacks", c.nacks.load(Ordering::Relaxed)),
                pair("calls", c.calls.load(Ordering::Relaxed)),
                pair("queries", c.queries.load(Ordering::Relaxed)),
                pair("handlers", shared.handlers.lock().len() as u64),
            ]))
        }
        "ring" => {
            let mut members = Vec::with_capacity(args.len());
            for arg in args {
                members.push(arg.as_str()?.to_string());
            }
            if members.is_empty() {
                return Err("ring needs at least one member".to_string());
            }
            *shared.ring.lock() = HashRing::with_nodes(&members);
            Ok(WireValue::Int(members.len() as i64))
        }
        "join" => {
            let node = args.first().ok_or("join needs a node address")?.as_str()?;
            Ok(WireValue::Bool(shared.ring.lock().add(node)))
        }
        "leave" => {
            let node = args.first().ok_or("leave needs a node address")?.as_str()?;
            Ok(WireValue::Bool(shared.ring.lock().remove(node)))
        }
        "metrics" => Ok(WireValue::Str(qs_obs::registry().to_json())),
        "metrics_text" => Ok(WireValue::Str(qs_obs::registry().to_prometheus_text())),
        "shutdown" => Ok(WireValue::Unit),
        other => Err(format!("unknown control op `{other}`")),
    }
}
