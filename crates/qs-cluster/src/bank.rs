//! The demo/benchmark service: a bank where every user is a handler.
//!
//! One account per user, sharded across nodes by user id.  Used by
//! `examples/bank_cluster.rs` and the `run_experiments remote` sweep, and
//! deliberately tiny: the point is the routing/transport stack around it,
//! not the service.  Per-user handlers are exactly the pooled scheduler's
//! home turf — tens of thousands of mostly idle accounts per node cost a
//! couple of worker threads (PR 3).

use qs_remote::{MethodRegistry, WireValue};

use crate::server::ClusterService;

/// One user's account state.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Account {
    /// Current balance (starts at zero).
    pub balance: i64,
    /// Number of operations applied (deposits, withdrawals and balance
    /// queries).
    pub ops: u64,
}

/// The account methods.
pub fn bank_registry() -> MethodRegistry<Account> {
    MethodRegistry::new()
        .with("deposit", |account: &mut Account, args| {
            let amount = args.first().ok_or("deposit needs an amount")?.as_int()?;
            if amount < 0 {
                return Err("deposit amount must be non-negative".to_string());
            }
            account.balance += amount;
            account.ops += 1;
            Ok(WireValue::Unit)
        })
        .with("withdraw", |account: &mut Account, args| {
            let amount = args.first().ok_or("withdraw needs an amount")?.as_int()?;
            if amount < 0 {
                return Err("withdraw amount must be non-negative".to_string());
            }
            if amount > account.balance {
                return Err(format!(
                    "insufficient funds: balance {}, requested {amount}",
                    account.balance
                ));
            }
            account.balance -= amount;
            account.ops += 1;
            Ok(WireValue::Unit)
        })
        .with("balance", |account: &mut Account, _| {
            account.ops += 1;
            Ok(WireValue::Int(account.balance))
        })
        .with("ops", |account: &mut Account, _| {
            Ok(WireValue::Int(account.ops as i64))
        })
}

/// The bank as a cluster service (fresh zero-balance account per user).
pub fn bank_service() -> ClusterService<Account> {
    ClusterService::new("bank", bank_registry(), |_user| Account::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_withdrawals_and_guards() {
        let registry = bank_registry();
        let mut account = Account::default();
        registry
            .dispatch(&mut account, "deposit", &[WireValue::Int(100)])
            .unwrap();
        registry
            .dispatch(&mut account, "withdraw", &[WireValue::Int(30)])
            .unwrap();
        assert_eq!(
            registry.dispatch(&mut account, "balance", &[]).unwrap(),
            WireValue::Int(70)
        );
        let overdraft = registry
            .dispatch(&mut account, "withdraw", &[WireValue::Int(1000)])
            .unwrap_err();
        assert!(overdraft.contains("insufficient funds"));
        assert!(registry
            .dispatch(&mut account, "deposit", &[WireValue::Int(-5)])
            .is_err());
        assert_eq!(
            registry.dispatch(&mut account, "ops", &[]).unwrap(),
            WireValue::Int(3),
            "failed operations do not count"
        );
    }
}
