//! End-to-end cluster tests: several in-process node servers over real
//! loopback sockets, one routing client.  (The multi-OS-process variant of
//! the same flow lives in `examples/bank_cluster.rs` and CI's cluster smoke
//! job; here the nodes share the test process so failures carry stack
//! traces.)

use std::time::Duration;

use qs_cluster::{bank_service, ClusterClient, NodeConfig, NodeServer};
use qs_remote::{NodeAddr, RemoteError, WireValue};

fn tcp_node() -> NodeServer<qs_cluster::Account> {
    NodeServer::start(
        bank_service(),
        NodeConfig::at(NodeAddr::parse("tcp:127.0.0.1:0").unwrap()),
    )
    .unwrap()
}

fn unix_node(tag: &str) -> NodeServer<qs_cluster::Account> {
    let path = std::env::temp_dir().join(format!("qs-cluster-{tag}-{}.sock", std::process::id()));
    NodeServer::start(bank_service(), NodeConfig::at(NodeAddr::Unix(path))).unwrap()
}

#[test]
fn users_shard_across_nodes_and_balances_are_exact() {
    let nodes = [tcp_node(), tcp_node(), tcp_node()];
    let addrs: Vec<NodeAddr> = nodes.iter().map(|n| n.addr().clone()).collect();
    let client =
        ClusterClient::new("sharding-test", &[]).with_response_timeout(Duration::from_secs(10));
    client.set_ring(&addrs).unwrap();

    let users = 300u64;
    for user in 0..users {
        client
            .separate(user, |s| {
                s.call("deposit", vec![WireValue::Int(10)]).unwrap();
                s.call("deposit", vec![WireValue::Int(user as i64)])
                    .unwrap();
                s.call("withdraw", vec![WireValue::Int(5)]).unwrap();
            })
            .unwrap();
    }
    for user in 0..users {
        let balance = client.query(user, "balance", vec![]).unwrap();
        assert_eq!(balance, WireValue::Int(5 + user as i64), "user {user}");
    }

    // Every node must actually host a share of the users.
    for node in &nodes {
        let hosted = node.handlers_live();
        assert!(
            hosted > users as usize / 10,
            "node {} hosts only {hosted} of {users} users",
            node.name()
        );
    }
    client.shutdown_cluster();
}

#[test]
fn unix_and_tcp_nodes_mix_in_one_ring() {
    let a = tcp_node();
    let b = unix_node("mixed");
    let client =
        ClusterClient::new("mixed-transport", &[]).with_response_timeout(Duration::from_secs(10));
    client
        .set_ring(&[a.addr().clone(), b.addr().clone()])
        .unwrap();

    let mut unix_routed = 0;
    for user in 0..100u64 {
        client
            .separate(user, |s| {
                s.call("deposit", vec![WireValue::Int(7)]).unwrap();
                assert_eq!(s.query("balance", vec![]).unwrap(), WireValue::Int(7));
            })
            .unwrap();
        if client.route(user).unwrap().starts_with("unix:") {
            unix_routed += 1;
        }
    }
    assert!(unix_routed > 0, "no user routed over the Unix socket");
    assert!(unix_routed < 100, "no user routed over TCP");
    client.shutdown_cluster();
}

#[test]
fn pings_and_stats_report_per_node_activity() {
    let node = tcp_node();
    let name = node.name().to_string();
    let client = ClusterClient::new("控制", &[node.addr().clone()]);
    let pong = client.control(&name, "ping", vec![]).unwrap();
    assert_eq!(pong, WireValue::Str(format!("bank@{name}")));

    client.query(1, "balance", vec![]).unwrap();
    client.query(2, "balance", vec![]).unwrap();
    let stats = client.control(&name, "stats", vec![]).unwrap();
    let rendered = format!("{stats:?}");
    assert!(rendered.contains("blocks"), "{rendered}");
    assert_eq!(
        client.control(&name, "handlers", vec![]).unwrap(),
        WireValue::Int(2)
    );
    let err = client.control(&name, "no-such-op", vec![]).unwrap_err();
    assert!(matches!(err, RemoteError::Application(_)));
    client.shutdown_cluster();
}

#[test]
fn metrics_ops_and_http_endpoint_expose_the_registry() {
    let mut config = NodeConfig::at(NodeAddr::parse("tcp:127.0.0.1:0").unwrap())
        .with_metrics_listen("127.0.0.1:0");
    config.runtime = config
        .runtime
        .with_observability(qs_runtime::ObservabilityMode::Counters);
    let node = NodeServer::start(bank_service(), config).unwrap();
    let name = node.name().to_string();
    let client = ClusterClient::new("metrics", &[node.addr().clone()])
        .with_response_timeout(Duration::from_secs(10));
    client.query(1, "balance", vec![]).unwrap();

    // Control{op:"metrics"}: the whole registry as parseable JSON.
    let WireValue::Str(json) = client.control(&name, "metrics", vec![]).unwrap() else {
        panic!("metrics must answer a string");
    };
    let doc = qs_obs::parse_json(&json).expect("registry JSON parses");
    let histograms = doc.get("histograms").expect("histograms section");
    assert!(
        histograms.get("query.round_trip_ns").is_some(),
        "the served query left a round-trip histogram: {json}"
    );

    // Control{op:"metrics_text"}: the same registry as Prometheus text.
    let WireValue::Str(text) = client.control(&name, "metrics_text", vec![]).unwrap() else {
        panic!("metrics_text must answer a string");
    };
    assert!(
        text.contains("# TYPE query_round_trip_ns summary"),
        "{text}"
    );

    // The HTTP endpoint serves the exposition format to a raw scrape.
    let addr = node.metrics_addr().expect("metrics endpoint bound");
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    {
        use std::io::Write;
        // One write for the whole request: the one-shot server answers (and
        // closes) after its first successful read, so a fragmented request
        // races EPIPE against the response.
        stream
            .write_all(format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
            .unwrap();
    }
    let mut response = String::new();
    {
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
    }
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("text/plain"), "{response}");
    assert!(response.contains("query_round_trip_ns_count"), "{response}");
    client.shutdown_cluster();
}

#[test]
fn misrouted_blocks_are_refused_loudly() {
    let a = tcp_node();
    let b = tcp_node();
    let addrs = [a.addr().clone(), b.addr().clone()];
    let cluster = ClusterClient::new("router", &[]).with_response_timeout(Duration::from_secs(10));
    cluster.set_ring(&addrs).unwrap();

    // A client whose ring only knows node `a` sends every block there; the
    // users owned by `b` must be refused, not silently absorbed into the
    // wrong shard.
    let confused =
        ClusterClient::new("confused", &addrs[..1]).with_response_timeout(Duration::from_secs(10));
    let stray = (0..u64::MAX)
        .find(|u| cluster.route(*u).unwrap() != a.addr().to_string())
        .unwrap();
    let err = confused.query(stray, "balance", vec![]).unwrap_err();
    match err {
        RemoteError::Protocol(message) => {
            assert!(message.contains("block refused"), "{message}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }
    // The correctly routed client is untouched by the stray attempt.
    assert_eq!(
        cluster.query(stray, "balance", vec![]).unwrap(),
        WireValue::Int(0)
    );
    cluster.shutdown_cluster();
}

#[test]
fn a_dead_node_surfaces_an_error_not_a_hang() {
    let a = tcp_node();
    let b = tcp_node();
    let client =
        ClusterClient::new("mourner", &[]).with_response_timeout(Duration::from_millis(500));
    client
        .set_ring(&[a.addr().clone(), b.addr().clone()])
        .unwrap();

    let on_b = (0..u64::MAX)
        .find(|u| client.route(*u).unwrap() == b.addr().to_string())
        .unwrap();
    client.query(on_b, "balance", vec![]).unwrap();

    b.shutdown();
    // The pooled connection died with the node and fresh dials are refused:
    // the client must fail fast, with one of the peer-death errors.
    let err = client.query(on_b, "balance", vec![]).unwrap_err();
    assert!(
        matches!(err, RemoteError::Disconnected | RemoteError::Timeout),
        "unexpected error for a dead node: {err:?}"
    );
    // Other shards keep working.
    let on_a = (0..u64::MAX)
        .find(|u| client.route(*u).unwrap() == a.addr().to_string())
        .unwrap();
    client.query(on_a, "balance", vec![]).unwrap();
    client.shutdown_cluster();
}

#[test]
fn nodes_join_and_leave_the_ring() {
    let a = tcp_node();
    let b = tcp_node();
    let client =
        ClusterClient::new("membership", &[]).with_response_timeout(Duration::from_secs(10));
    client
        .set_ring(&[a.addr().clone(), b.addr().clone()])
        .unwrap();

    // A third node joins; every member learns the new membership, so all
    // traffic keeps flowing without refusals.
    let c = tcp_node();
    client.add_node(c.addr()).unwrap();
    assert_eq!(client.nodes().len(), 3);
    for user in 1000..1200u64 {
        client
            .separate(user, |s| {
                s.call("deposit", vec![WireValue::Int(1)]).unwrap();
                assert_eq!(s.query("balance", vec![]).unwrap(), WireValue::Int(1));
            })
            .unwrap();
    }
    assert!(
        c.handlers_live() > 0,
        "the joined node received no handlers"
    );

    // It leaves again; its handlers are re-routed to survivors (state is
    // not migrated — accounts restart fresh, which is the documented
    // non-goal) and traffic still flows.
    client.remove_node(c.addr()).unwrap();
    c.shutdown();
    assert_eq!(client.nodes().len(), 2);
    for user in 1000..1200u64 {
        client.query(user, "balance", vec![]).unwrap();
    }
    client.shutdown_cluster();
}
