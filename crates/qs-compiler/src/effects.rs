//! The per-handler effect-inference analysis.
//!
//! Dual of the sync-set analysis in [`crate::analysis`]: where sync-sets are
//! a forward *must* analysis (intersection join, facts can only be lost), the
//! effect analysis is a forward *may* analysis over the lattice
//!
//! ```text
//! Pure < Read < Write
//! ```
//!
//! computing, for every basic block and every handler variable, the strongest
//! effect the program may have exercised on that handler's object by the end
//! of the block.  The join is the per-handler maximum over predecessor exits
//! and the transfer function only ever widens, so the worklist fixpoint
//! terminates on the finite lattice.
//!
//! Transfer rules (conservative throughout):
//!
//! * [`Instr::QueryRead`] widens the handler — and everything it may alias —
//!   to [`Effect::Read`];
//! * [`Instr::Sync`] and [`Instr::AsyncCall`] widen the handler and its
//!   aliases to [`Effect::Write`] (a sync only exists to flush logged
//!   commands, so both are treated as evidence of mutation);
//! * [`Instr::OpaqueCall`] widens the *whole universe*: to [`Effect::Read`]
//!   when the callee carries the `readonly` attribute, to [`Effect::Write`]
//!   otherwise;
//! * [`Instr::Local`] touches no handler.
//!
//! A handler whose whole-function effect stays at or below [`Effect::Read`]
//! is provably never mutated through this function — the verdict the
//! [`crate::transform::read_downgrade`] transform and the `qs-lang` front end
//! use to reserve it in shared-read mode.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ir::{BlockId, Function, HandlerVar, Instr};

/// The effect lattice: `Pure < Read < Write`.
///
/// The derived `Ord` *is* the lattice order (declaration order), so
/// [`Effect::join`] is simply `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Effect {
    /// The handler's object is never touched.
    #[default]
    Pure,
    /// The object may be read but is never mutated.
    Read,
    /// The object may be mutated (or we cannot prove it is not).
    Write,
}

impl Effect {
    /// Least upper bound of two effects.
    pub fn join(self, other: Effect) -> Effect {
        self.max(other)
    }

    /// Short label used in reports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Effect::Pure => "pure",
            Effect::Read => "read",
            Effect::Write => "write",
        }
    }
}

impl std::fmt::Display for Effect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-handler effect state at a program point.  Absent handlers are
/// [`Effect::Pure`] (the lattice bottom), so the empty map is ⊥.
pub type EffectState = BTreeMap<HandlerVar, Effect>;

/// Widens `state[handler]` to at least `effect`.
fn widen(state: &mut EffectState, handler: HandlerVar, effect: Effect) {
    let entry = state.entry(handler).or_default();
    *entry = entry.join(effect);
}

/// Result of the analysis: effect state at entry and exit of every block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSets {
    /// Effects accumulated on entry to each block (join over predecessors).
    pub entry: Vec<EffectState>,
    /// Effects accumulated by the end of each block.
    pub exit: Vec<EffectState>,
    /// Number of worklist iterations until the fixpoint was reached.
    pub iterations: usize,
}

impl EffectSets {
    /// The effect state flowing into `block`.
    pub fn entry_of(&self, block: BlockId) -> &EffectState {
        &self.entry[block]
    }

    /// The effect state at the end of `block`.
    pub fn exit_of(&self, block: BlockId) -> &EffectState {
        &self.exit[block]
    }

    /// The whole-function effect per handler: the join over every block's
    /// exit state (any path through the function may exercise it).
    pub fn summary(&self) -> EffectState {
        let mut summary = EffectState::new();
        for state in &self.exit {
            for (&handler, &effect) in state {
                widen(&mut summary, handler, effect);
            }
        }
        summary
    }
}

/// The transfer function: applies one block's instructions to an incoming
/// effect state.  Only ever widens.
pub fn update_effects(function: &Function, block: BlockId, incoming: &EffectState) -> EffectState {
    let universe = function.handler_universe();
    let mut state = incoming.clone();
    for instr in &function.blocks[block].instrs {
        match instr {
            Instr::QueryRead { handler, .. } => {
                for aliased in function.aliasing.may_alias(*handler, &universe) {
                    widen(&mut state, aliased, Effect::Read);
                }
            }
            Instr::Sync(h) => {
                for aliased in function.aliasing.may_alias(*h, &universe) {
                    widen(&mut state, aliased, Effect::Write);
                }
            }
            Instr::AsyncCall { handler, .. } => {
                for aliased in function.aliasing.may_alias(*handler, &universe) {
                    widen(&mut state, aliased, Effect::Write);
                }
            }
            Instr::OpaqueCall { readonly, .. } => {
                let effect = if *readonly {
                    Effect::Read
                } else {
                    Effect::Write
                };
                for &handler in &universe {
                    widen(&mut state, handler, effect);
                }
            }
            Instr::Local(_) => {}
        }
    }
    state
}

/// Joins `incoming` into `acc`, per handler.
fn join_into(acc: &mut EffectState, incoming: &EffectState) {
    for (&handler, &effect) in incoming {
        widen(acc, handler, effect);
    }
}

/// Runs the worklist fixpoint and returns the per-block effect states.
pub fn analyze_effects(function: &Function) -> EffectSets {
    let n = function.blocks.len();
    let preds = function.predecessors();
    // A may-analysis starts every state at ⊥ (the empty map: everything
    // Pure) and widens towards the fixpoint.
    let mut entry = vec![EffectState::new(); n];
    let mut exit = vec![EffectState::new(); n];
    let mut iterations = 0usize;

    let mut worklist: VecDeque<BlockId> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(block) = worklist.pop_front() {
        queued[block] = false;
        iterations += 1;
        let mut incoming = EffectState::new();
        for &p in &preds[block] {
            join_into(&mut incoming, &exit[p]);
        }
        let new_exit = update_effects(function, block, &incoming);
        entry[block] = incoming;
        if new_exit != exit[block] {
            exit[block] = new_exit;
            for &succ in &function.blocks[block].successors {
                if !queued[succ] {
                    queued[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    EffectSets {
        entry,
        exit,
        iterations,
    }
}

/// Convenience: the whole-function effect of every handler variable, with
/// handlers the function never touches reported as [`Effect::Pure`].
pub fn function_effects(function: &Function) -> BTreeMap<HandlerVar, Effect> {
    let mut effects = analyze_effects(function).summary();
    for handler in function.handler_universe() {
        effects.entry(handler).or_insert(Effect::Pure);
    }
    effects
}

/// Handlers whose whole-function effect is at most [`Effect::Read`]: they
/// are provably never mutated through this function and can be reserved in
/// shared-read mode.
pub fn read_only_handlers(function: &Function) -> BTreeSet<HandlerVar> {
    function_effects(function)
        .into_iter()
        .filter(|&(_, effect)| effect <= Effect::Read)
        .map(|(handler, _)| handler)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AliasModel;

    #[test]
    fn lattice_order_and_join() {
        assert!(Effect::Pure < Effect::Read);
        assert!(Effect::Read < Effect::Write);
        assert_eq!(Effect::Pure.join(Effect::Read), Effect::Read);
        assert_eq!(Effect::Write.join(Effect::Read), Effect::Write);
        assert_eq!(Effect::default(), Effect::Pure);
        assert_eq!(Effect::Write.to_string(), "write");
    }

    #[test]
    fn sync_free_copy_loop_is_read_only() {
        // Fig. 14's loop without the naive per-read syncs: pure queries.
        let f = Function::fig14_loop(2, false);
        let effects = function_effects(&f);
        assert_eq!(effects[&0], Effect::Read);
        assert_eq!(read_only_handlers(&f), [0].into_iter().collect());
    }

    #[test]
    fn syncs_and_commands_force_write() {
        let naive = Function::fig14_loop(2, true);
        assert_eq!(function_effects(&naive)[&0], Effect::Write);

        let mut g = Function::new("cmd", AliasModel::NoAlias);
        g.add_block(vec![Instr::async_call(0, "a"), Instr::read(1, "r")], vec![]);
        let effects = function_effects(&g);
        assert_eq!(effects[&0], Effect::Write);
        assert_eq!(effects[&1], Effect::Read);
        assert_eq!(read_only_handlers(&g), [1].into_iter().collect());
    }

    #[test]
    fn aliasing_merges_effects_conservatively() {
        // A write through handler 1 that may alias handler 0 poisons both.
        let mut f = Function::new("alias", AliasModel::MayAliasAll);
        f.add_block(vec![Instr::read(0, "r"), Instr::async_call(1, "a")], vec![]);
        let effects = function_effects(&f);
        assert_eq!(effects[&0], Effect::Write, "may-alias merges the write");
        assert_eq!(effects[&1], Effect::Write);
        assert!(read_only_handlers(&f).is_empty());

        let mut g = Function::new("no_alias", AliasModel::NoAlias);
        g.add_block(vec![Instr::read(0, "r"), Instr::async_call(1, "a")], vec![]);
        assert_eq!(function_effects(&g)[&0], Effect::Read);
    }

    #[test]
    fn opaque_calls_poison_the_universe_unless_readonly() {
        let mut f = Function::new("opaque", AliasModel::NoAlias);
        f.add_block(
            vec![
                Instr::read(0, "r"),
                Instr::OpaqueCall {
                    readonly: false,
                    label: "unknown()".into(),
                },
            ],
            vec![],
        );
        assert_eq!(function_effects(&f)[&0], Effect::Write);

        let mut g = Function::new("opaque_ro", AliasModel::NoAlias);
        g.add_block(
            vec![
                Instr::read(0, "r"),
                Instr::OpaqueCall {
                    readonly: true,
                    label: "pure()".into(),
                },
            ],
            vec![],
        );
        assert_eq!(function_effects(&g)[&0], Effect::Read);
    }

    #[test]
    fn branches_join_with_max() {
        // entry -> {left: read, right: write} -> join.
        let mut f = Function::new("diamond", AliasModel::NoAlias);
        let entry = f.add_block(vec![], vec![1, 2]);
        let _left = f.add_block(vec![Instr::read(0, "r")], vec![3]);
        let _right = f.add_block(vec![Instr::async_call(0, "w")], vec![3]);
        let join = f.add_block(vec![], vec![]);
        f.entry = entry;
        let sets = analyze_effects(&f);
        assert_eq!(sets.entry_of(join).get(&0), Some(&Effect::Write));
        assert_eq!(sets.summary()[&0], Effect::Write);
    }

    #[test]
    fn fixpoint_terminates_on_cycles() {
        let mut f = Function::new("cycle", AliasModel::NoAlias);
        f.add_block(vec![Instr::read(0, "r")], vec![1]);
        f.add_block(vec![Instr::read(0, "r")], vec![0, 1]);
        let sets = analyze_effects(&f);
        assert!(sets.iterations < 50, "fixpoint did not converge quickly");
        assert_eq!(sets.summary()[&0], Effect::Read);
    }

    #[test]
    fn transfer_only_widens() {
        let f = Function::fig14_loop(1, true);
        let sets = analyze_effects(&f);
        for block in 0..f.blocks.len() {
            for (handler, effect) in sets.entry_of(block) {
                let exit_effect = sets
                    .exit_of(block)
                    .get(handler)
                    .copied()
                    .unwrap_or(Effect::Pure);
                assert!(exit_effect >= *effect, "transfer must never narrow");
            }
        }
    }
}
