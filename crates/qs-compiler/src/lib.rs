//! # qs-compiler — the static sync-coalescing pass (§3.4.2)
//!
//! The paper's SCOOP/Qs compiler targets LLVM and ships an extra optimisation
//! pass that removes redundant `sync` operations: it computes, for every
//! basic block, the set of handlers that are certainly synchronised at the
//! end of the block (the *sync-set*, Figs. 12–13) and removes `sync`
//! instructions whose handler is already in the incoming set (Fig. 14),
//! conservatively giving up in the presence of aliasing or opaque calls
//! (Fig. 15).
//!
//! This crate reproduces that pass over a miniature SSA-less IR:
//!
//! * [`ir`] — instructions, basic blocks and control-flow graphs, plus a
//!   builder producing the "naive codegen" shape (a sync in front of every
//!   query) that the pass is meant to clean up;
//! * [`analysis`] — the sync-set dataflow analysis (the fixpoint of Fig. 12
//!   with the transfer function of Fig. 13);
//! * [`effects`] — the per-handler effect-inference analysis on the lattice
//!   `Pure < Read < Write` (the may-analysis dual of the sync-set pass),
//!   which proves reservations read-only;
//! * [`transform`] — the sync-coalescing rewrite driven by the analysis, and
//!   the read-downgrade transform driven by the effect analysis;
//! * [`diagnostics`] — structured lints (`Diagnostic`) with a
//!   machine-readable JSON dump, shared by every static pass in the
//!   workspace;
//! * [`exec`] — a small interpreter that runs IR loops against the real
//!   `qs-runtime`, so the effect of the pass on actual executions (and on the
//!   runtime's sync counters) can be observed and benchmarked.

#![warn(missing_docs)]

pub mod analysis;
pub mod diagnostics;
pub mod effects;
pub mod exec;
pub mod ir;
pub mod transform;

pub use analysis::{analyze_sync_sets, SyncSets};
pub use diagnostics::{diagnostics_to_json, Diagnostic, Severity, Span};
pub use effects::{analyze_effects, function_effects, read_only_handlers, Effect, EffectSets};
pub use exec::{execute_copy_loop, execute_copy_loop_ir, execute_read_loop, CopyLoopReport};
pub use ir::{AliasModel, BlockId, Function, HandlerVar, Instr};
pub use transform::{coalesce_syncs, read_downgrade, CoalesceReport, ReadDowngradeReport};
