//! The sync-set dataflow analysis (Figs. 12 and 13 of the paper).
//!
//! For every basic block the analysis computes the set of handler variables
//! that are guaranteed to be synchronised at the end of the block, starting
//! from the intersection of the predecessors' sets (a forward *must*
//! analysis).  The transfer function follows Fig. 13: a sync adds its
//! handler, an asynchronous call removes its handler and everything it may
//! alias, an opaque non-readonly call clears the set, everything else leaves
//! it unchanged.

use std::collections::{BTreeSet, VecDeque};

use crate::ir::{BlockId, Function, HandlerVar, Instr};

/// Result of the analysis: the sync-set at entry and exit of every block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncSets {
    /// Sync-set at block entry (the intersection of predecessor exits).
    pub entry: Vec<BTreeSet<HandlerVar>>,
    /// Sync-set at block exit.
    pub exit: Vec<BTreeSet<HandlerVar>>,
    /// Number of worklist iterations until the fixpoint was reached.
    pub iterations: usize,
}

impl SyncSets {
    /// The sync-set flowing into `block`.
    pub fn entry_of(&self, block: BlockId) -> &BTreeSet<HandlerVar> {
        &self.entry[block]
    }

    /// The sync-set at the end of `block` (as labelled on its out-edges in
    /// Fig. 14b/15b).
    pub fn exit_of(&self, block: BlockId) -> &BTreeSet<HandlerVar> {
        &self.exit[block]
    }
}

/// The Fig. 13 transfer function: applies one block's instructions to an
/// incoming sync-set.
pub fn update_sync(
    function: &Function,
    block: BlockId,
    incoming: &BTreeSet<HandlerVar>,
) -> BTreeSet<HandlerVar> {
    let universe = function.handler_universe();
    let mut synced = incoming.clone();
    for instr in &function.blocks[block].instrs {
        match instr {
            Instr::Sync(h) => {
                synced.insert(*h);
            }
            Instr::AsyncCall { handler, .. } => {
                for aliased in function.aliasing.may_alias(*handler, &universe) {
                    synced.remove(&aliased);
                }
            }
            Instr::OpaqueCall { readonly, .. } => {
                if !readonly {
                    synced.clear();
                }
            }
            Instr::QueryRead { .. } | Instr::Local(_) => {}
        }
    }
    synced
}

/// Runs the worklist fixpoint of Fig. 12 and returns the per-block sync-sets.
pub fn analyze_sync_sets(function: &Function) -> SyncSets {
    let n = function.blocks.len();
    let preds = function.predecessors();
    // Exit sets start at ⊤ (the full universe) for a must-analysis so that
    // the intersection over predecessors is not pessimistically empty before
    // a block has been visited; the entry block's entry set is ∅ (nothing is
    // synced when the function is entered).
    let universe = function.handler_universe();
    let mut entry = vec![BTreeSet::new(); n];
    let mut exit = vec![universe.clone(); n];
    let mut iterations = 0usize;

    let mut worklist: VecDeque<BlockId> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(block) = worklist.pop_front() {
        queued[block] = false;
        iterations += 1;
        let incoming = if block == function.entry {
            BTreeSet::new()
        } else if preds[block].is_empty() {
            // Unreachable block: treat like the entry (nothing synced).
            BTreeSet::new()
        } else {
            let mut iter = preds[block].iter();
            let first = exit[*iter.next().expect("non-empty preds")].clone();
            iter.fold(first, |acc, p| {
                acc.intersection(&exit[*p]).cloned().collect()
            })
        };
        let new_exit = update_sync(function, block, &incoming);
        entry[block] = incoming;
        if new_exit != exit[block] {
            exit[block] = new_exit;
            for &succ in &function.blocks[block].successors {
                if !queued[succ] {
                    queued[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }

    SyncSets {
        entry,
        exit,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AliasModel;

    #[test]
    fn fig14_all_edges_carry_the_handler() {
        // After the first sync, every block's out-edge should be labelled
        // with handler 0 (Fig. 14b).
        let f = Function::fig14_loop(1, true);
        let sets = analyze_sync_sets(&f);
        for block in 0..f.blocks.len() {
            assert!(
                sets.exit_of(block).contains(&0),
                "block {block} lost the sync-set"
            );
        }
        // The loop body's entry set also carries the handler: its
        // predecessors are B1 and itself, both of which end synced.
        assert!(sets.entry_of(1).contains(&0));
        assert!(sets.entry_of(2).contains(&0));
    }

    #[test]
    fn fig15_may_alias_blocks_coalescing() {
        let f = Function::fig15_loop(AliasModel::MayAliasAll);
        let sets = analyze_sync_sets(&f);
        // The async call on the possibly-aliasing handler clears h from the
        // body's exit set, so the loop edges carry nothing (Fig. 15b).
        assert!(sets.exit_of(1).is_empty());
        // Consequently the body's entry set is empty too (it is a
        // predecessor of itself).
        assert!(sets.entry_of(1).is_empty());
    }

    #[test]
    fn fig15_no_alias_allows_coalescing() {
        let f = Function::fig15_loop(AliasModel::NoAlias);
        let sets = analyze_sync_sets(&f);
        // With aliasing resolved, the async call on handler 1 does not
        // invalidate handler 0.
        assert!(sets.exit_of(1).contains(&0));
        assert!(!sets.exit_of(1).contains(&1));
    }

    #[test]
    fn opaque_calls_clear_unless_readonly() {
        let mut f = Function::new("opaque", AliasModel::NoAlias);
        f.add_block(
            vec![
                Instr::Sync(0),
                Instr::OpaqueCall {
                    readonly: false,
                    label: "helper()".into(),
                },
            ],
            vec![1],
        );
        f.add_block(vec![Instr::Sync(0)], vec![]);
        let sets = analyze_sync_sets(&f);
        assert!(sets.exit_of(0).is_empty());

        let mut g = Function::new("opaque_ro", AliasModel::NoAlias);
        g.add_block(
            vec![
                Instr::Sync(0),
                Instr::OpaqueCall {
                    readonly: true,
                    label: "pure()".into(),
                },
            ],
            vec![],
        );
        let sets = analyze_sync_sets(&g);
        assert!(sets.exit_of(0).contains(&0));
    }

    #[test]
    fn diamond_takes_the_intersection_of_branches() {
        // entry -> {left, right} -> join; only the left branch syncs handler
        // 1, so the join must not consider it synced.
        let mut f = Function::new("diamond", AliasModel::NoAlias);
        let entry = f.add_block(vec![Instr::Sync(0)], vec![1, 2]);
        let left = f.add_block(vec![Instr::Sync(1)], vec![3]);
        let right = f.add_block(vec![Instr::Local("nop".into())], vec![3]);
        let join = f.add_block(vec![], vec![]);
        f.entry = entry;
        let sets = analyze_sync_sets(&f);
        assert!(sets.exit_of(left).contains(&1));
        assert!(!sets.exit_of(right).contains(&1));
        assert!(sets.entry_of(join).contains(&0));
        assert!(!sets.entry_of(join).contains(&1));
    }

    #[test]
    fn fixpoint_terminates_on_cycles() {
        // Two blocks jumping to each other with an async call in one of them.
        let mut f = Function::new("cycle", AliasModel::NoAlias);
        f.add_block(vec![Instr::Sync(0)], vec![1]);
        f.add_block(vec![Instr::async_call(0, "a")], vec![0, 1]);
        let sets = analyze_sync_sets(&f);
        assert!(sets.iterations < 50, "fixpoint did not converge quickly");
        assert!(sets.exit_of(1).is_empty());
    }
}
