//! Executing IR loops against the real runtime.
//!
//! This ties the static pass to observable behaviour: the Fig. 14 copy loop
//! is built in its naive form (a sync in front of every element read), then
//! optionally run through [`crate::coalesce_syncs`], and finally *executed*
//! against a `qs-runtime` handler that owns the source array.  The report
//! carries the number of sync round-trips actually performed, which is what
//! the optimisation evaluation in §4.2 (Table 1, Fig. 16) measures.

use std::time::{Duration, Instant};

use qs_runtime::{reserve, Runtime, RuntimeConfig};

use crate::ir::{Function, Instr};
use crate::transform::{coalesce_syncs, read_downgrade};

/// Result of executing a copy loop.
#[derive(Debug, Clone)]
pub struct CopyLoopReport {
    /// The values copied out of the handler (for verification).
    pub copied: Vec<u64>,
    /// Sync round-trips actually performed by the runtime.
    pub syncs_performed: u64,
    /// Sync operations elided (statically removed plus dynamically skipped).
    pub syncs_elided: u64,
    /// `sync` instructions present in the executed IR.
    pub static_syncs_in_ir: usize,
    /// Shared-read reservations taken (non-zero only on the read-downgraded
    /// execution path).
    pub read_reservations: u64,
    /// Wall-clock time of the copy loop.
    pub elapsed: Duration,
}

/// Builds the naive Fig. 14 copy loop, optionally runs the static pass, and
/// executes it against a handler owning `0..len`.
///
/// * `config` — the runtime configuration to execute under;
/// * `len` — number of elements to copy (loop iterations);
/// * `statically_optimize` — whether to run the sync-coalescing pass first.
pub fn execute_copy_loop(
    config: RuntimeConfig,
    len: usize,
    statically_optimize: bool,
) -> CopyLoopReport {
    let naive = Function::fig14_loop(1, true);
    let function = if statically_optimize {
        coalesce_syncs(&naive).function
    } else {
        naive
    };
    execute_copy_loop_ir(config, len, &function)
}

/// Executes a (possibly already optimised) Fig. 14-shaped function.
///
/// The entry block (B1) is interpreted once before the loop, the body block
/// (B2) once per element, and the exit block (B3) once afterwards.  `Sync`
/// becomes [`qs_runtime::Separate::sync`], `QueryRead` becomes a client-side
/// read of the current element.
pub fn execute_copy_loop_ir(
    config: RuntimeConfig,
    len: usize,
    function: &Function,
) -> CopyLoopReport {
    assert!(
        function.blocks.len() >= 3,
        "expected the Fig. 14 shape: pre-header, body, exit"
    );
    let runtime = Runtime::new(config);
    let source: Vec<u64> = (0..len as u64).collect();
    let handler = runtime.spawn_handler(source);

    let before = runtime.stats_snapshot();
    let start = Instant::now();
    let mut copied = Vec::with_capacity(len);
    handler.separate(|s| {
        let mut interpret = |instrs: &[Instr], index: usize, out: &mut Vec<u64>| {
            for instr in instrs {
                match instr {
                    Instr::Sync(_) => s.sync(),
                    Instr::QueryRead { .. } => {
                        let value = s.query_unsynced(|v: &mut Vec<u64>| v[index]);
                        out.push(value);
                    }
                    Instr::AsyncCall { .. } => s.call(|_| {}),
                    Instr::Local(_) | Instr::OpaqueCall { .. } => {}
                }
            }
        };
        // Pre-header: reads element 0 (and establishes the first sync).
        let mut header_out = Vec::new();
        interpret(&function.blocks[0].instrs, 0, &mut header_out);
        // Loop body: one iteration per element.
        for i in 0..len {
            interpret(&function.blocks[1].instrs, i, &mut copied);
        }
        // Exit block: a final read, discarded.
        let mut exit_out = Vec::new();
        interpret(
            &function.blocks[2].instrs,
            len.saturating_sub(1),
            &mut exit_out,
        );
    });
    let elapsed = start.elapsed();
    let after = runtime.stats_snapshot();
    let delta = after.since(&before);

    CopyLoopReport {
        copied,
        syncs_performed: delta.syncs_performed,
        syncs_elided: delta.syncs_elided,
        static_syncs_in_ir: function.count_syncs(),
        read_reservations: delta.read_reservations,
        elapsed,
    }
}

/// Executes a Fig. 14-shaped function under a **shared-read reservation**
/// when the [`read_downgrade`] transform proves handler 0 read-only.
///
/// The sync-free loop shape (`Function::fig14_loop(n, false)` — i.e. what
/// static sync-coalescing plus the effect pass leave behind) has whole-
/// function effect `Read` on its only handler, so instead of an exclusive
/// `separate` block the reservation is taken via `reserve(&h).read()` and
/// each `QueryRead` executes directly on the client under the gate — zero
/// queue crossings and zero syncs.
///
/// # Panics
///
/// Panics if the effect pass cannot prove the function's handler 0
/// read-only (callers should pass a read-only shape).
pub fn execute_read_loop(config: RuntimeConfig, len: usize, function: &Function) -> CopyLoopReport {
    assert!(
        function.blocks.len() >= 3,
        "expected the Fig. 14 shape: pre-header, body, exit"
    );
    let report = read_downgrade(function);
    assert!(
        report.is_downgraded(0),
        "handler 0 of `{}` is not provably read-only ({:?})",
        function.name,
        report.effects
    );
    let function = &report.function;

    let runtime = Runtime::new(config);
    let source: Vec<u64> = (0..len as u64).collect();
    let handler = runtime.spawn_handler(source);

    let before = runtime.stats_snapshot();
    let start = Instant::now();
    let mut copied = Vec::with_capacity(len);
    reserve(&handler).read().run(|r| {
        let interpret = |instrs: &[Instr], index: usize, out: &mut Vec<u64>| {
            for instr in instrs {
                // A downgraded handler has no syncs or async calls by
                // construction; locals and readonly opaque calls are
                // no-ops here.
                if let Instr::QueryRead { .. } = instr {
                    out.push(r.query(|v: &Vec<u64>| v[index]));
                }
            }
        };
        let mut header_out = Vec::new();
        interpret(&function.blocks[0].instrs, 0, &mut header_out);
        for i in 0..len {
            interpret(&function.blocks[1].instrs, i, &mut copied);
        }
        let mut exit_out = Vec::new();
        interpret(
            &function.blocks[2].instrs,
            len.saturating_sub(1),
            &mut exit_out,
        );
    });
    let elapsed = start.elapsed();
    let after = runtime.stats_snapshot();
    let delta = after.since(&before);

    CopyLoopReport {
        copied,
        syncs_performed: delta.syncs_performed,
        syncs_elided: delta.syncs_elided,
        static_syncs_in_ir: function.count_syncs(),
        read_reservations: delta.read_reservations,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_runtime::OptimizationLevel;

    const LEN: usize = 256;

    #[test]
    fn copy_is_correct_in_all_variants() {
        for level in OptimizationLevel::ALL {
            for optimized in [false, true] {
                let report = execute_copy_loop(level.config(), LEN, optimized);
                assert_eq!(
                    report.copied,
                    (0..LEN as u64).collect::<Vec<_>>(),
                    "wrong copy under {level} optimized={optimized}"
                );
            }
        }
    }

    #[test]
    fn static_pass_removes_per_iteration_syncs() {
        // Unoptimised IR under the unoptimised runtime: one sync round-trip
        // per element (plus pre-header and exit).
        let naive = execute_copy_loop(OptimizationLevel::None.config(), LEN, false);
        assert!(naive.syncs_performed as usize >= LEN);

        // Statically optimised IR under the same runtime: a single sync.
        let optimized = execute_copy_loop(OptimizationLevel::Static.config(), LEN, true);
        assert_eq!(optimized.static_syncs_in_ir, 1);
        assert_eq!(optimized.syncs_performed, 1);
    }

    #[test]
    fn dynamic_coalescing_matches_static_round_trips() {
        // The dynamic runtime executes the *naive* IR but still performs only
        // one real round-trip; the rest are elided at run time (§3.4.1).
        let dynamic = execute_copy_loop(OptimizationLevel::Dynamic.config(), LEN, false);
        assert_eq!(dynamic.syncs_performed, 1);
        assert!(dynamic.syncs_elided as usize >= LEN);
    }

    #[test]
    fn ir_sync_counts_differ_between_variants() {
        let report_naive = execute_copy_loop(OptimizationLevel::All.config(), LEN, false);
        let report_opt = execute_copy_loop(OptimizationLevel::All.config(), LEN, true);
        assert_eq!(report_naive.static_syncs_in_ir, 3);
        assert_eq!(report_opt.static_syncs_in_ir, 1);
        assert_eq!(report_naive.copied, report_opt.copied);
    }

    #[test]
    fn read_loop_copies_correctly_under_the_gate() {
        let function = Function::fig14_loop(1, false);
        for level in OptimizationLevel::ALL {
            let report = execute_read_loop(level.config(), LEN, &function);
            assert_eq!(
                report.copied,
                (0..LEN as u64).collect::<Vec<_>>(),
                "wrong copy under {level}"
            );
            assert_eq!(report.syncs_performed, 0, "read path never syncs");
            assert_eq!(report.read_reservations, 1, "one shared-read block");
        }
    }

    #[test]
    #[should_panic(expected = "not provably read-only")]
    fn read_loop_rejects_writer_shapes() {
        let naive = Function::fig14_loop(1, true);
        let _ = execute_read_loop(OptimizationLevel::All.config(), LEN, &naive);
    }
}
