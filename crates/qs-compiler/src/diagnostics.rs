//! Structured diagnostics for the static passes.
//!
//! Every lint the toolchain produces — effect-inference verdicts from this
//! crate, reservation lints from `qs-lang`'s checker, capacity-cycle verdicts
//! from `qs-semantics`' static deadlock model — is reported through one
//! shape, [`Diagnostic`], so front ends and CI can consume them uniformly.
//! [`diagnostics_to_json`] renders a machine-readable dump (hand-rolled JSON,
//! like every other emitter in the workspace) that the golden lint-snapshot
//! test pins in CI.
//!
//! Diagnostic codes in use across the workspace:
//!
//! | code      | severity | meaning                                                  |
//! |-----------|----------|----------------------------------------------------------|
//! | `QS-E001` | error    | write through a `separate read` (read-only) reservation  |
//! | `QS-W001` | warning  | query-only block not downgraded: an impure query writes  |
//! | `QS-W002` | warning  | static deadlock: a reservation/capacity wait cycle       |
//! | `QS-N001` | note     | block proven read-only; `.read()` reservation emitted    |

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is rejected.
    Error,
    /// The program runs, but a hazard was detected.
    Warning,
    /// Informational: an optimisation or verdict worth surfacing.
    Note,
}

impl Severity {
    /// Lower-case label used in renderings.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A source location (1-based line and column), when one is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error / warning / note.
    pub severity: Severity,
    /// Source location, when the producer has one (`qs-semantics`' model
    /// programs have no source text, so its diagnostics carry `None`).
    pub span: Option<Span>,
    /// Stable machine-readable code (`QS-E001`, …).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span: None,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span: None,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Creates a note diagnostic.
    pub fn note(code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span: None,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, line: u32, col: u32) -> Self {
        self.span = Some(Span::new(line, col));
        self
    }

    /// Renders this diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        let span = match self.span {
            Some(span) => format!("{{\"line\": {}, \"col\": {}}}", span.line, span.col),
            None => "null".to_string(),
        };
        format!(
            "{{\"severity\": \"{}\", \"code\": \"{}\", \"span\": {}, \"message\": \"{}\"}}",
            self.severity,
            json_escape(&self.code),
            span,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(
                f,
                "{}[{}] at {}: {}",
                self.severity, self.code, span, self.message
            ),
            None => write!(f, "{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}

/// Renders a slice of diagnostics as a JSON array (one object per line, so
/// golden files diff readably).
pub fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> String {
    if diagnostics.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[\n");
    for (index, diagnostic) in diagnostics.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&diagnostic.to_json());
        if index + 1 < diagnostics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::Error < Severity::Warning);
        assert!(Severity::Warning < Severity::Note);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn renders_with_and_without_span() {
        let d =
            Diagnostic::error("QS-E001", "write through read-only reservation").with_span(3, 14);
        assert_eq!(
            d.to_string(),
            "error[QS-E001] at 3:14: write through read-only reservation"
        );
        assert!(d.to_json().contains("\"line\": 3"));

        let n = Diagnostic::note("QS-N001", "block downgraded");
        assert_eq!(n.to_string(), "note[QS-N001]: block downgraded");
        assert!(n.to_json().contains("\"span\": null"));
    }

    #[test]
    fn json_array_is_stable_and_escaped() {
        let list = vec![
            Diagnostic::warning("QS-W001", "impure query `push\"x\"` blocks downgrade"),
            Diagnostic::note("QS-N001", "line\nbreak"),
        ];
        let json = diagnostics_to_json(&list);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("line\\nbreak"));
        assert_eq!(diagnostics_to_json(&[]), "[]");
    }
}
