//! The sync-coalescing rewrite (§3.4.2, Fig. 14) and the read-downgrade
//! transform built on the effect analysis.
//!
//! Sync-coalescing is driven by the [`crate::analysis`] results: the pass
//! walks every block with the sync-set flowing into it and deletes `sync`
//! instructions whose handler is already synchronised, updating the running
//! set with the Fig. 13 transfer function as it goes.
//!
//! [`read_downgrade`] is its sibling on the [`crate::effects`] lattice: a
//! handler whose whole-function effect is at most [`Effect::Read`] is never
//! mutated through the function, so its reservation can be taken in shared
//! read mode ([`qs_runtime::Reservation::read`]) instead of exclusively —
//! the verdict [`crate::exec::execute_read_loop`] and the `qs-lang` front
//! end act on.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::analyze_sync_sets;
use crate::diagnostics::Diagnostic;
use crate::effects::{function_effects, Effect};
use crate::ir::{Function, HandlerVar, Instr};

/// Outcome of running the pass on one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceReport {
    /// The rewritten function.
    pub function: Function,
    /// Number of `sync` instructions in the input.
    pub syncs_before: usize,
    /// Number of `sync` instructions remaining after the pass.
    pub syncs_after: usize,
    /// Number of dataflow iterations used by the analysis.
    pub analysis_iterations: usize,
}

impl CoalesceReport {
    /// Number of sync instructions removed.
    pub fn syncs_removed(&self) -> usize {
        self.syncs_before - self.syncs_after
    }
}

/// Runs the sync-coalescing pass, returning the rewritten function and
/// statistics about how many syncs were eliminated.
pub fn coalesce_syncs(function: &Function) -> CoalesceReport {
    let sets = analyze_sync_sets(function);
    let universe = function.handler_universe();
    let syncs_before = function.count_syncs();

    let mut rewritten = function.clone();
    for (block_id, block) in rewritten.blocks.iter_mut().enumerate() {
        let mut synced: BTreeSet<_> = sets.entry_of(block_id).clone();
        let mut kept = Vec::with_capacity(block.instrs.len());
        for instr in block.instrs.drain(..) {
            match instr {
                Instr::Sync(h) => {
                    if synced.contains(&h) {
                        // Redundant: the handler is already synchronised on
                        // every path reaching this point.
                        continue;
                    }
                    synced.insert(h);
                    kept.push(Instr::Sync(h));
                }
                Instr::AsyncCall { handler, label } => {
                    for aliased in function.aliasing.may_alias(handler, &universe) {
                        synced.remove(&aliased);
                    }
                    kept.push(Instr::AsyncCall { handler, label });
                }
                Instr::OpaqueCall { readonly, label } => {
                    if !readonly {
                        synced.clear();
                    }
                    kept.push(Instr::OpaqueCall { readonly, label });
                }
                other @ (Instr::QueryRead { .. } | Instr::Local(_)) => kept.push(other),
            }
        }
        block.instrs = kept;
    }

    let syncs_after = rewritten.count_syncs();
    CoalesceReport {
        function: rewritten,
        syncs_before,
        syncs_after,
        analysis_iterations: sets.iterations,
    }
}

/// Outcome of the read-downgrade transform on one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDowngradeReport {
    /// The rewritten function (any sync on a downgraded handler removed; by
    /// construction downgraded handlers have none, so this is a defensive
    /// canonicalisation).
    pub function: Function,
    /// The inferred whole-function effect of every handler variable.
    pub effects: BTreeMap<HandlerVar, Effect>,
    /// Handlers proven read-only: their reservations may be taken in shared
    /// read mode.
    pub downgraded: BTreeSet<HandlerVar>,
}

impl ReadDowngradeReport {
    /// Whether the given handler's reservation was downgraded to read mode.
    pub fn is_downgraded(&self, handler: HandlerVar) -> bool {
        self.downgraded.contains(&handler)
    }

    /// One `QS-N001` note per downgraded handler, for the lint dump.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.downgraded
            .iter()
            .map(|handler| {
                Diagnostic::note(
                    "QS-N001",
                    format!(
                        "handler {handler} proven {} in `{}`: reservation downgraded to read mode",
                        self.effects.get(handler).copied().unwrap_or(Effect::Pure),
                        self.function.name
                    ),
                )
            })
            .collect()
    }
}

/// Runs the effect analysis and downgrades every provably read-only handler
/// reservation to shared-read mode.
///
/// Soundness: the analysis is alias-conservative (a write through any
/// possibly-aliasing variable poisons the handler) and treats opaque
/// non-`readonly` calls as writes to the whole universe, so a handler is
/// only downgraded when *no* path through the function can mutate its
/// object.  Queries on such a handler commute, which is exactly the
/// condition the runtime's shared-read gate requires.
pub fn read_downgrade(function: &Function) -> ReadDowngradeReport {
    let effects = function_effects(function);
    let downgraded: BTreeSet<HandlerVar> = effects
        .iter()
        .filter(|&(_, &effect)| effect <= Effect::Read)
        .map(|(&handler, _)| handler)
        .collect();

    let mut rewritten = function.clone();
    for block in &mut rewritten.blocks {
        block
            .instrs
            .retain(|instr| !matches!(instr, Instr::Sync(h) if downgraded.contains(h)));
    }

    ReadDowngradeReport {
        function: rewritten,
        effects,
        downgraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::AliasModel;

    #[test]
    fn fig14_keeps_only_the_first_sync() {
        let f = Function::fig14_loop(1, true);
        let report = coalesce_syncs(&f);
        assert_eq!(report.syncs_before, 3);
        assert_eq!(report.syncs_after, 1, "only B1's sync should remain");
        assert_eq!(report.syncs_removed(), 2);
        // The surviving sync is in the entry block.
        assert!(matches!(
            report.function.blocks[0].instrs.first(),
            Some(Instr::Sync(0))
        ));
        assert_eq!(
            report.function.blocks[1].instrs.len(),
            1,
            "loop body sync removed"
        );
        // Reads are untouched.
        assert!(report.function.blocks.iter().all(|b| b
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::QueryRead { .. }))));
    }

    #[test]
    fn fig14_with_many_reads_per_iteration() {
        let f = Function::fig14_loop(8, true);
        let report = coalesce_syncs(&f);
        assert_eq!(report.syncs_before, 10);
        assert_eq!(report.syncs_after, 1);
    }

    #[test]
    fn fig15_conservative_when_aliasing_unknown() {
        let f = Function::fig15_loop(AliasModel::MayAliasAll);
        let report = coalesce_syncs(&f);
        // The async call on a possibly-aliasing handler forces the loop body
        // and exit syncs to stay; only re-syncing within a straight line
        // would be removed, and there is none.
        assert_eq!(report.syncs_before, 3);
        assert_eq!(report.syncs_after, 3, "no coalescing under may-alias");
    }

    #[test]
    fn fig15_coalesces_with_alias_information() {
        let f = Function::fig15_loop(AliasModel::NoAlias);
        let report = coalesce_syncs(&f);
        assert_eq!(report.syncs_before, 3);
        assert_eq!(report.syncs_after, 1);
    }

    #[test]
    fn opaque_call_forces_resync() {
        let mut f = Function::new("opaque", AliasModel::NoAlias);
        f.add_block(
            vec![
                Instr::Sync(0),
                Instr::read(0, "r1"),
                Instr::OpaqueCall {
                    readonly: false,
                    label: "unknown()".into(),
                },
                Instr::Sync(0),
                Instr::read(0, "r2"),
            ],
            vec![],
        );
        let report = coalesce_syncs(&f);
        assert_eq!(report.syncs_after, 2, "the post-call sync must survive");

        let mut g = Function::new("opaque_ro", AliasModel::NoAlias);
        g.add_block(
            vec![
                Instr::Sync(0),
                Instr::OpaqueCall {
                    readonly: true,
                    label: "pure()".into(),
                },
                Instr::Sync(0),
            ],
            vec![],
        );
        let report = coalesce_syncs(&g);
        assert_eq!(report.syncs_after, 1, "readonly calls do not invalidate");
    }

    #[test]
    fn straight_line_duplicate_syncs_collapse() {
        let mut f = Function::new("dup", AliasModel::NoAlias);
        f.add_block(
            vec![
                Instr::Sync(0),
                Instr::Sync(0),
                Instr::Sync(1),
                Instr::Sync(0),
                Instr::async_call(0, "a"),
                Instr::Sync(0),
            ],
            vec![],
        );
        let report = coalesce_syncs(&f);
        // Kept: first sync(0), first sync(1), and the sync(0) after the async
        // call that invalidated handler 0.
        assert_eq!(report.syncs_after, 3);
    }

    #[test]
    fn pass_is_idempotent() {
        let f = Function::fig14_loop(4, true);
        let once = coalesce_syncs(&f);
        let twice = coalesce_syncs(&once.function);
        assert_eq!(once.function, twice.function);
        assert_eq!(twice.syncs_removed(), 0);
    }

    #[test]
    fn read_downgrade_proves_the_sync_free_loop() {
        let f = Function::fig14_loop(2, false);
        let report = read_downgrade(&f);
        assert!(report.is_downgraded(0));
        assert_eq!(report.effects[&0], Effect::Read);
        assert_eq!(report.function, f, "nothing to rewrite");
        let notes = report.diagnostics();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].code, "QS-N001");
        assert!(notes[0].message.contains("read mode"));
    }

    #[test]
    fn read_downgrade_refuses_writers_and_aliases() {
        // Naive codegen syncs make the handler a writer: no downgrade.
        let naive = Function::fig14_loop(1, true);
        assert!(read_downgrade(&naive).downgraded.is_empty());

        // A pure reader next to a writer downgrades only without aliasing.
        let mut f = Function::new("mixed", AliasModel::NoAlias);
        f.add_block(vec![Instr::read(0, "r"), Instr::async_call(1, "w")], vec![]);
        let report = read_downgrade(&f);
        assert!(report.is_downgraded(0));
        assert!(!report.is_downgraded(1));

        let mut g = Function::new("mixed_alias", AliasModel::MayAliasAll);
        g.add_block(vec![Instr::read(0, "r"), Instr::async_call(1, "w")], vec![]);
        assert!(read_downgrade(&g).downgraded.is_empty());
    }

    #[test]
    fn downgraded_handlers_never_carry_syncs() {
        // A sync forces the Write verdict, so downgraded handlers cannot
        // have syncs left in the rewritten function.
        for f in [
            Function::fig14_loop(3, true),
            Function::fig14_loop(3, false),
            Function::fig15_loop(AliasModel::NoAlias),
        ] {
            let report = read_downgrade(&f);
            for block in &report.function.blocks {
                for instr in &block.instrs {
                    if let Instr::Sync(h) = instr {
                        assert!(!report.is_downgraded(*h));
                    }
                }
            }
        }
    }
}
