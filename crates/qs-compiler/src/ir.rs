//! The miniature IR the sync-coalescing pass operates on.
//!
//! The IR models exactly the aspects of LLVM bitcode the pass cares about:
//! which instructions synchronise with a handler, which log asynchronous
//! calls (invalidating synchronisation), which are opaque calls that might do
//! either, and how basic blocks are connected.

use std::collections::BTreeSet;

/// A handler-valued variable in the program (e.g. the `h_p` / `i_p` private
/// queue pointers in Fig. 14/15).  Identified by a small index.
pub type HandlerVar = usize;

/// Identifier of a basic block within a [`Function`].
pub type BlockId = usize;

/// One IR instruction (the granularity relevant to the pass, Fig. 13).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `h.sync()` — a synchronisation with the handler `h`.
    Sync(HandlerVar),
    /// A read of handler-owned state that *requires* the handler to be
    /// synced (e.g. `x[i] := a[i]` in Fig. 14 reading `a` through `h_p`).
    /// The naive code generator emits a [`Instr::Sync`] immediately before
    /// each of these; the pass removes the redundant ones.
    QueryRead {
        /// Handler the read goes through.
        handler: HandlerVar,
        /// Symbolic label (for tests and pretty-printing).
        label: String,
    },
    /// `h.enqueue(...)` — an asynchronous call logged on handler `h`; it
    /// invalidates the synchronised status of `h` and of anything `h` may
    /// alias.
    AsyncCall {
        /// Handler the call is logged on.
        handler: HandlerVar,
        /// Symbolic label.
        label: String,
    },
    /// A local computation that touches no handler.
    Local(String),
    /// An arbitrary function call.  Unless `readonly` (LLVM's
    /// `readonly`/`readnone` attributes), it may log asynchronous calls on
    /// any handler and therefore clears the whole sync-set.
    OpaqueCall {
        /// Whether the callee is known not to issue asynchronous calls.
        readonly: bool,
        /// Symbolic label.
        label: String,
    },
}

impl Instr {
    /// Convenience constructor for a query read.
    pub fn read(handler: HandlerVar, label: &str) -> Self {
        Instr::QueryRead {
            handler,
            label: label.to_string(),
        }
    }

    /// Convenience constructor for an asynchronous call.
    pub fn async_call(handler: HandlerVar, label: &str) -> Self {
        Instr::AsyncCall {
            handler,
            label: label.to_string(),
        }
    }
}

/// A basic block: straight-line instructions plus successor edges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// The instructions, in order.
    pub instrs: Vec<Instr>,
    /// Successor blocks (empty for exit blocks).
    pub successors: Vec<BlockId>,
}

/// What the pass knows about aliasing between handler variables (Fig. 15).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasModel {
    /// Every pair of distinct handler variables is known not to alias
    /// (the "more aliasing information" case of Fig. 15).
    NoAlias,
    /// Any two handler variables may alias (the conservative default).
    MayAliasAll,
    /// Variables alias exactly when they are in the same class.
    Classes(Vec<BTreeSet<HandlerVar>>),
}

impl AliasModel {
    /// Returns the set of handler variables that may alias `var` (always
    /// including `var` itself).
    pub fn may_alias(
        &self,
        var: HandlerVar,
        universe: &BTreeSet<HandlerVar>,
    ) -> BTreeSet<HandlerVar> {
        match self {
            AliasModel::NoAlias => [var].into_iter().collect(),
            AliasModel::MayAliasAll => {
                let mut all = universe.clone();
                all.insert(var);
                all
            }
            AliasModel::Classes(classes) => {
                let mut result: BTreeSet<HandlerVar> = [var].into_iter().collect();
                for class in classes {
                    if class.contains(&var) {
                        result.extend(class.iter().copied());
                    }
                }
                result
            }
        }
    }
}

/// A function: a control-flow graph of basic blocks with an entry block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function name (for reports).
    pub name: String,
    /// Basic blocks; block 0 is the entry unless `entry` says otherwise.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// Aliasing information available to the pass.
    pub aliasing: AliasModel,
}

impl Function {
    /// Creates an empty function with the given aliasing model.
    pub fn new(name: &str, aliasing: AliasModel) -> Self {
        Function {
            name: name.to_string(),
            blocks: Vec::new(),
            entry: 0,
            aliasing,
        }
    }

    /// Adds a block and returns its id.
    pub fn add_block(&mut self, instrs: Vec<Instr>, successors: Vec<BlockId>) -> BlockId {
        self.blocks.push(Block { instrs, successors });
        self.blocks.len() - 1
    }

    /// All handler variables mentioned anywhere in the function.
    pub fn handler_universe(&self) -> BTreeSet<HandlerVar> {
        let mut universe = BTreeSet::new();
        for block in &self.blocks {
            for instr in &block.instrs {
                match instr {
                    Instr::Sync(h)
                    | Instr::QueryRead { handler: h, .. }
                    | Instr::AsyncCall { handler: h, .. } => {
                        universe.insert(*h);
                    }
                    _ => {}
                }
            }
        }
        universe
    }

    /// Predecessor map (block id → ids of blocks that jump to it).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.blocks.iter().enumerate() {
            for &succ in &block.successors {
                preds[succ].push(id);
            }
        }
        preds
    }

    /// Total number of [`Instr::Sync`] instructions in the function.
    pub fn count_syncs(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| matches!(i, Instr::Sync(_)))
            .count()
    }

    /// Builds the simple counted loop of Fig. 14: a pre-header (B1), a body
    /// (B2) that reads `reads_per_iteration` elements through handler 0, and
    /// an exit block (B3) that reads once more.  `naive` controls whether a
    /// sync is emitted before every read (naive code generation) or only the
    /// reads themselves are emitted.
    pub fn fig14_loop(reads_per_iteration: usize, naive: bool) -> Function {
        let mut f = Function::new("fig14_loop", AliasModel::NoAlias);
        let handler = 0;
        let mut header = Vec::new();
        if naive {
            header.push(Instr::Sync(handler));
        }
        header.push(Instr::read(handler, "x[i] := a[i]"));
        // Block ids are assigned in insertion order: B1 = 0, B2 = 1, B3 = 2.
        let b1 = f.add_block(header, vec![1, 2]);
        let mut body = Vec::new();
        for i in 0..reads_per_iteration {
            if naive {
                body.push(Instr::Sync(handler));
            }
            body.push(Instr::read(handler, &format!("x[{i}] := a[{i}]")));
        }
        let b2 = f.add_block(body, vec![1, 2]);
        let mut exit = Vec::new();
        if naive {
            exit.push(Instr::Sync(handler));
        }
        exit.push(Instr::read(handler, "tail read"));
        let b3 = f.add_block(exit, vec![]);
        debug_assert_eq!((b1, b2, b3), (0, 1, 2));
        f.entry = b1;
        f
    }

    /// Builds the Fig. 15 variant of the loop: the body additionally logs an
    /// asynchronous call through a *second* handler variable which, under the
    /// given aliasing model, may or may not alias the first.
    pub fn fig15_loop(aliasing: AliasModel) -> Function {
        let mut f = Function::new("fig15_loop", aliasing);
        let h = 0;
        let i = 1;
        f.add_block(
            vec![Instr::Sync(h), Instr::read(h, "x[i] := a[i]")],
            vec![1, 2],
        );
        f.add_block(
            vec![
                Instr::Sync(h),
                Instr::read(h, "x[i] := a[i]"),
                Instr::async_call(i, "i_p.enqueue(r)"),
            ],
            vec![1, 2],
        );
        f.add_block(vec![Instr::Sync(h), Instr::read(h, "tail read")], vec![]);
        f.entry = 0;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_and_predecessors_are_computed() {
        let mut f = Function::new("t", AliasModel::NoAlias);
        let b0 = f.add_block(vec![Instr::Sync(3), Instr::read(4, "r")], vec![1]);
        let b1 = f.add_block(vec![Instr::async_call(5, "a")], vec![]);
        assert_eq!(f.handler_universe(), [3, 4, 5].into_iter().collect());
        let preds = f.predecessors();
        assert!(preds[b0].is_empty());
        assert_eq!(preds[b1], vec![b0]);
    }

    #[test]
    fn fig14_naive_has_sync_per_block() {
        let f = Function::fig14_loop(1, true);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.count_syncs(), 3);
        let optimized_shape = Function::fig14_loop(1, false);
        assert_eq!(optimized_shape.count_syncs(), 0);
    }

    #[test]
    fn alias_model_answers_queries() {
        let universe: BTreeSet<_> = [0, 1, 2].into_iter().collect();
        assert_eq!(
            AliasModel::NoAlias.may_alias(0, &universe),
            [0].into_iter().collect()
        );
        assert_eq!(AliasModel::MayAliasAll.may_alias(0, &universe), universe);
        let classes = AliasModel::Classes(vec![[0, 1].into_iter().collect()]);
        assert_eq!(
            classes.may_alias(0, &universe),
            [0, 1].into_iter().collect()
        );
        assert_eq!(classes.may_alias(2, &universe), [2].into_iter().collect());
    }
}
