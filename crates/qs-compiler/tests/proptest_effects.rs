//! Seed-pinned property tests for the effect-inference analysis.
//!
//! The vendored proptest shim is deterministic (seeded from the test name,
//! overridable with `PROPTEST_RNG_SEED`), so these run the same inputs in CI
//! every time.  Three properties pin the analysis down:
//!
//! 1. on straight-line code the fixpoint agrees exactly with a naive
//!    one-pass oracle over the instruction list;
//! 2. the transfer function only ever widens (entry ≤ exit per handler per
//!    block) and the worklist fixpoint terminates in a bounded number of
//!    iterations even on dense random CFGs;
//! 3. whenever *any* block may write a handler, the whole-function verdict
//!    for that handler is `Write` — the soundness direction the read
//!    downgrade relies on.

use std::collections::BTreeMap;

use proptest::prelude::*;

use qs_compiler::{analyze_effects, function_effects, AliasModel, Effect, Function, Instr};

/// One randomly generated instruction, encoded as (kind, handler).
/// Kinds: 0 local, 1 query-read, 2 async call, 3 sync, 4 opaque readonly,
/// 5 opaque (may write anything).
fn decode(kind: u8, handler: usize) -> Instr {
    match kind {
        0 => Instr::Local("local".to_string()),
        1 => Instr::read(handler, "r"),
        2 => Instr::async_call(handler, "w"),
        3 => Instr::Sync(handler),
        4 => Instr::OpaqueCall {
            readonly: true,
            label: "pure()".to_string(),
        },
        _ => Instr::OpaqueCall {
            readonly: false,
            label: "unknown()".to_string(),
        },
    }
}

/// The straight-line oracle: a single forward scan, no CFG, no fixpoint.
/// Mirrors the documented transfer rules for the `NoAlias` model.
fn straight_line_oracle(function: &Function, instrs: &[Instr]) -> BTreeMap<usize, Effect> {
    let universe = function.handler_universe();
    let mut effects: BTreeMap<usize, Effect> =
        universe.iter().map(|&h| (h, Effect::Pure)).collect();
    let widen = |effects: &mut BTreeMap<usize, Effect>, handler: usize, effect: Effect| {
        let entry = effects.entry(handler).or_insert(Effect::Pure);
        *entry = entry.join(effect);
    };
    for instr in instrs {
        match instr {
            Instr::Local(_) => {}
            Instr::QueryRead { handler, .. } => widen(&mut effects, *handler, Effect::Read),
            Instr::AsyncCall { handler, .. } | Instr::Sync(handler) => {
                widen(&mut effects, *handler, Effect::Write)
            }
            Instr::OpaqueCall { readonly, .. } => {
                let effect = if *readonly {
                    Effect::Read
                } else {
                    Effect::Write
                };
                for &handler in &universe {
                    widen(&mut effects, handler, effect);
                }
            }
        }
    }
    effects
}

/// Whether `instr` may mutate `handler` under `NoAlias`.
fn may_write(instr: &Instr, handler: usize) -> bool {
    match instr {
        Instr::AsyncCall { handler: h, .. } | Instr::Sync(h) => *h == handler,
        Instr::OpaqueCall { readonly, .. } => !readonly,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn straight_line_effects_match_the_naive_oracle(
        ops in proptest::collection::vec((0u8..6, 0usize..3), 0..24)
    ) {
        let instrs: Vec<Instr> = ops.iter().map(|&(kind, handler)| decode(kind, handler)).collect();
        let mut function = Function::new("straight", AliasModel::NoAlias);
        function.add_block(instrs.clone(), vec![]);
        let oracle = straight_line_oracle(&function, &instrs);
        prop_assert_eq!(function_effects(&function), oracle);
    }

    #[test]
    fn transfer_only_widens_and_the_fixpoint_terminates(
        blocks in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..6, 0usize..3), 0..8),
                proptest::collection::vec(0usize..6, 0..3),
            ),
            1..6,
        )
    ) {
        let n = blocks.len();
        let mut function = Function::new("random_cfg", AliasModel::NoAlias);
        for (ops, successors) in &blocks {
            let instrs = ops.iter().map(|&(kind, handler)| decode(kind, handler)).collect();
            let successors = successors.iter().map(|s| s % n).collect();
            function.add_block(instrs, successors);
        }
        let sets = analyze_effects(&function);
        // Termination: each block can be re-queued at most once per lattice
        // step of each of the (≤ 3) handlers it carries; 64 per block is a
        // generous ceiling for these sizes.
        prop_assert!(sets.iterations <= n * 64, "{} iterations for {} blocks", sets.iterations, n);
        for block in 0..n {
            for (handler, entry_effect) in sets.entry_of(block) {
                let exit_effect = sets
                    .exit_of(block)
                    .get(handler)
                    .copied()
                    .unwrap_or(Effect::Pure);
                prop_assert!(exit_effect >= *entry_effect, "transfer narrowed {handler} in block {block}");
            }
        }
    }

    #[test]
    fn any_possible_write_forces_the_write_verdict(
        blocks in proptest::collection::vec(
            (
                proptest::collection::vec((0u8..6, 0usize..3), 0..8),
                proptest::collection::vec(0usize..6, 0..3),
            ),
            1..6,
        )
    ) {
        let n = blocks.len();
        let mut function = Function::new("soundness", AliasModel::NoAlias);
        for (ops, successors) in &blocks {
            let instrs = ops.iter().map(|&(kind, handler)| decode(kind, handler)).collect();
            let successors = successors.iter().map(|s| s % n).collect();
            function.add_block(instrs, successors);
        }
        let effects = function_effects(&function);
        for handler in function.handler_universe() {
            let written = function
                .blocks
                .iter()
                .flat_map(|block| block.instrs.iter())
                .any(|instr| may_write(instr, handler));
            if written {
                prop_assert_eq!(
                    effects.get(&handler),
                    Some(&Effect::Write),
                    "handler {} is written somewhere but not reported Write",
                    handler
                );
            } else {
                prop_assert!(
                    effects.get(&handler) <= Some(&Effect::Read),
                    "handler {} is never written yet reported {:?}",
                    handler,
                    effects.get(&handler)
                );
            }
        }
    }
}
