//! A work-stealing thread pool for `'static` tasks.
//!
//! Workers keep their own LIFO deques and steal FIFO from each other (the
//! Cilk/BWS discipline discussed in §6 of the paper); an injector queue feeds
//! external submissions.  The pool is used by the parallel (Cowichan)
//! workloads and by the baseline paradigms.  Handlers are scheduled
//! elsewhere: by default they are M:N multiplexed onto
//! [`crate::handler_scheduler::HandlerScheduler`] (which tolerates blocking
//! steps via compensation workers), with dedicated cached threads
//! ([`crate::thread_cache`]) as the opt-in alternative.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    shutdown: AtomicBool,
    /// Number of tasks submitted but not yet finished.
    pending: AtomicUsize,
    /// Number of workers currently parked.
    sleeping: AtomicUsize,
    /// Number of tasks that panicked.
    panicked: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    all_done_lock: Mutex<()>,
    all_done_cond: Condvar,
}

impl Shared {
    /// Runs one task, recording panics and signalling completion.
    fn execute(&self, task: Task) {
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.all_done_lock.lock();
            self.all_done_cond.notify_all();
        }
    }

    /// Steals one task from the injector or any worker deque, for threads
    /// that are not pool workers (or workers helping while they wait).
    fn steal_task(&self) -> Option<Task> {
        loop {
            match self.injector.steal() {
                crossbeam::deque::Steal::Success(task) => return Some(task),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
        for stealer in &self.stealers {
            loop {
                match stealer.steal() {
                    crossbeam::deque::Steal::Success(task) => return Some(task),
                    crossbeam::deque::Steal::Retry => continue,
                    crossbeam::deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn notify_one(&self) {
        if self.sleeping.load(Ordering::Acquire) > 0 {
            let _guard = self.idle_lock.lock();
            self.idle_cond.notify_one();
        }
    }

    fn notify_all(&self) {
        let _guard = self.idle_lock.lock();
        self.idle_cond.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
///
/// ```
/// use qs_exec::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let counter = Arc::clone(&counter);
///     pool.spawn(move || { counter.fetch_add(1, Ordering::SeqCst); });
/// }
/// pool.wait_idle();
/// assert_eq!(counter.load(Ordering::SeqCst), 100);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers_local: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers_local.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            sleeping: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            all_done_lock: Mutex::new(()),
            all_done_cond: Condvar::new(),
        });
        let workers = workers_local
            .into_iter()
            .enumerate()
            .map(|(index, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qs-worker-{index}"))
                    .spawn(move || worker_loop(index, local, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Creates a pool sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(crate::default_parallelism())
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a task for execution.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(task));
        self.shared.notify_one();
    }

    /// Blocks until every submitted task has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.all_done_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.all_done_cond.wait(&mut guard);
        }
    }

    /// Attempts to steal and execute one pending task on the calling thread.
    ///
    /// Returns `true` if a task was run.  Used by [`crate::scope`] so that a
    /// thread blocked at the end of a scope (possibly itself a pool worker)
    /// helps drain the pool instead of deadlocking it.
    pub fn help_run_one(&self) -> bool {
        match self.shared.steal_task() {
            Some(task) => {
                self.shared.execute(task);
                true
            }
            None => false,
        }
    }

    /// Number of tasks that panicked since the pool was created.
    pub fn panicked_tasks(&self) -> usize {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Number of tasks submitted but not yet completed.
    pub fn pending_tasks(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn find_task(index: usize, local: &Worker<Task>, shared: &Shared) -> Option<Task> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    // Drain the injector into the local queue, then steal from siblings.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(task) => return Some(task),
            crossbeam::deque::Steal::Retry => continue,
            crossbeam::deque::Steal::Empty => break,
        }
    }
    for (victim, stealer) in shared.stealers.iter().enumerate() {
        if victim == index {
            continue;
        }
        loop {
            match stealer.steal() {
                crossbeam::deque::Steal::Success(task) => return Some(task),
                crossbeam::deque::Steal::Retry => continue,
                crossbeam::deque::Steal::Empty => break,
            }
        }
    }
    None
}

fn worker_loop(index: usize, local: Worker<Task>, shared: Arc<Shared>) {
    loop {
        if let Some(task) = find_task(index, &local, &shared) {
            shared.execute(task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Nothing to do: park on the idle condvar.
        let mut guard = shared.idle_lock.lock();
        // Re-check for work while holding the lock so a submission cannot be
        // missed between the failed `find_task` and the wait.
        if shared.shutdown.load(Ordering::Acquire)
            || !shared.injector.is_empty()
            || shared.pending.load(Ordering::Acquire) > 0
        {
            continue;
        }
        shared.sleeping.fetch_add(1, Ordering::AcqRel);
        shared.idle_cond.wait(&mut guard);
        shared.sleeping.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1_000 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 1_000);
        assert_eq!(pool.pending_tasks(), 0);
    }

    #[test]
    fn at_least_one_thread_even_if_zero_requested() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        pool.spawn(move || d.store(true, Ordering::SeqCst));
        pool.wait_idle();
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn tasks_spawned_from_tasks_complete() {
        let pool = Arc::new(ThreadPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                for _ in 0..10 {
                    let counter = Arc::clone(&counter);
                    pool2.spawn(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn panicking_task_does_not_kill_the_pool() {
        let pool = ThreadPool::new(2);
        pool.spawn(|| panic!("task failure"));
        let ok = Arc::new(AtomicBool::new(false));
        let ok2 = Arc::clone(&ok);
        pool.spawn(move || ok2.store(true, Ordering::SeqCst));
        pool.wait_idle();
        assert!(ok.load(Ordering::SeqCst));
        assert_eq!(pool.panicked_tasks(), 1);
    }

    #[test]
    fn wait_idle_with_no_tasks_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.wait_idle();
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}
