//! Recycled OS threads for handlers (the "lightweight thread" substitution).
//!
//! In SCOOP every object has a handler, and programs create and retire
//! handlers frequently — the paper's prototype keeps this cheap with
//! user-level threads.  This module amortises thread creation instead: when a
//! handler shuts down, its OS thread parks itself in a global cache and is
//! handed to the next handler that starts.  The observable effect (cheap
//! handler creation and teardown) matches what the benchmarks exercise.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Slot through which a cached thread receives its next job.
struct Mailbox {
    job: Mutex<Option<MailboxCommand>>,
    signal: Condvar,
}

enum MailboxCommand {
    Run(Job),
    Retire,
}

/// A cache of parked OS threads that can each run one job at a time.
///
/// ```
/// use qs_exec::ThreadCache;
/// use std::sync::{Arc, atomic::{AtomicBool, Ordering}};
///
/// let cache = ThreadCache::new(8);
/// let done = Arc::new(AtomicBool::new(false));
/// let d = Arc::clone(&done);
/// let handle = cache.run(move || d.store(true, Ordering::SeqCst));
/// handle.join();
/// assert!(done.load(Ordering::SeqCst));
/// ```
pub struct ThreadCache {
    idle: Mutex<VecDeque<Arc<Mailbox>>>,
    max_cached: usize,
    created: AtomicUsize,
    reused: AtomicUsize,
    /// Once set, finishing threads exit instead of parking, so a cache whose
    /// owner (e.g. a `Runtime`) has gone away does not keep OS threads alive.
    closed: AtomicBool,
}

impl ThreadCache {
    /// Creates a cache keeping at most `max_cached` idle threads alive.
    pub fn new(max_cached: usize) -> Arc<Self> {
        Arc::new(ThreadCache {
            idle: Mutex::new(VecDeque::new()),
            max_cached,
            created: AtomicUsize::new(0),
            reused: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        })
    }

    /// Number of OS threads ever created by this cache.
    pub fn threads_created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Number of times a cached thread was reused instead of creating one.
    pub fn threads_reused(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }

    /// Number of currently idle cached threads.
    pub fn idle_threads(&self) -> usize {
        self.idle.lock().len()
    }

    /// Runs `job` on a cached thread (or a freshly created one), returning a
    /// handle that can be joined.
    pub fn run<F>(self: &Arc<Self>, job: F) -> CachedThread
    where
        F: FnOnce() + Send + 'static,
    {
        let finished = Arc::new(Completion::new());
        let completion = Arc::clone(&finished);
        let wrapped: Job = Box::new(move || {
            // The job itself may panic; completion must still be signalled so
            // `join` cannot hang.  The panic is recorded, not propagated,
            // matching handler semantics (a dead handler, not a dead pool).
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            completion.finish(result.is_err());
        });

        let reused = self.idle.lock().pop_front();
        match reused {
            Some(mailbox) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                let mut slot = mailbox.job.lock();
                *slot = Some(MailboxCommand::Run(wrapped));
                mailbox.signal.notify_one();
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                let cache = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!(
                        "qs-handler-{}",
                        self.created.load(Ordering::Relaxed)
                    ))
                    .spawn(move || cached_thread_loop(cache, wrapped))
                    .expect("failed to spawn handler thread");
            }
        }
        CachedThread { finished }
    }

    /// Shuts the cache down: retires every idle thread and makes threads that
    /// finish their current job exit instead of parking.  Called by the
    /// owners of a cache (e.g. `qs-runtime`'s `Runtime`) when they are
    /// dropped, so repeatedly creating and dropping runtimes does not
    /// accumulate parked OS threads.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::Release);
        self.retire_idle();
    }

    /// Returns `true` once [`shutdown`](Self::shutdown) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Retires all currently idle threads (they exit instead of waiting for
    /// another job).  Threads running jobs are unaffected.
    pub fn retire_idle(&self) {
        let mut idle = self.idle.lock();
        for mailbox in idle.drain(..) {
            let mut slot = mailbox.job.lock();
            *slot = Some(MailboxCommand::Retire);
            mailbox.signal.notify_one();
        }
    }

    /// Returns the mailbox to the idle list, or signals the thread to exit if
    /// the cache is full.  Returns `true` if the thread should keep running.
    fn park_thread(&self, mailbox: &Arc<Mailbox>) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let mut idle = self.idle.lock();
        if idle.len() >= self.max_cached {
            return false;
        }
        idle.push_back(Arc::clone(mailbox));
        true
    }
}

fn cached_thread_loop(cache: Arc<ThreadCache>, first_job: Job) {
    let mailbox = Arc::new(Mailbox {
        job: Mutex::new(None),
        signal: Condvar::new(),
    });
    first_job();
    loop {
        if !cache.park_thread(&mailbox) {
            return;
        }
        let job = {
            let mut slot = mailbox.job.lock();
            while slot.is_none() {
                mailbox.signal.wait(&mut slot);
            }
            slot.take().expect("job present after wait")
        };
        match job {
            MailboxCommand::Run(job) => job(),
            MailboxCommand::Retire => return,
        }
    }
}

/// Completion state shared between a running job and its [`CachedThread`].
struct Completion {
    done: Mutex<Option<bool>>,
    cond: Condvar,
    panicked: AtomicBool,
}

impl Completion {
    fn new() -> Self {
        Completion {
            done: Mutex::new(None),
            cond: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn finish(&self, panicked: bool) {
        self.panicked.store(panicked, Ordering::Release);
        *self.done.lock() = Some(panicked);
        self.cond.notify_all();
    }
}

/// Handle to a job running on a cached thread.
pub struct CachedThread {
    finished: Arc<Completion>,
}

impl CachedThread {
    /// Blocks until the job finishes.  Returns `true` if the job panicked.
    pub fn join(self) -> bool {
        let mut done = self.finished.done.lock();
        while done.is_none() {
            self.finished.cond.wait(&mut done);
        }
        done.expect("completion recorded")
    }

    /// Returns `true` if the job has already finished.
    pub fn is_finished(&self) -> bool {
        self.finished.done.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_joins() {
        let cache = ThreadCache::new(4);
        let value = Arc::new(AtomicUsize::new(0));
        let v = Arc::clone(&value);
        let handle = cache.run(move || {
            v.store(7, Ordering::SeqCst);
        });
        assert!(!handle.join());
        assert_eq!(value.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn threads_are_reused_between_jobs() {
        let cache = ThreadCache::new(4);
        for _ in 0..10 {
            cache.run(|| {}).join();
        }
        assert!(
            cache.threads_created() < 10,
            "expected reuse; created {} threads",
            cache.threads_created()
        );
        assert!(cache.threads_reused() > 0);
    }

    #[test]
    fn cache_limit_is_respected() {
        let cache = ThreadCache::new(1);
        let handles: Vec<_> = (0..4)
            .map(|_| cache.run(|| std::thread::sleep(Duration::from_millis(10))))
            .collect();
        for h in handles {
            h.join();
        }
        // Give threads a moment to park or exit.
        std::thread::sleep(Duration::from_millis(50));
        assert!(cache.idle_threads() <= 1);
    }

    #[test]
    fn panicking_job_reports_through_join() {
        let cache = ThreadCache::new(2);
        let handle = cache.run(|| panic!("handler body panicked"));
        assert!(handle.join());
        // The cache stays usable afterwards.
        assert!(!cache.run(|| {}).join());
    }

    #[test]
    fn is_finished_transitions() {
        let cache = ThreadCache::new(2);
        let handle = cache.run(|| std::thread::sleep(Duration::from_millis(30)));
        assert!(!handle.is_finished());
        std::thread::sleep(Duration::from_millis(100));
        assert!(handle.is_finished());
        handle.join();
    }

    #[test]
    fn retire_idle_empties_the_cache() {
        let cache = ThreadCache::new(8);
        for _ in 0..4 {
            cache.run(|| {}).join();
        }
        std::thread::sleep(Duration::from_millis(50));
        cache.retire_idle();
        assert_eq!(cache.idle_threads(), 0);
    }

    #[test]
    fn many_concurrent_jobs_complete() {
        let cache = ThreadCache::new(8);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let counter = Arc::clone(&counter);
                cache.run(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }
}
