//! A work-stealing deque: owner-LIFO, thief-FIFO.
//!
//! The scheduling literature the paper builds on (Cilk-style work stealing,
//! §6 "Related Work") keeps one deque per worker: the owner pushes and pops
//! at one end (LIFO, for locality and depth-first execution of fork/join
//! work), thieves steal from the other end (FIFO, taking the oldest — and
//! typically largest — piece of work).  This module provides that structure
//! with a short critical section per operation: a spinlock-protected ring
//! plus an atomic length that lets thieves skip empty deques without ever
//! touching the lock, which is where almost all steal attempts end in a
//! balanced system.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use qs_sync::SpinLock;

struct DequeShared<T> {
    items: SpinLock<VecDeque<T>>,
    /// Cached length so thieves can skip empty deques without locking.
    len: AtomicUsize,
    /// Number of successful steals (statistics).
    steals: AtomicU64,
    /// Number of owner pops (statistics).
    owner_pops: AtomicU64,
}

/// The owner half of a work-stealing deque.  Not `Clone`: exactly one worker
/// pushes and pops locally.
pub struct Worker<T> {
    shared: Arc<DequeShared<T>>,
}

/// The thief half: cheap to clone and share with every other worker.
pub struct Stealer<T> {
    shared: Arc<DequeShared<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Creates a connected worker/stealer pair.
pub fn steal_deque<T>() -> (Worker<T>, Stealer<T>) {
    let shared = Arc::new(DequeShared {
        items: SpinLock::new(VecDeque::new()),
        len: AtomicUsize::new(0),
        steals: AtomicU64::new(0),
        owner_pops: AtomicU64::new(0),
    });
    (
        Worker {
            shared: Arc::clone(&shared),
        },
        Stealer { shared },
    )
}

impl<T> Worker<T> {
    /// Pushes a task onto the owner's end.
    pub fn push(&self, value: T) {
        let mut items = self.shared.items.lock();
        items.push_back(value);
        self.shared.len.store(items.len(), Ordering::Release);
    }

    /// Pops the most recently pushed task (LIFO), if any.
    pub fn pop(&self) -> Option<T> {
        if self.shared.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut items = self.shared.items.lock();
        let value = items.pop_back();
        self.shared.len.store(items.len(), Ordering::Release);
        if value.is_some() {
            self.shared.owner_pops.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Number of queued tasks (racy snapshot).
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::Acquire)
    }

    /// Whether the deque is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of tasks taken by thieves so far.
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Number of tasks the owner popped locally so far.
    pub fn owner_pop_count(&self) -> u64 {
        self.shared.owner_pops.load(Ordering::Relaxed)
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task (FIFO end), if any.
    pub fn steal(&self) -> Option<T> {
        if self.shared.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut items = self.shared.items.lock();
        let value = items.pop_front();
        self.shared.len.store(items.len(), Ordering::Release);
        if value.is_some() {
            self.shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Steals up to half of the queued tasks in one grab (batch stealing
    /// reduces contention on very imbalanced loads).
    pub fn steal_batch(&self, limit: usize) -> Vec<T> {
        if limit == 0 || self.shared.len.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut items = self.shared.items.lock();
        let take = (items.len() / 2).clamp(usize::from(!items.is_empty()), limit);
        let mut stolen = Vec::with_capacity(take);
        for _ in 0..take {
            match items.pop_front() {
                Some(value) => stolen.push(value),
                None => break,
            }
        }
        self.shared.len.store(items.len(), Ordering::Release);
        self.shared
            .steals
            .fetch_add(stolen.len() as u64, Ordering::Relaxed);
        stolen
    }

    /// Whether the deque looks empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.shared.len.load(Ordering::Acquire) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_and_thief_is_fifo() {
        let (worker, stealer) = steal_deque();
        for i in 0..4 {
            worker.push(i);
        }
        assert_eq!(worker.pop(), Some(3), "owner takes the newest");
        assert_eq!(stealer.steal(), Some(0), "thief takes the oldest");
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(stealer.steal(), Some(1));
        assert_eq!(worker.pop(), None);
        assert_eq!(stealer.steal(), None);
    }

    #[test]
    fn lengths_and_counters_track_operations() {
        let (worker, stealer) = steal_deque();
        assert!(worker.is_empty() && stealer.is_empty());
        for i in 0..10 {
            worker.push(i);
        }
        assert_eq!(worker.len(), 10);
        worker.pop();
        stealer.steal();
        assert_eq!(worker.len(), 8);
        assert_eq!(worker.owner_pop_count(), 1);
        assert_eq!(worker.steal_count(), 1);
    }

    #[test]
    fn batch_steal_takes_about_half() {
        let (worker, stealer) = steal_deque();
        for i in 0..16 {
            worker.push(i);
        }
        let stolen = stealer.steal_batch(64);
        assert_eq!(stolen, (0..8).collect::<Vec<_>>());
        assert_eq!(worker.len(), 8);
        // Limit caps the batch.
        let stolen = stealer.steal_batch(2);
        assert_eq!(stolen.len(), 2);
        // A single remaining item is still stolen (never rounds down to 0).
        let (w2, s2) = steal_deque();
        w2.push(42);
        assert_eq!(s2.steal_batch(8), vec![42]);
    }

    #[test]
    fn concurrent_producers_and_thieves_lose_nothing() {
        use std::sync::atomic::AtomicBool;

        let (worker, stealer) = steal_deque::<u64>();
        let worker = Arc::new(worker);
        let done = Arc::new(AtomicBool::new(false));
        const ITEMS: u64 = 20_000;

        let producer = {
            let worker = Arc::clone(&worker);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut owner_taken = Vec::new();
                for i in 0..ITEMS {
                    worker.push(i);
                    if i % 3 == 0 {
                        if let Some(v) = worker.pop() {
                            owner_taken.push(v);
                        }
                    }
                }
                done.store(true, Ordering::Release);
                owner_taken
            })
        };
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let stealer = stealer.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut taken = Vec::new();
                    loop {
                        match stealer.steal() {
                            Some(v) => taken.push(v),
                            None => {
                                if done.load(Ordering::Acquire) && stealer.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    taken
                })
            })
            .collect();

        let mut all = producer.join().unwrap();
        // Drain what is left after the producer stopped.
        while let Some(v) = worker.pop() {
            all.push(v);
        }
        for thief in thieves {
            all.extend(thief.join().unwrap());
        }
        // Thieves may exit before the tail is drained; collect the remainder.
        while let Some(v) = stealer.steal() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ITEMS as usize, "tasks lost or duplicated");
    }
}
