//! M:N scheduling of handlers: many resumable tasks on a small
//! work-stealing worker pool.
//!
//! The paper keeps handler creation cheap with user-level threads (§3); the
//! dedicated-thread substitution ([`crate::thread_cache`]) caps the number
//! of *live* handlers at the number of OS threads the machine tolerates,
//! because an idle handler blocks its thread inside a queue dequeue.  This
//! module removes that cap: a handler is rewritten as a [`PooledTask`] whose
//! [`step`](PooledTask::step) *returns* when its queues are empty, and the
//! [`HandlerScheduler`] re-arms it when a producer signals new work through
//! the task's [`TaskHandle`].  Fifty thousand mostly-idle handlers then cost
//! fifty thousand small task structs, not fifty thousand OS threads.
//!
//! # The schedule-flag protocol
//!
//! Each task carries one atomic flag with five states — `Idle`, `Scheduled`,
//! `Running`, `Notified` (running with a wake pending) and `Done` — which
//! guarantees the two properties an M:N handler loop needs:
//!
//! * **a task is never enqueued twice**: only the `Idle → Scheduled` and
//!   `Running → Idle`-failed transitions enqueue, and both are CAS-guarded;
//! * **a wake is never lost**: a notify that finds the task `Running` moves
//!   it to `Notified`, and the worker's `Running → Idle` CAS then fails and
//!   reschedules instead of parking, so work enqueued *while* the task was
//!   deciding to go idle is always seen.
//!
//! Producers therefore do not need to detect empty→nonempty transitions;
//! they notify on every enqueue and the flag collapses the duplicates.
//!
//! # The pressure lane
//!
//! Wakes come in two flavours: plain [`TaskHandle::notify`] and
//! [`TaskHandle::notify_pressure`], fired by producers that crossed a
//! bounded queue's half-full watermark or blocked on a full one.
//! Pressure-woken tasks enter a dedicated FIFO consulted before the
//! injector, the deques and every worker's LIFO slot, so the consumer of a
//! backpressured pipeline runs promptly instead of queueing behind
//! burst-mode peers — the scheduling half of restoring the fine
//! producer/consumer interleaving dedicated threads get from the OS futex.
//! Budget-exhausted (`Yielded`) tasks re-enter through the global FIFO
//! rather than the owner's LIFO deque, so one hot handler cannot starve its
//! deque peers between shared polls.
//!
//! # Blocking edges and compensation
//!
//! A handler step may block: a request closure can enter a nested separate
//! block, wait on a query, or stall on bounded-mailbox backpressure.  A
//! blocked step pins its worker, and with every worker pinned the pool would
//! deadlock even though runnable tasks are queued.  The scheduler
//! compensates instead of requiring annotations: a monitor thread watches
//! for "runnable tasks, no sleeping worker, and every core worker pinned
//! inside its current step for at least `STALL_THRESHOLD` (100ms)" and
//! spawns an
//! extra worker (up to [`MAX_EXTRA_WORKERS`]), which retires once the queue
//! calms down.  This is the detect-and-spawn strategy of classic M:N
//! runtimes, traded for the simplicity of not distinguishing blocking from
//! non-blocking handler bodies.
//!
//! "Pinned for a long time" alone is not proof of blocking: on an
//! oversubscribed box a CPU-bound step can be preempted past the threshold,
//! and spawning more threads there only worsens the oversubscription.  The
//! monitor therefore samples each pinned worker's *thread CPU time* from
//! `/proc/self/task/<tid>/stat` and compensates only when at least one
//! pinned worker is genuinely off-CPU (futex-parked on a blocking edge).
//! Where procfs is unavailable the monitor falls back to treating every
//! long-pinned step as blocked.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use qs_queues::MutexQueue;
use qs_sync::Backoff;

use crate::deque::{steal_deque, Stealer, Worker};

/// What a [`PooledTask::step`] reports back to its scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Out of immediately available work; the task parks until the next
    /// [`TaskHandle::notify`].
    Idle,
    /// The yield budget ran out with work still pending; reschedule so other
    /// tasks get the worker (fairness).
    Yielded,
    /// The task terminated; it is never scheduled again and further notifies
    /// are no-ops.
    Done,
}

/// A resumable task multiplexed onto the scheduler's workers.
///
/// `step` must *poll*, never block on "queue empty": when it finds no
/// immediately available work it returns [`StepOutcome::Idle`] and relies on
/// a producer calling [`TaskHandle::notify`] after enqueuing.  The scheduler
/// runs at most one `step` of a given task at a time, so implementations may
/// keep interior mutable loop state behind an uncontended lock.
pub trait PooledTask: Send + Sync + 'static {
    /// Runs until out of work, out of budget, or done.
    fn step(&self) -> StepOutcome;
}

// Schedule-flag states.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// Upper bound on live compensation workers; far above what any reasonable
/// blocking-edge chain needs, low enough to turn a runaway into a visible
/// plateau instead of thread exhaustion.
pub const MAX_EXTRA_WORKERS: usize = 1024;

/// How often the monitor checks for a stalled pool while tasks are
/// runnable.
const MONITOR_INTERVAL: Duration = Duration::from_millis(1);

/// Monitor tick while the pool is idle (nothing queued): nothing to
/// compensate for, so the monitor mostly sleeps.
const IDLE_MONITOR_INTERVAL: Duration = Duration::from_millis(25);

/// A core worker counts as blocked once it has been inside one step this
/// long.  Long enough that ordinary steps (bounded by the caller's yield
/// budget) and OS preemption on oversubscribed boxes do not trigger
/// spurious compensation, short enough that a genuine blocking-edge
/// deadlock resolves in a fraction of a second per chain link.
const STALL_THRESHOLD: Duration = Duration::from_millis(100);

/// Pause after spawning a compensation worker, giving it time to drain the
/// queue before the monitor re-evaluates (bounds the spawn rate during one
/// long stall).
const POST_SPAWN_PAUSE: Duration = Duration::from_millis(25);

struct TaskState {
    /// Cleared when the task reaches `Done`.  Handles commonly sit inside
    /// the task's own wake plumbing (a handler core owns the hook closure
    /// owning this state, while the task owns the core), so dropping the
    /// task reference at the terminal transition is what breaks that cycle
    /// and lets a finished task's resources free while notify handles
    /// linger.
    task: Mutex<Option<Arc<dyn PooledTask>>>,
    flag: AtomicU8,
    /// Set by [`TaskHandle::notify_pressure`]; consumed (and cleared) at the
    /// next enqueue decision, routing the task through the priority lane.
    /// Kept separate from the schedule flag so a pressure wake arriving
    /// while the task is `Running`/`Scheduled` still upgrades its next
    /// enqueue.
    pressure: AtomicBool,
    scheduler: Weak<Shared>,
}

impl TaskState {
    /// The task to step, if not yet done.
    fn task(&self) -> Option<Arc<dyn PooledTask>> {
        self.task.lock().clone()
    }

    /// Terminal transition: mark done and release the task reference.
    fn mark_done(&self) {
        self.flag.store(DONE, Ordering::SeqCst);
        *self.task.lock() = None;
    }
}

/// Shared handle to a registered task; producers call
/// [`notify`](TaskHandle::notify) after making work available.
pub struct TaskHandle {
    state: Arc<TaskState>,
}

impl Clone for TaskHandle {
    fn clone(&self) -> Self {
        TaskHandle {
            state: Arc::clone(&self.state),
        }
    }
}

impl TaskHandle {
    /// Wakes the task: schedules it if idle, or flags the running step to
    /// re-check its queues before parking.  Returns `true` when this call
    /// transitioned the task from idle to scheduled (a "handler wakeup");
    /// duplicates and notifies against running/done tasks return `false`.
    pub fn notify(&self) -> bool {
        loop {
            match self.state.flag.load(Ordering::SeqCst) {
                IDLE => {
                    if self
                        .state
                        .flag
                        .compare_exchange(IDLE, SCHEDULED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        schedule(Arc::clone(&self.state));
                        return true;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .flag
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return false;
                    }
                }
                // SCHEDULED, NOTIFIED, DONE: the wake is already covered.
                _ => return false,
            }
        }
    }

    /// A *pressure wake*: like [`notify`](TaskHandle::notify), but the task
    /// is routed through the scheduler's priority lane — consulted before
    /// every worker's LIFO deque — so a consumer whose producer is blocked
    /// (or nearly blocked) on a bounded queue runs promptly instead of
    /// queueing behind burst-mode peers.  The runtime also routes guard
    /// wakes here: clients parked on a `reserve().when` condition resume
    /// only after this task processes the block that may satisfy it, so
    /// delaying the task delays them too.
    ///
    /// The pressure marking is sticky until the task's next enqueue: a
    /// pressure wake that finds the task `Running` or already `Scheduled`
    /// still upgrades its next trip through the queues.
    pub fn notify_pressure(&self) -> bool {
        self.state.pressure.store(true, Ordering::SeqCst);
        self.notify()
    }

    /// Returns `true` once the task reported [`StepOutcome::Done`].
    pub fn is_done(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst) == DONE
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

/// Hands a `Scheduled` task to the pool, or — when the scheduler is gone or
/// shut down — runs it inline on the calling thread so a task with pending
/// work can never be stranded.
fn schedule(state: Arc<TaskState>) {
    match state.scheduler.upgrade() {
        Some(shared) if !shared.shutdown.load(Ordering::Acquire) => {
            enqueue_runnable(&shared, state)
        }
        _ => run_inline(&state),
    }
}

/// Routes a `Scheduled` task into the priority lane when a pressure wake is
/// pending for it, the plain injector otherwise.  Consuming the pressure
/// flag here (the single enqueue decision point) means a pressure wake
/// arriving at any flag state upgrades exactly one subsequent enqueue.
fn enqueue_runnable(shared: &Arc<Shared>, state: Arc<TaskState>) {
    if state.pressure.swap(false, Ordering::SeqCst) {
        qs_obs::trace(qs_obs::TraceKind::SchedPressure, 0, 0);
        shared.enqueue_priority(state);
    } else {
        shared.enqueue(state);
    }
}

/// Degraded post-shutdown execution: step the task to quiescence on the
/// current (producer) thread.  Notifies arriving mid-step are honoured by
/// the same flag protocol the pool uses.
fn run_inline(state: &Arc<TaskState>) {
    let Some(task) = state.task() else {
        return;
    };
    loop {
        // Inline execution consumes any pending pressure marking: the wake
        // it requested is happening right now.
        state.pressure.store(false, Ordering::SeqCst);
        state.flag.store(RUNNING, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| task.step())).unwrap_or(StepOutcome::Done);
        match outcome {
            StepOutcome::Done => {
                state.mark_done();
                return;
            }
            StepOutcome::Yielded => continue,
            StepOutcome::Idle => {
                if state
                    .flag
                    .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return;
                }
                // Notified while running: step again.
            }
        }
    }
}

struct Shared {
    /// External (non-worker) submissions and post-yield overflow.
    injector: MutexQueue<Arc<TaskState>>,
    /// The pressure lane: tasks whose producers are blocked (or nearly
    /// blocked) on a bounded queue.  Consulted before the injector, the
    /// deques *and* each worker's LIFO slot, so a backpressured pipeline's
    /// consumer never queues behind burst-mode peers.  Every
    /// `SHARED_POLL_INTERVAL`th acquisition inverts the order (plain
    /// sources first) so a perpetually-pressured pipeline cannot starve
    /// plain-woken tasks.
    priority: MutexQueue<Arc<TaskState>>,
    /// Lock-free occupancy count of `priority`: workers check it before
    /// touching the lane's mutex, keeping the (overwhelmingly common)
    /// pressure-free acquisition path free of the global lock.
    priority_len: AtomicUsize,
    /// Thief handles onto every core worker's deque.
    stealers: Vec<Stealer<Arc<TaskState>>>,
    /// Tasks currently sitting in the injector or a deque.
    queued: AtomicUsize,
    /// Core workers currently parked.
    sleeping: AtomicUsize,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    /// Clock origin for the per-worker step timestamps.
    epoch: std::time::Instant,
    /// Per core worker: `1 + millis-since-epoch` at which its current step
    /// began, or 0 while between steps.  The monitor reads these to decide
    /// whether every worker is pinned inside a (probably blocking) step.
    step_started: Vec<AtomicU64>,
    /// Per core worker: OS thread id (0 while unknown / unsupported), used
    /// by the monitor to sample per-thread CPU time from `/proc`.
    worker_tids: Vec<AtomicU64>,
    /// Steps started (statistics).
    steps: AtomicU64,
    steals: AtomicU64,
    panics: AtomicU64,
    /// Tasks enqueued through the pressure lane (statistics).
    pressure_scheduled: AtomicU64,
    /// Compensation bookkeeping.
    extras_spawned: AtomicU64,
    extras_live: AtomicUsize,
    extra_handles: Mutex<Vec<JoinHandle<()>>>,
    live_threads: AtomicUsize,
    peak_threads: AtomicUsize,
}

impl Shared {
    fn enqueue(self: &Arc<Self>, state: Arc<TaskState>) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.injector.enqueue(state);
        if self.injector.is_closed() {
            // Shutdown finished behind our back; no worker will ever look at
            // the injector again.  Drain it here so the task still runs.
            self.drain_injector_inline();
        } else {
            self.wake_one();
        }
    }

    /// Like [`enqueue`](Self::enqueue), but through the pressure lane.  The
    /// occupancy count is raised *before* the push: any taker that would
    /// find the item also sees a nonzero count (the reverse order could
    /// make a concurrent `take_priority` skip a visible task).
    fn enqueue_priority(self: &Arc<Self>, state: Arc<TaskState>) {
        self.pressure_scheduled.fetch_add(1, Ordering::Relaxed);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.priority_len.fetch_add(1, Ordering::SeqCst);
        self.priority.enqueue(state);
        if self.priority.is_closed() {
            // Shutdown finished behind our back (see `enqueue`).
            self.drain_priority_inline();
        } else {
            self.wake_one();
        }
    }

    /// Grabs the next pressure-lane task, if any.  The common (empty-lane)
    /// case is one relaxed-ish atomic load; the lane's mutex is only taken
    /// while pressure wakes are actually in flight.
    fn take_priority(&self) -> Option<Arc<TaskState>> {
        if self.priority_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        if let Ok(Some(task)) = self.priority.try_dequeue() {
            self.priority_len.fetch_sub(1, Ordering::SeqCst);
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        None
    }

    /// Runs everything still in the pressure lane inline (shutdown path and
    /// the enqueue/close race).
    fn drain_priority_inline(&self) {
        while let Ok(Some(task)) = self.priority.try_dequeue() {
            self.priority_len.fetch_sub(1, Ordering::SeqCst);
            self.queued.fetch_sub(1, Ordering::SeqCst);
            run_inline(&task);
        }
    }

    /// Runs everything still in the injector inline (shutdown path and the
    /// enqueue/close race).
    fn drain_injector_inline(&self) {
        while let Ok(Some(task)) = self.injector.try_dequeue() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            run_inline(&task);
        }
    }

    fn wake_one(&self) {
        if self.sleeping.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle_lock.lock();
            self.idle_cond.notify_one();
        }
    }

    fn wake_all(&self) {
        let _guard = self.idle_lock.lock();
        self.idle_cond.notify_all();
    }

    /// Grabs a task from the pressure lane, the injector or any core deque
    /// (used by extra workers and by core workers whose own deque ran dry).
    fn take_shared(&self, skip_deque: Option<usize>) -> Option<Arc<TaskState>> {
        self.take_priority().or_else(|| self.take_plain(skip_deque))
    }

    /// Grabs a task from the plain (non-pressure) shared sources: the
    /// injector, then any core deque.
    fn take_plain(&self, skip_deque: Option<usize>) -> Option<Arc<TaskState>> {
        if let Ok(Some(task)) = self.injector.try_dequeue() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(task);
        }
        for (victim, stealer) in self.stealers.iter().enumerate() {
            if Some(victim) == skip_deque {
                continue;
            }
            if let Some(task) = stealer.steal() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::Relaxed);
                qs_obs::trace(qs_obs::TraceKind::SchedSteal, victim as u64, 0);
                return Some(task);
            }
        }
        None
    }

    /// `1 + millis since scheduler creation` (the +1 keeps 0 free as the
    /// "between steps" marker).
    fn now_marker(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 + 1
    }

    fn note_thread_started(&self) {
        let live = self.live_threads.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_threads.fetch_max(live, Ordering::SeqCst);
    }

    fn note_thread_exited(&self) {
        self.live_threads.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one step of `state` and routes the outcome: `Done` parks the flag
/// terminally, `Yielded` goes back to the *global* runnable FIFO (fairness:
/// re-entering through the owner's LIFO deque would let one hot handler be
/// re-popped immediately and starve its deque peers), `Idle` parks unless a
/// notify raced in.
fn run_task(shared: &Arc<Shared>, local: Option<&Worker<Arc<TaskState>>>, state: Arc<TaskState>) {
    let Some(task) = state.task() else {
        return;
    };
    shared.steps.fetch_add(1, Ordering::SeqCst);
    state.flag.store(RUNNING, Ordering::SeqCst);
    let outcome = catch_unwind(AssertUnwindSafe(|| task.step())).unwrap_or_else(|_| {
        shared.panics.fetch_add(1, Ordering::Relaxed);
        StepOutcome::Done
    });
    match outcome {
        StepOutcome::Done => state.mark_done(),
        StepOutcome::Yielded => {
            state.flag.store(SCHEDULED, Ordering::SeqCst);
            // A yield is a fairness event: the task goes to the back of the
            // global FIFO (or the pressure lane when its producers are
            // backpressured), behind every peer that was already runnable.
            enqueue_runnable(shared, state);
        }
        StepOutcome::Idle => {
            if state
                .flag
                .compare_exchange(RUNNING, IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // A producer notified while the step was running: the task
                // stays runnable so the new work cannot be lost.
                state.flag.store(SCHEDULED, Ordering::SeqCst);
                requeue(shared, local, state);
            }
        }
    }
}

/// Re-enqueues a task that was notified mid-step: the owner's deque for
/// locality (the task's queues were just hot in this worker's cache), unless
/// a pressure wake raced in, which routes through the priority lane.
fn requeue(shared: &Arc<Shared>, local: Option<&Worker<Arc<TaskState>>>, state: Arc<TaskState>) {
    if state.pressure.swap(false, Ordering::SeqCst) {
        qs_obs::trace(qs_obs::TraceKind::SchedPressure, 0, 0);
        shared.enqueue_priority(state);
        return;
    }
    match local {
        Some(deque) => {
            shared.queued.fetch_add(1, Ordering::SeqCst);
            deque.push(state);
            // Another worker may be parked while this deque now holds work.
            shared.wake_one();
        }
        None => shared.enqueue(state),
    }
}

/// A worker consults the shared sources (injector, sibling deques) first on
/// every Nth task acquisition.  Without this, a handler that yields on its
/// budget goes back to the owner's LIFO deque and is immediately re-popped,
/// so one hot handler could starve every task waiting in the injector.
/// The same rotation also inverts the pressure lane's precedence (plain
/// sources first on the Nth acquisition), so a perpetually-backpressured
/// pipeline — which re-enters the priority lane on every yield — cannot
/// starve plain-woken tasks either: pressure buys promptness, never
/// exclusivity.
const SHARED_POLL_INTERVAL: u32 = 16;

fn worker_loop(index: usize, local: Worker<Arc<TaskState>>, shared: Arc<Shared>) {
    shared.worker_tids[index].store(current_thread_id(), Ordering::SeqCst);
    let backoff = Backoff::new();
    let mut acquisitions = 0u32;
    loop {
        acquisitions = acquisitions.wrapping_add(1);
        let pop_local = || {
            local.pop().inspect(|_| {
                shared.queued.fetch_sub(1, Ordering::SeqCst);
            })
        };
        // The pressure lane outranks the LIFO slot on ordinary
        // acquisitions (a backpressured pipeline's consumer must not wait
        // behind this worker's own burst-mode tasks); every Nth
        // acquisition inverts the order so neither the lane nor the LIFO
        // slot can starve the plain shared sources.
        let task = if acquisitions.is_multiple_of(SHARED_POLL_INTERVAL) {
            shared
                .take_plain(Some(index))
                .or_else(|| shared.take_priority())
                .or_else(pop_local)
        } else {
            shared
                .take_priority()
                .or_else(pop_local)
                .or_else(|| shared.take_plain(Some(index)))
        };
        if let Some(task) = task {
            shared.step_started[index].store(shared.now_marker(), Ordering::SeqCst);
            run_task(&shared, Some(&local), task);
            shared.step_started[index].store(0, Ordering::SeqCst);
            backoff.reset();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            if shared.queued.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Someone is mid-enqueue; spin briefly and retry the take.
            backoff.snooze();
            continue;
        }
        if shared.queued.load(Ordering::SeqCst) > 0 {
            // Counted but not yet visible in any queue: a producer is between
            // the increment and the push.
            backoff.snooze();
            continue;
        }
        let mut guard = shared.idle_lock.lock();
        if shared.shutdown.load(Ordering::Acquire) || shared.queued.load(Ordering::SeqCst) > 0 {
            continue;
        }
        shared.sleeping.fetch_add(1, Ordering::SeqCst);
        qs_obs::trace(qs_obs::TraceKind::SchedPark, index as u64, 0);
        shared.idle_cond.wait(&mut guard);
        shared.sleeping.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Compensation worker: pulls from the injector and the core deques only,
/// retires after a stretch of idleness or on shutdown.
fn extra_worker_loop(shared: Arc<Shared>) {
    let mut idle_rounds = 0u32;
    while idle_rounds < 64 {
        if let Some(task) = shared.take_shared(None) {
            run_task(&shared, None, task);
            idle_rounds = 0;
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) && shared.queued.load(Ordering::SeqCst) == 0 {
            break;
        }
        idle_rounds += 1;
        std::thread::sleep(Duration::from_micros(200));
    }
    shared.extras_live.fetch_sub(1, Ordering::SeqCst);
    shared.note_thread_exited();
}

/// The OS id of the calling thread (`/proc/thread-self/stat` field 1), or 0
/// where that is unavailable (non-Linux, masked procfs).  0 makes the
/// monitor fall back to its pre-sampling behaviour for this worker: treat a
/// long-pinned step as blocked.
fn current_thread_id() -> u64 {
    std::fs::read_to_string("/proc/thread-self/stat")
        .ok()
        .and_then(|stat| stat.split_whitespace().next()?.parse().ok())
        .unwrap_or(0)
}

/// Cumulative CPU time (user + system, in clock ticks) consumed by thread
/// `tid` of this process, sampled from `/proc/self/task/<tid>/stat`.
fn thread_cpu_ticks(tid: u64) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).ok()?;
    // Fields 14 (utime) and 15 (stime), counted 1-based from the front of
    // the line; the comm field (2) may contain spaces, so parse from the
    // closing parenthesis: the remainder starts at field 3.
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

/// `/proc` reports CPU time in `USER_HZ` ticks; the kernel ABI pins the
/// value observed through procfs at 100 regardless of the kernel's internal
/// HZ, so 1 tick = 10ms of CPU.
const PROC_TICK_MS: u64 = 10;

/// CPU-time observation of one worker's current step, keyed by the step's
/// start marker so a new step resets the baseline.
#[derive(Clone, Copy)]
struct StepCpuBaseline {
    step_marker: u64,
    cpu_ticks: Option<u64>,
    wall_marker: u64,
}

/// How long a step must have been pinned before the monitor starts a CPU
/// baseline for it.  Keeps the per-tick procfs reads away from pools whose
/// steps are ordinarily short: only steps already suspiciously long (but
/// still well before the stall threshold) get sampled.
const BASELINE_MIN_PIN: Duration = Duration::from_millis(25);

/// Minimum wall-clock window a CPU baseline must span before a "blocked"
/// verdict is trusted.  With USER_HZ ticks of 10ms, a verdict off a 1-2ms
/// window would read every thread as 0-CPU ("blocked") and re-introduce the
/// spurious compensation this sampling exists to prevent.  A step that
/// started its baseline at `BASELINE_MIN_PIN` has a 75ms window by the time
/// the 100ms stall threshold passes, so the gate adds no detection latency
/// on the common path.
const MIN_BLOCKED_WINDOW: Duration = Duration::from_millis(50);

/// Whether a worker pinned inside one step since `baseline` is *blocked*
/// (parked in a futex, waiting on I/O) rather than CPU-bound: a blocked
/// thread accrues (almost) no CPU time across the stall window, while a
/// CPU-bound step — even one starved by preemption on an oversubscribed box
/// — keeps accruing.  Unknown CPU time (no procfs) counts as blocked, which
/// is the monitor's original, conservative behaviour.  A window still
/// shorter than [`MIN_BLOCKED_WINDOW`] counts as *not* blocked: too little
/// wall time has passed to distinguish anything at tick granularity, and
/// the verdict matures within a couple of monitor ticks.
fn pinned_step_is_blocked(baseline: &StepCpuBaseline, now: u64, tid: u64) -> bool {
    let wall_ms = now.saturating_sub(baseline.wall_marker);
    let (Some(cpu_then), Some(cpu_now)) = (baseline.cpu_ticks, thread_cpu_ticks(tid)) else {
        return true;
    };
    if wall_ms < MIN_BLOCKED_WINDOW.as_millis() as u64 {
        return false;
    }
    let cpu_ms = cpu_now.saturating_sub(cpu_then) * PROC_TICK_MS;
    // Blocked = the thread used under a quarter of the wall-clock window as
    // CPU.  The 25% margin absorbs tick granularity (10ms per tick against
    // a >=50ms window) and steps that briefly compute before blocking.
    cpu_ms * 4 < wall_ms
}

fn monitor_loop(shared: Arc<Shared>) {
    // Per core worker: the CPU baseline of the step it is currently inside.
    let mut baselines: Vec<Option<StepCpuBaseline>> = vec![None; shared.step_started.len()];
    loop {
        // Tick fast only while tasks are runnable; an idle pool downshifts
        // so a long-lived runtime full of parked handlers costs ~40 monitor
        // wakeups a second instead of 1000 (detection latency is dominated
        // by the 100ms stall threshold either way).
        let busy = shared.queued.load(Ordering::SeqCst) > 0;
        std::thread::sleep(if busy {
            MONITOR_INTERVAL
        } else {
            IDLE_MONITOR_INTERVAL
        });
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Retired compensation workers leave finished JoinHandles behind;
        // reap them so a long-lived scheduler does not accumulate one
        // handle per extra ever spawned.
        {
            let mut extras = shared.extra_handles.lock();
            if !extras.is_empty() {
                extras.retain(|handle| !handle.is_finished());
            }
        }
        // Track per-worker CPU baselines for steps that have been pinned
        // past `BASELINE_MIN_PIN` — regardless of queue state or sleeping
        // workers, so the baseline predates the stall window even when the
        // queue only becomes nonempty after the stall began.  Short steps
        // never reach the pin threshold and cost no procfs reads.
        let now = shared.now_marker();
        for (index, started) in shared.step_started.iter().enumerate() {
            let started = started.load(Ordering::SeqCst);
            if started == 0 {
                baselines[index] = None;
                continue;
            }
            if now.saturating_sub(started) < BASELINE_MIN_PIN.as_millis() as u64 {
                continue;
            }
            let stale = !matches!(&baselines[index], Some(b) if b.step_marker == started);
            if stale {
                let tid = shared.worker_tids[index].load(Ordering::SeqCst);
                baselines[index] = Some(StepCpuBaseline {
                    step_marker: started,
                    cpu_ticks: (tid != 0).then(|| thread_cpu_ticks(tid)).flatten(),
                    wall_marker: now,
                });
            }
        }
        if shared.queued.load(Ordering::SeqCst) == 0 {
            continue;
        }
        if shared.sleeping.load(Ordering::SeqCst) > 0 {
            // A worker is available; make sure it is awake and move on.
            shared.wake_one();
            continue;
        }
        // Compensate only when every core worker has been pinned inside one
        // step for at least the stall threshold — the signature of blocking
        // steps, not of short steps or scheduling jitter.
        let threshold = STALL_THRESHOLD.as_millis() as u64;
        let all_stuck = shared.step_started.iter().all(|started| {
            let started = started.load(Ordering::SeqCst);
            started != 0 && now.saturating_sub(started) >= threshold
        });
        if !all_stuck {
            continue;
        }
        // Distinguish blocked workers from CPU-bound ones: a step that is
        // merely slow (or preempted on an oversubscribed box) burns CPU the
        // whole time, and spawning more threads would only worsen the
        // oversubscription.  Compensate only when at least one pinned
        // worker is genuinely off-CPU (futex-parked on a blocking edge).
        let any_blocked = baselines.iter().enumerate().any(|(index, baseline)| {
            let Some(baseline) = baseline else {
                return true;
            };
            let tid = shared.worker_tids[index].load(Ordering::SeqCst);
            pinned_step_is_blocked(baseline, now, tid)
        });
        if !any_blocked {
            continue;
        }
        // Runnable tasks, no free worker, every worker pinned, at least one
        // provably blocked.  Compensate.
        if shared.extras_live.load(Ordering::SeqCst) < MAX_EXTRA_WORKERS {
            shared.extras_live.fetch_add(1, Ordering::SeqCst);
            shared.extras_spawned.fetch_add(1, Ordering::Relaxed);
            shared.note_thread_started();
            let worker_shared = Arc::clone(&shared);
            let id = shared.extras_spawned.load(Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name(format!("qs-hsched-extra-{id}"))
                .spawn(move || extra_worker_loop(worker_shared))
                .expect("failed to spawn compensation worker");
            shared.extra_handles.lock().push(handle);
            std::thread::sleep(POST_SPAWN_PAUSE);
        }
    }
}

/// A fixed-size M:N scheduler for [`PooledTask`]s with lost-wakeup-free
/// re-arming and blocked-worker compensation.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
/// use qs_exec::{HandlerScheduler, PooledTask, StepOutcome};
///
/// struct Countdown(AtomicU64);
/// impl PooledTask for Countdown {
///     fn step(&self) -> StepOutcome {
///         if self.0.fetch_sub(1, Ordering::SeqCst) > 1 {
///             StepOutcome::Idle // wait for the next notify
///         } else {
///             StepOutcome::Done
///         }
///     }
/// }
///
/// let scheduler = HandlerScheduler::new(2);
/// let handle = scheduler.register(Arc::new(Countdown(AtomicU64::new(3))));
/// while !handle.is_done() {
///     handle.notify();
/// }
/// ```
pub struct HandlerScheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    core_workers: usize,
}

impl HandlerScheduler {
    /// Spawns a scheduler with `workers` core worker threads (at least one)
    /// plus the compensation monitor.
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let mut deques = Vec::with_capacity(workers);
        let mut stealers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (deque, stealer) = steal_deque();
            deques.push(deque);
            stealers.push(stealer);
        }
        let shared = Arc::new(Shared {
            injector: MutexQueue::new(),
            priority: MutexQueue::new(),
            priority_len: AtomicUsize::new(0),
            stealers,
            queued: AtomicUsize::new(0),
            sleeping: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            epoch: std::time::Instant::now(),
            step_started: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            worker_tids: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steps: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            pressure_scheduled: AtomicU64::new(0),
            extras_spawned: AtomicU64::new(0),
            extras_live: AtomicUsize::new(0),
            extra_handles: Mutex::new(Vec::new()),
            live_threads: AtomicUsize::new(0),
            peak_threads: AtomicUsize::new(0),
        });
        let worker_handles = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = Arc::clone(&shared);
                shared.note_thread_started();
                std::thread::Builder::new()
                    .name(format!("qs-hsched-worker-{index}"))
                    .spawn(move || {
                        worker_loop(index, deque, Arc::clone(&shared));
                        shared.note_thread_exited();
                    })
                    .expect("failed to spawn scheduler worker")
            })
            .collect();
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("qs-hsched-monitor".to_string())
                .spawn(move || monitor_loop(shared))
                .expect("failed to spawn scheduler monitor")
        };
        Arc::new(HandlerScheduler {
            shared,
            workers: Mutex::new(worker_handles),
            monitor: Mutex::new(Some(monitor)),
            core_workers: workers,
        })
    }

    /// Registers a task, initially idle; the first
    /// [`notify`](TaskHandle::notify) schedules it.
    pub fn register(&self, task: Arc<dyn PooledTask>) -> TaskHandle {
        TaskHandle {
            state: Arc::new(TaskState {
                task: Mutex::new(Some(task)),
                flag: AtomicU8::new(IDLE),
                pressure: AtomicBool::new(false),
                scheduler: Arc::downgrade(&self.shared),
            }),
        }
    }

    /// Number of core worker threads.
    pub fn workers(&self) -> usize {
        self.core_workers
    }

    /// Tasks successfully stolen from a core worker's deque by another
    /// thread (sibling worker, compensation worker, or the shutdown
    /// drainer).  Injector grabs are not steals and are not counted.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Total steps started.
    pub fn steps(&self) -> u64 {
        self.shared.steps.load(Ordering::SeqCst)
    }

    /// Steps whose task panicked (the task is retired, the worker survives).
    pub fn panicked_steps(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Tasks scheduled through the pressure lane (a
    /// [`TaskHandle::notify_pressure`] wake, or a yield while a pressure
    /// wake was pending).
    pub fn pressure_scheduled(&self) -> u64 {
        self.shared.pressure_scheduled.load(Ordering::Relaxed)
    }

    /// Compensation workers ever spawned by the monitor.
    pub fn extra_workers_spawned(&self) -> u64 {
        self.shared.extras_spawned.load(Ordering::Relaxed)
    }

    /// Worker threads currently alive (core + compensation).
    pub fn live_threads(&self) -> usize {
        self.shared.live_threads.load(Ordering::SeqCst)
    }

    /// Most worker threads ever alive at once (core + compensation).
    pub fn peak_threads(&self) -> usize {
        self.shared.peak_threads.load(Ordering::SeqCst)
    }

    /// Drains queued tasks, stops every worker and the monitor, and joins
    /// them.  Tasks notified after shutdown run inline on the notifying
    /// thread, so no pending work is ever stranded.
    ///
    /// While joining, the calling thread doubles as a drain worker: a core
    /// worker pinned inside a blocking step may depend on a still-queued
    /// task to unblock it (the compensation scenario), and the monitor is
    /// winding down — so the joiner runs queued tasks itself until the
    /// worker exits.  Blocks until in-flight steps return; a step that only
    /// an external event can unblock keeps `shutdown` waiting for it.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.wake_all();
        for handle in self.workers.lock().drain(..) {
            while !handle.is_finished() {
                match self.shared.take_shared(None) {
                    Some(task) => run_task(&self.shared, None, task),
                    None => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            let _ = handle.join();
        }
        if let Some(monitor) = self.monitor.lock().take() {
            let _ = monitor.join();
        }
        loop {
            let extras: Vec<_> = self.shared.extra_handles.lock().drain(..).collect();
            if extras.is_empty() {
                break;
            }
            for handle in extras {
                let _ = handle.join();
            }
        }
        self.shared.priority.close();
        self.shared.injector.close();
        self.shared.drain_priority_inline();
        self.shared.drain_injector_inline();
    }
}

impl Drop for HandlerScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for HandlerScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandlerScheduler")
            .field("workers", &self.core_workers)
            .field("live_threads", &self.live_threads())
            .field("steps", &self.steps())
            .field("steals", &self.steals())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_sync::Event;
    use std::sync::atomic::AtomicUsize;

    /// Counts notifies received while draining a shared work counter.
    struct DrainTask {
        pending: AtomicUsize,
        executed: AtomicUsize,
        done: AtomicBool,
    }

    impl DrainTask {
        fn new() -> Arc<Self> {
            Arc::new(DrainTask {
                pending: AtomicUsize::new(0),
                executed: AtomicUsize::new(0),
                done: AtomicBool::new(false),
            })
        }
    }

    impl PooledTask for DrainTask {
        fn step(&self) -> StepOutcome {
            loop {
                if self
                    .pending
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    self.executed.fetch_add(1, Ordering::SeqCst);
                } else if self.done.load(Ordering::SeqCst) {
                    return StepOutcome::Done;
                } else {
                    return StepOutcome::Idle;
                }
            }
        }
    }

    #[test]
    fn every_notified_unit_of_work_executes() {
        let scheduler = HandlerScheduler::new(2);
        let task = DrainTask::new();
        let handle = scheduler.register(Arc::clone(&task) as Arc<dyn PooledTask>);
        const UNITS: usize = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let task = Arc::clone(&task);
                let handle = handle.clone();
                scope.spawn(move || {
                    for _ in 0..UNITS / 4 {
                        task.pending.fetch_add(1, Ordering::SeqCst);
                        handle.notify();
                    }
                });
            }
        });
        // Wait for the drain, then let the task finish.
        while task.executed.load(Ordering::SeqCst) < UNITS {
            std::thread::yield_now();
        }
        task.done.store(true, Ordering::SeqCst);
        handle.notify();
        while !handle.is_done() {
            std::thread::yield_now();
        }
        assert_eq!(task.executed.load(Ordering::SeqCst), UNITS);
        scheduler.shutdown();
    }

    #[test]
    fn idle_tasks_cost_no_threads() {
        let scheduler = HandlerScheduler::new(2);
        let handles: Vec<_> = (0..10_000)
            .map(|_| scheduler.register(DrainTask::new() as Arc<dyn PooledTask>))
            .collect();
        assert!(
            scheduler.live_threads() <= 2 + scheduler.shared.extras_live.load(Ordering::SeqCst)
        );
        drop(handles);
        scheduler.shutdown();
        assert_eq!(scheduler.live_threads(), 0);
    }

    #[test]
    fn yielded_tasks_are_rescheduled_until_done() {
        struct Stepper {
            steps_left: AtomicUsize,
        }
        impl PooledTask for Stepper {
            fn step(&self) -> StepOutcome {
                if self.steps_left.fetch_sub(1, Ordering::SeqCst) > 1 {
                    StepOutcome::Yielded
                } else {
                    StepOutcome::Done
                }
            }
        }
        let scheduler = HandlerScheduler::new(1);
        let handle = scheduler.register(Arc::new(Stepper {
            steps_left: AtomicUsize::new(50),
        }));
        handle.notify();
        while !handle.is_done() {
            std::thread::yield_now();
        }
        assert!(scheduler.steps() >= 50);
    }

    #[test]
    fn blocked_worker_is_compensated() {
        // Task A blocks its (only) worker until task B has run; without the
        // monitor spawning an extra worker this deadlocks.
        let scheduler = HandlerScheduler::new(1);
        let gate = Arc::new(Event::new());

        struct Blocker {
            gate: Arc<Event>,
        }
        impl PooledTask for Blocker {
            fn step(&self) -> StepOutcome {
                self.gate.wait();
                StepOutcome::Done
            }
        }
        struct Opener {
            gate: Arc<Event>,
        }
        impl PooledTask for Opener {
            fn step(&self) -> StepOutcome {
                self.gate.set();
                StepOutcome::Done
            }
        }

        let blocker = scheduler.register(Arc::new(Blocker {
            gate: Arc::clone(&gate),
        }));
        let opener = scheduler.register(Arc::new(Opener {
            gate: Arc::clone(&gate),
        }));
        blocker.notify();
        // Give the worker a moment to pick up the blocking step.
        std::thread::sleep(Duration::from_millis(5));
        opener.notify();
        while !blocker.is_done() || !opener.is_done() {
            std::thread::yield_now();
        }
        assert!(scheduler.extra_workers_spawned() >= 1);
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_runs_queued_unblocker_tasks() {
        // Regression: a worker pinned in a blocking step whose unblocker is
        // still queued must not deadlock shutdown — the joining thread
        // drains the queue itself while it waits.
        let scheduler = HandlerScheduler::new(1);
        let gate = Arc::new(Event::new());

        struct Blocker {
            gate: Arc<Event>,
        }
        impl PooledTask for Blocker {
            fn step(&self) -> StepOutcome {
                self.gate.wait();
                StepOutcome::Done
            }
        }
        struct Opener {
            gate: Arc<Event>,
        }
        impl PooledTask for Opener {
            fn step(&self) -> StepOutcome {
                self.gate.set();
                StepOutcome::Done
            }
        }

        let blocker = scheduler.register(Arc::new(Blocker {
            gate: Arc::clone(&gate),
        }));
        let opener = scheduler.register(Arc::new(Opener {
            gate: Arc::clone(&gate),
        }));
        blocker.notify();
        std::thread::sleep(Duration::from_millis(5));
        // The single worker is now pinned inside Blocker::step; the opener
        // sits in the injector.  Shut down before the 100ms compensation
        // threshold can fire.
        opener.notify();
        scheduler.shutdown();
        assert!(blocker.is_done());
        assert!(opener.is_done());
    }

    #[test]
    fn yielding_task_does_not_starve_the_injector() {
        // Regression: a hot task re-queued to its owner's LIFO deque must
        // not keep a single worker from ever consulting the injector.
        struct Hog {
            yields_left: AtomicUsize,
            other_done_first: Arc<AtomicBool>,
            other: Arc<Event>,
        }
        impl PooledTask for Hog {
            fn step(&self) -> StepOutcome {
                if self.yields_left.fetch_sub(1, Ordering::SeqCst) > 1 {
                    StepOutcome::Yielded
                } else {
                    self.other_done_first
                        .store(self.other.is_set(), Ordering::SeqCst);
                    StepOutcome::Done
                }
            }
        }
        struct Quick {
            done: Arc<Event>,
        }
        impl PooledTask for Quick {
            fn step(&self) -> StepOutcome {
                self.done.set();
                StepOutcome::Done
            }
        }

        let scheduler = HandlerScheduler::new(1);
        let quick_done = Arc::new(Event::new());
        let other_done_first = Arc::new(AtomicBool::new(false));
        let hog = scheduler.register(Arc::new(Hog {
            yields_left: AtomicUsize::new(10_000),
            other_done_first: Arc::clone(&other_done_first),
            other: Arc::clone(&quick_done),
        }));
        let quick = scheduler.register(Arc::new(Quick {
            done: Arc::clone(&quick_done),
        }));
        hog.notify();
        quick.notify();
        while !hog.is_done() || !quick.is_done() {
            std::thread::yield_now();
        }
        assert!(
            other_done_first.load(Ordering::SeqCst),
            "the injector task must run before a 10k-yield hog finishes"
        );
        scheduler.shutdown();
    }

    #[test]
    fn pressure_notified_task_overtakes_the_queue() {
        // One worker, pinned by a gate task; a crowd of plain-notified tasks
        // piles into the injector, then one task is pressure-notified.  When
        // the gate opens, the pressure-lane task must run before the crowd
        // that was queued ahead of it.
        use std::sync::Mutex as StdMutex;

        struct Recorder {
            id: usize,
            order: Arc<StdMutex<Vec<usize>>>,
        }
        impl PooledTask for Recorder {
            fn step(&self) -> StepOutcome {
                self.order.lock().unwrap().push(self.id);
                StepOutcome::Done
            }
        }
        struct Gate {
            gate: Arc<Event>,
        }
        impl PooledTask for Gate {
            fn step(&self) -> StepOutcome {
                self.gate.wait();
                StepOutcome::Done
            }
        }

        let scheduler = HandlerScheduler::new(1);
        let order: Arc<StdMutex<Vec<usize>>> = Arc::default();
        let gate = Arc::new(Event::new());
        let blocker = scheduler.register(Arc::new(Gate {
            gate: Arc::clone(&gate),
        }));
        blocker.notify();
        // Let the worker pick the gate task up and pin itself.
        std::thread::sleep(Duration::from_millis(5));
        let crowd: Vec<_> = (0..8)
            .map(|id| {
                let handle = scheduler.register(Arc::new(Recorder {
                    id,
                    order: Arc::clone(&order),
                }));
                handle.notify();
                handle
            })
            .collect();
        let urgent = scheduler.register(Arc::new(Recorder {
            id: 99,
            order: Arc::clone(&order),
        }));
        urgent.notify_pressure();
        gate.set();
        for handle in crowd.iter().chain([&urgent, &blocker]) {
            while !handle.is_done() {
                std::thread::yield_now();
            }
        }
        assert!(scheduler.pressure_scheduled() >= 1);
        let order = order.lock().unwrap();
        // First in the common case; second at most, when the gate happened
        // to open on the every-16th anti-starvation acquisition (which
        // consults the plain injector before the pressure lane on purpose).
        let position = order.iter().position(|&id| id == 99);
        assert!(
            position <= Some(1),
            "the pressure-woken task must overtake the injector crowd: {order:?}"
        );
        scheduler.shutdown();
    }

    #[test]
    fn notify_after_shutdown_runs_inline() {
        let scheduler = HandlerScheduler::new(1);
        let task = DrainTask::new();
        let handle = scheduler.register(Arc::clone(&task) as Arc<dyn PooledTask>);
        scheduler.shutdown();
        task.pending.fetch_add(1, Ordering::SeqCst);
        handle.notify();
        assert_eq!(task.executed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_step_retires_the_task_and_spares_the_worker() {
        struct Bomb;
        impl PooledTask for Bomb {
            fn step(&self) -> StepOutcome {
                panic!("task failure");
            }
        }
        let scheduler = HandlerScheduler::new(1);
        let bomb = scheduler.register(Arc::new(Bomb));
        bomb.notify();
        while !bomb.is_done() {
            std::thread::yield_now();
        }
        assert_eq!(scheduler.panicked_steps(), 1);
        // The worker survives and still runs other tasks.
        let task = DrainTask::new();
        let handle = scheduler.register(Arc::clone(&task) as Arc<dyn PooledTask>);
        task.pending.fetch_add(1, Ordering::SeqCst);
        task.done.store(true, Ordering::SeqCst);
        handle.notify();
        while !handle.is_done() {
            std::thread::yield_now();
        }
        assert_eq!(task.executed.load(Ordering::SeqCst), 1);
        scheduler.shutdown();
    }

    #[test]
    fn work_is_stolen_across_workers() {
        let scheduler = HandlerScheduler::new(2);
        // Many independent yield-happy tasks force cross-deque traffic.
        let handles: Vec<_> = (0..64)
            .map(|_| {
                let task = DrainTask::new();
                task.pending.store(50, Ordering::SeqCst);
                task.done.store(true, Ordering::SeqCst);
                (
                    Arc::clone(&task),
                    scheduler.register(task as Arc<dyn PooledTask>),
                )
            })
            .collect();
        for (_, handle) in &handles {
            handle.notify();
        }
        for (task, handle) in &handles {
            while !handle.is_done() {
                std::thread::yield_now();
            }
            assert_eq!(task.executed.load(Ordering::SeqCst), 50);
        }
        scheduler.shutdown();
    }
}
