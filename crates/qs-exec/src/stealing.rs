//! A work-stealing scheduler built on the per-worker deques of
//! [`crate::deque`].
//!
//! The paper's runtime uses a cooperative task layer beneath the handlers;
//! the related-work section situates SCOOP/Qs against Cilk-style work
//! stealing (§6).  This scheduler provides that comparison point inside the
//! repository: each worker owns a deque (owner-LIFO, thief-FIFO), external
//! submissions go to an injector queue, and an idle worker first drains its
//! own deque, then tries to steal from a randomly-chosen victim, then falls
//! back to the injector before parking.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use qs_queues::MutexQueue;
use qs_sync::Backoff;

use crate::deque::{steal_deque, Stealer, Worker};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing scheduler activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Jobs executed in total.
    pub executed: u64,
    /// Jobs a worker took from its own deque.
    pub local_pops: u64,
    /// Jobs obtained by stealing from another worker.
    pub steals: u64,
    /// Jobs taken from the shared injector queue.
    pub injector_pops: u64,
    /// Jobs whose closure panicked (caught; the worker survives).
    pub panics: u64,
}

struct StealShared {
    injector: MutexQueue<Job>,
    stealers: Vec<Stealer<Job>>,
    pending: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    shutdown: AtomicBool,
    executed: AtomicU64,
    local_pops: AtomicU64,
    steals: AtomicU64,
    injector_pops: AtomicU64,
    panics: AtomicU64,
}

impl StealShared {
    fn note_done(&self) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Take the lock before notifying so a waiter that just checked
            // `pending` cannot miss this wake-up.
            let _guard = self.idle_lock.lock();
            self.idle_cond.notify_all();
        }
    }
}

/// A fixed-size pool of workers with per-worker deques and work stealing.
pub struct StealPool {
    shared: Arc<StealShared>,
    workers: Vec<JoinHandle<()>>,
}

impl StealPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut worker_deques: Vec<Worker<Job>> = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (worker, stealer) = steal_deque();
            worker_deques.push(worker);
            stealers.push(stealer);
        }
        let shared = Arc::new(StealShared {
            injector: MutexQueue::new(),
            stealers,
            pending: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            local_pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });

        let workers = worker_deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("steal-worker-{index}"))
                    .spawn(move || worker_loop(index, deque, &shared))
                    .expect("spawn steal-pool worker")
            })
            .collect();

        StealPool { shared, workers }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_default_parallelism() -> Self {
        Self::new(crate::default_parallelism())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job for execution.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        assert!(
            !self.shared.shutdown.load(Ordering::Acquire),
            "spawn on a shut-down StealPool"
        );
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        // External submissions go through the shared injector; workers pick
        // them up when their own deques run dry.  Pushing onto a specific
        // worker's deque is only possible from that worker itself
        // (`spawn_local`), keeping every deque single-owner.
        self.shared.injector.enqueue(Box::new(job));
    }

    /// Blocks until every submitted job (including jobs spawned by jobs) has
    /// finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.idle_cond.wait(&mut guard);
        }
    }

    /// Runs `jobs` and waits for all of them (plus anything they spawn).
    pub fn run_all<I>(&self, jobs: I)
    where
        I: IntoIterator,
        I::Item: FnOnce() + Send + 'static,
    {
        for job in jobs {
            self.spawn(job);
        }
        self.wait_idle();
    }

    /// A snapshot of the scheduler counters.
    pub fn stats(&self) -> StealStats {
        StealStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            local_pops: self.shared.local_pops.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            injector_pops: self.shared.injector_pops.load(Ordering::Relaxed),
            panics: self.shared.panics.load(Ordering::Relaxed),
        }
    }

    /// Number of jobs submitted but not yet finished.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl Default for StealPool {
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

impl Drop for StealPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.injector.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for StealPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealPool")
            .field("threads", &self.threads())
            .field("pending", &self.pending())
            .field("stats", &self.stats())
            .finish()
    }
}

thread_local! {
    /// The deque of the current worker, when running on a pool thread; lets
    /// jobs spawned from within jobs stay on the local deque (fork/join
    /// locality, the point of owner-LIFO ordering).
    static LOCAL_DEQUE: std::cell::RefCell<Option<LocalHandle>> = const { std::cell::RefCell::new(None) };
}

struct LocalHandle {
    shared: Arc<StealShared>,
    // Raw pointer to the worker deque owned by this thread's worker loop; only
    // dereferenced while the loop (and therefore the deque) is alive.
    deque: *const Worker<Job>,
}

/// Spawns `job` onto the current worker's own deque when called from inside a
/// pool job, falling back to `pool_spawn` when called from outside.
pub fn spawn_local(job: impl FnOnce() + Send + 'static, fallback: &StealPool) {
    let mut job: Option<Job> = Some(Box::new(job));
    let used_local = LOCAL_DEQUE.with(|slot| {
        if let Some(handle) = slot.borrow().as_ref() {
            handle.shared.pending.fetch_add(1, Ordering::AcqRel);
            // SAFETY: the handle only exists while its worker loop is running
            // on this very thread, so the deque outlives this call.
            unsafe { (*handle.deque).push(job.take().expect("job not yet consumed")) };
            true
        } else {
            false
        }
    });
    if !used_local {
        if let Some(job) = job.take() {
            fallback.spawn(job);
        }
    }
}

fn worker_loop(index: usize, deque: Worker<Job>, shared: &Arc<StealShared>) {
    LOCAL_DEQUE.with(|slot| {
        *slot.borrow_mut() = Some(LocalHandle {
            shared: Arc::clone(shared),
            deque: &deque as *const Worker<Job>,
        });
    });
    let backoff = Backoff::new();
    loop {
        // 1. Own deque first (LIFO: depth-first on fork/join work).
        if let Some(job) = deque.pop() {
            shared.local_pops.fetch_add(1, Ordering::Relaxed);
            run_job(job, shared);
            backoff.reset();
            continue;
        }
        // 2. Steal from a victim, starting at a position derived from our
        //    index so workers fan out over different victims.
        let victims = shared.stealers.len();
        let mut stolen = None;
        for offset in 1..victims {
            let victim = (index + offset) % victims;
            if let Some(job) = shared.stealers[victim].steal() {
                stolen = Some(job);
                break;
            }
        }
        if let Some(job) = stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            run_job(job, shared);
            backoff.reset();
            continue;
        }
        // 3. The shared injector.
        match shared.injector.try_dequeue() {
            Ok(Some(job)) => {
                shared.injector_pops.fetch_add(1, Ordering::Relaxed);
                run_job(job, shared);
                backoff.reset();
                continue;
            }
            Err(qs_queues::Closed) => break, // closed and drained: shut down
            Ok(None) => {}
        }
        if shared.shutdown.load(Ordering::Acquire) && shared.pending.load(Ordering::Acquire) == 0 {
            break;
        }
        backoff.snooze();
    }
    LOCAL_DEQUE.with(|slot| slot.borrow_mut().take());
}

fn run_job(job: Job, shared: &Arc<StealShared>) {
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
        shared.panics.fetch_add(1, Ordering::Relaxed);
    }
    shared.note_done();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn all_jobs_run_exactly_once() {
        let pool = StealPool::new(4);
        let counter = Arc::new(Counter::new(0));
        for _ in 0..1_000 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1_000);
        let stats = pool.stats();
        assert_eq!(stats.executed, 1_000);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn nested_spawns_complete_before_wait_idle_returns() {
        let pool = Arc::new(StealPool::new(4));
        let counter = Arc::new(Counter::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let pool_inner = Arc::clone(&pool);
            pool.spawn(move || {
                for _ in 0..8 {
                    let counter = Arc::clone(&counter);
                    spawn_local(
                        move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        },
                        &pool_inner,
                    );
                }
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64 * 8);
        // Nested jobs went to the local deques, so local pops must dominate
        // injector pops.
        let stats = pool.stats();
        assert!(
            stats.local_pops > 0,
            "expected local deque usage: {stats:?}"
        );
    }

    #[test]
    fn imbalanced_work_is_stolen() {
        // One huge job spawns all the real work from inside the pool; without
        // stealing the other workers would sit idle while one deque holds
        // everything.
        let pool = Arc::new(StealPool::new(4));
        let counter = Arc::new(Counter::new(0));
        {
            let pool_inner = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                for _ in 0..2_000 {
                    let counter = Arc::clone(&counter);
                    spawn_local(
                        move || {
                            // Enough work per job that the other workers have
                            // time to engage even in release builds.
                            std::thread::sleep(std::time::Duration::from_micros(20));
                            counter.fetch_add(1, Ordering::Relaxed);
                        },
                        &pool_inner,
                    );
                }
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 2_000);
        let stats = pool.stats();
        assert!(
            stats.steals > 0,
            "expected at least one steal on an imbalanced load: {stats:?}"
        );
    }

    #[test]
    fn panicking_jobs_do_not_poison_the_pool() {
        let pool = StealPool::new(2);
        let counter = Arc::new(Counter::new(0));
        for i in 0..100 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                if i % 10 == 0 {
                    panic!("injected failure");
                }
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 90);
        assert_eq!(pool.stats().panics, 10);
        assert_eq!(pool.stats().executed, 100);
    }

    #[test]
    fn run_all_and_reuse() {
        let pool = StealPool::new(3);
        let counter = Arc::new(Counter::new(0));
        for _round in 0..5 {
            let jobs: Vec<_> = (0..50)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.run_all(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 250);
        assert_eq!(pool.pending(), 0);
        assert!(format!("{pool:?}").contains("threads"));
    }

    #[test]
    fn fork_join_fibonacci_produces_the_right_answer() {
        // A classic recursive fork/join workload expressed with a shared
        // accumulator: fib(n) counted as the number of base-case leaves.
        fn fib_spawn(n: u64, pool: &Arc<StealPool>, acc: &Arc<Counter>) {
            if n < 2 {
                acc.fetch_add(n.max(1), Ordering::Relaxed);
                return;
            }
            let (p1, a1) = (Arc::clone(pool), Arc::clone(acc));
            let (p2, a2) = (Arc::clone(pool), Arc::clone(acc));
            spawn_local(move || fib_spawn(n - 1, &p1, &a1), pool);
            spawn_local(move || fib_spawn(n - 2, &p2, &a2), pool);
        }

        let pool = Arc::new(StealPool::new(4));
        let acc = Arc::new(Counter::new(0));
        fib_spawn(16, &pool, &acc);
        pool.wait_idle();
        // Every leaf (n = 0 or 1) adds exactly 1, and the fib call tree for n
        // has fib(n + 1) leaves: fib(17) = 1597.
        assert_eq!(acc.load(Ordering::Relaxed), 1_597);
    }
}
