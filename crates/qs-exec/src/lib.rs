//! Task-switching and lightweight-thread layers of the SCOOP/Qs runtime.
//!
//! §3 of the paper: "The runtime is broken into 3 layers: task switching,
//! light-weight threads, and handlers."  The original implementation uses
//! user-level (green) threads so that handler creation and the
//! handler-to-client handoff are cheap.  In Rust, user-level context
//! switching of arbitrary blocking code is not expressible safely, so this
//! crate provides the closest equivalents (documented as a substitution in
//! `DESIGN.md`):
//!
//! * [`ThreadPool`] — a work-stealing pool for short-lived computational
//!   tasks (the "task switching" layer), used by the data-parallel workloads;
//! * [`scope`]/[`Scope`] — structured borrowing parallelism on top of the
//!   pool (parallel-for, fork/join);
//! * [`ThreadCache`] — recycled OS threads for handlers running in the
//!   *dedicated* scheduling mode, so that creating and retiring a handler
//!   does not pay thread creation cost each time (the "lightweight threads"
//!   layer);
//! * [`HandlerScheduler`] — M:N scheduling of handlers: resumable
//!   [`PooledTask`]s multiplexed onto a fixed work-stealing worker pool with
//!   a lost-wakeup-free re-arming protocol and blocked-worker compensation,
//!   so handler count is no longer bounded by OS thread count;
//! * [`deque`]/[`stealing`] — per-worker work-stealing deques (owner-LIFO,
//!   thief-FIFO) and a Cilk-style stealing scheduler built on them, used by
//!   the handler scheduler, as the comparison point for the §6 related-work
//!   discussion and by the scheduling ablation benchmarks.

#![warn(missing_docs)]

pub mod deque;
pub mod handler_scheduler;
pub mod pool;
pub mod scope;
pub mod stealing;
pub mod thread_cache;

pub use deque::{steal_deque, Stealer, Worker};
pub use handler_scheduler::{HandlerScheduler, PooledTask, StepOutcome, TaskHandle};
pub use pool::ThreadPool;
pub use scope::{parallel_chunks, parallel_for, Scope};
pub use stealing::{spawn_local, StealPool, StealStats};
pub use thread_cache::{CachedThread, ThreadCache};

/// Returns the number of worker threads to use by default: the amount of
/// available parallelism, or 4 if it cannot be determined.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
