//! Structured (scoped) parallelism on top of the work-stealing pool.
//!
//! The Cowichan kernels (§4.1.1) are data-parallel loops over large arrays;
//! they need to borrow the input and output buffers from the caller's stack.
//! [`Scope`] allows spawning non-`'static` tasks onto a [`ThreadPool`] while
//! guaranteeing — by blocking at the end of the scope — that every task has
//! finished before the borrows expire, the same contract as
//! `std::thread::scope` and rayon's `scope`.

use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use qs_sync::WaitGroup;

use crate::ThreadPool;

/// A scope in which borrowed-data tasks can be spawned onto a pool.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ThreadPool,
    wait_group: Arc<WaitGroup>,
    panics: Arc<AtomicUsize>,
    /// Invariance over the lifetimes, mirroring `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing environment.
    ///
    /// The task is guaranteed to finish before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.wait_group.add(1);
        let wait_group = Arc::clone(&self.wait_group);
        let panics = Arc::clone(&self.panics);
        // SAFETY: `scope` waits for the wait group before returning, so the
        // closure (and everything it borrows with lifetime 'scope/'env) is
        // guaranteed to outlive the task's execution.  The transmute only
        // erases the lifetime, not the type.
        let static_task: Box<dyn FnOnce() + Send + 'static> = unsafe {
            mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
                Box::new(f),
            )
        };
        self.pool.spawn(move || {
            if catch_unwind(AssertUnwindSafe(static_task)).is_err() {
                panics.fetch_add(1, Ordering::SeqCst);
            }
            wait_group.done();
        });
    }
}

/// Runs `f` with a [`Scope`] bound to `pool`, waiting for all spawned tasks
/// before returning.  Panics if any spawned task panicked.
pub fn scope<'env, F, R>(pool: &ThreadPool, f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let s = Scope {
        pool,
        wait_group: Arc::new(WaitGroup::new()),
        panics: Arc::new(AtomicUsize::new(0)),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Always wait: even if the closure panicked, spawned tasks may still be
    // borrowing the environment.  The wait *helps* the pool (steals and runs
    // pending tasks) so that scopes nested inside pool workers cannot
    // deadlock the pool by blocking every worker.
    let backoff = qs_sync::Backoff::new();
    while s.wait_group.count() != 0 {
        if pool.help_run_one() {
            backoff.reset();
        } else if backoff.is_completed() {
            std::thread::yield_now();
        } else {
            backoff.snooze();
        }
    }
    let task_panics = s.panics.load(Ordering::SeqCst);
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if task_panics > 0 {
                panic!("{task_panics} scoped task(s) panicked");
            }
            value
        }
    }
}

/// Splits `0..len` into roughly equal chunks (at most `tasks` of them) and
/// runs `body` on each chunk in parallel on `pool`.
///
/// `body` receives the half-open index range of its chunk.
pub fn parallel_for<F>(pool: &ThreadPool, len: usize, tasks: usize, body: F)
where
    F: Fn(std::ops::Range<usize>) + Sync + Send,
{
    if len == 0 {
        return;
    }
    let tasks = tasks.clamp(1, len);
    let chunk = len.div_ceil(tasks);
    let body = &body;
    scope(pool, |s| {
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            s.spawn(move || body(start..end));
            start = end;
        }
    });
}

/// Runs `body` over mutable, disjoint chunks of `data` in parallel.
///
/// The slice is split into at most `tasks` contiguous chunks; `body` receives
/// the chunk index, the starting offset of the chunk in the original slice
/// and the chunk itself.
pub fn parallel_chunks<T, F>(pool: &ThreadPool, data: &mut [T], tasks: usize, body: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync + Send,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let tasks = tasks.clamp(1, len);
    let chunk = len.div_ceil(tasks);
    let body = &body;
    scope(pool, |s| {
        for (index, (offset, slice)) in data
            .chunks_mut(chunk)
            .scan(0usize, |offset, slice| {
                let start = *offset;
                *offset += slice.len();
                Some((start, slice))
            })
            .enumerate()
        {
            s.spawn(move || body(index, offset, slice));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn scope_waits_for_borrowing_tasks() {
        let pool = ThreadPool::new(4);
        let mut values = vec![0usize; 64];
        scope(&pool, |s| {
            for (i, v) in values.iter_mut().enumerate() {
                s.spawn(move || *v = i * 2);
            }
        });
        assert!(values.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let out = scope(&pool, |s| {
            s.spawn(|| {});
            123
        });
        assert_eq!(out, 123);
    }

    #[test]
    #[should_panic(expected = "scoped task(s) panicked")]
    fn scope_propagates_task_panics() {
        let pool = ThreadPool::new(2);
        scope(&pool, |s| {
            s.spawn(|| panic!("boom"));
        });
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits = (0..1_000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        parallel_for(&pool, hits.len(), 16, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_for_handles_len_smaller_than_tasks() {
        let pool = ThreadPool::new(4);
        let sum = Mutex::new(0usize);
        parallel_for(&pool, 3, 64, |range| {
            *sum.lock().unwrap() += range.len();
        });
        assert_eq!(*sum.lock().unwrap(), 3);
        // Zero-length loop is a no-op.
        parallel_for(&pool, 0, 8, |_range| panic!("must not run"));
    }

    #[test]
    fn parallel_chunks_partitions_disjointly() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 1_000];
        parallel_chunks(&pool, &mut data, 7, |_, offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (offset + i) as u32;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn nested_scopes_work() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        scope(&pool, |outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    // Nested scope on the same pool: tasks spawned here are
                    // executed by the same workers without deadlocking,
                    // because the outer task does not block on the pool while
                    // holding a worker (the inner scope's wait group is
                    // independent of worker threads).
                    let inner_total = AtomicUsize::new(0);
                    scope(&pool, |inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                inner_total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                    total.fetch_add(inner_total.load(Ordering::SeqCst), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 32);
    }
}
