//! Property-based tests for the qs-lang pipeline.
//!
//! The key property is *strategy independence*: whatever mixture of commands
//! and queries a program performs, the observable result must be identical
//! under every runtime optimisation level and every query strategy — that is
//! precisely the paper's claim that the optimisations preserve the reasoning
//! guarantees.

use proptest::prelude::*;

use qs_lang::programs;
use qs_lang::{compile, run_compiled, QueryStrategy};
use qs_runtime::{OptimizationLevel, Runtime};

/// Builds a program that applies an arbitrary list of operations to a counter
/// handler and prints the final value.
fn counter_program(ops: &[(bool, i64)]) -> (String, i64) {
    let mut body = String::new();
    let mut expected = 0i64;
    let mut queries = 0usize;
    for (is_query, amount) in ops {
        if *is_query {
            body.push_str("    v := c.value()\n");
            queries += 1;
        } else {
            body.push_str(&format!("    c.bump({amount})\n"));
            expected += amount;
        }
    }
    let _ = queries;
    let source = format!(
        "class COUNTER\n\
           attribute count : INTEGER\n\
           command bump(amount: INTEGER) do count := count + amount end\n\
           query value : INTEGER do Result := count end\n\
         end\n\
         main\n\
           local c : separate COUNTER\n\
           local v : INTEGER\n\
         do\n\
           create c\n\
           separate c do\n{body}    v := c.value()\n  end\n\
           print(v)\n\
         end"
    );
    (source, expected)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn counter_result_is_strategy_independent(
        ops in proptest::collection::vec((any::<bool>(), -50i64..50), 1..24)
    ) {
        let (source, expected) = counter_program(&ops);
        let compiled = compile(&source).unwrap();
        let mut observed = Vec::new();
        for level in [OptimizationLevel::None, OptimizationLevel::Dynamic, OptimizationLevel::All] {
            for strategy in [
                QueryStrategy::RuntimeManaged,
                QueryStrategy::NaiveSync,
                compiled.static_strategy(),
            ] {
                let runtime = Runtime::new(level.config());
                let output = run_compiled(&compiled, &runtime, strategy).unwrap();
                observed.push(output.printed.clone());
            }
        }
        for printed in observed {
            prop_assert_eq!(printed, vec![expected.to_string()]);
        }
    }

    #[test]
    fn copy_loop_output_matches_reference_for_all_sizes(n in 1usize..96) {
        let compiled = compile(&programs::copy_loop(n)).unwrap();
        // The loop-body read must always lose its sync, independent of n.
        prop_assert!(compiled.lowered.plan.elided_sites() >= 1);
        let runtime = Runtime::fully_optimized();
        let output = run_compiled(&compiled, &runtime, compiled.static_strategy()).unwrap();
        prop_assert_eq!(output.printed, programs::copy_loop_expected(n));
    }

    #[test]
    fn lexer_never_panics_and_positions_are_monotonic(source in "[ -~\n]{0,200}") {
        if let Ok(tokens) = qs_lang::lex(&source) {
            for pair in tokens.windows(2) {
                prop_assert!(pair[0].pos <= pair[1].pos);
            }
            prop_assert!(matches!(tokens.last().unwrap().kind, qs_lang::TokenKind::Eof));
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(source in "[ -~\n]{0,200}") {
        let _ = qs_lang::parse_program(&source);
    }
}
