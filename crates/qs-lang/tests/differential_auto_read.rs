//! Differential corpus test for the effect-inference auto-read downgrade.
//!
//! Every corpus program runs at all five optimization levels with the
//! `auto_read` knob forced on and forced off, under both schedulers.  The
//! printed output must be identical everywhere — the downgrade is an
//! optimisation, never a behaviour change — and the read-mostly program must
//! actually take shared-read reservations when (and only when) the knob is
//! on.

use qs_lang::programs::{
    bank_transfer_expected, copy_loop, copy_loop_expected, counter_expected, hot_reads_expected,
    two_stage_pipeline_expected, BANK_TRANSFER, COUNTER, HOT_READS, TWO_STAGE_PIPELINE,
};
use qs_lang::{compile, run_compiled, Compiled, QueryStrategy};
use qs_runtime::{OptimizationLevel, Runtime, SchedulerMode};

fn corpus() -> Vec<(&'static str, Compiled, Vec<String>)> {
    let copy = copy_loop(64);
    vec![
        ("counter", compile(COUNTER).unwrap(), counter_expected()),
        (
            "bank_transfer",
            compile(BANK_TRANSFER).unwrap(),
            bank_transfer_expected(),
        ),
        ("copy_loop", compile(&copy).unwrap(), copy_loop_expected(64)),
        (
            "pipeline",
            compile(TWO_STAGE_PIPELINE).unwrap(),
            two_stage_pipeline_expected(),
        ),
        (
            "hot_reads",
            compile(HOT_READS).unwrap(),
            hot_reads_expected(),
        ),
    ]
}

#[test]
fn corpus_is_invariant_under_auto_read_at_every_level() {
    for (name, compiled, expected) in corpus() {
        for level in OptimizationLevel::ALL {
            for auto_read in [false, true] {
                for scheduler in [
                    SchedulerMode::Dedicated,
                    SchedulerMode::Pooled { workers: 2 },
                ] {
                    let config = level
                        .config()
                        .with_auto_read(auto_read)
                        .with_scheduler(scheduler);
                    let runtime = Runtime::new(config);
                    let strategy = if level == OptimizationLevel::Static {
                        compiled.static_strategy()
                    } else {
                        QueryStrategy::RuntimeManaged
                    };
                    let output = run_compiled(&compiled, &runtime, strategy).unwrap_or_else(|e| {
                        panic!("{name} failed at {level} auto_read={auto_read}: {e}")
                    });
                    assert_eq!(
                        output.printed, expected,
                        "{name} diverged at {level} auto_read={auto_read} scheduler={scheduler}"
                    );
                }
            }
        }
    }
}

#[test]
fn hot_reads_takes_read_reservations_only_under_auto_read() {
    let compiled = compile(HOT_READS).unwrap();
    assert_eq!(
        compiled.checked.inferred_read_blocks.len(),
        1,
        "the query-only block must be proven read-only"
    );

    let on = Runtime::new(OptimizationLevel::All.config());
    let with_auto = run_compiled(&compiled, &on, QueryStrategy::RuntimeManaged).unwrap();
    assert!(
        with_auto.stats.read_reservations > 0,
        "auto_read on: the inferred block must reserve in read mode"
    );

    let off = Runtime::new(OptimizationLevel::All.config().with_auto_read(false));
    let without = run_compiled(&compiled, &off, QueryStrategy::RuntimeManaged).unwrap();
    assert_eq!(
        without.stats.read_reservations, 0,
        "auto_read off: the undowngraded baseline must stay exclusive"
    );
    assert_eq!(with_auto.printed, without.printed);
}
