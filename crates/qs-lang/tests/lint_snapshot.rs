//! Golden snapshot of the effect-inference lints.
//!
//! The static pass's structured diagnostics are part of the toolchain's
//! contract: CI consumes the JSON dump, so its exact shape is pinned here
//! against a committed golden file.  If a change to the pass alters the
//! diagnostics on purpose, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p qs-lang --test lint_snapshot` and commit
//! the new `tests/golden/static_pass_lints.json`.

use qs_lang::compile;
use qs_lang::programs::HOT_READS;

/// A near-miss program: the block only calls queries, but `take` mutates the
/// attribute state, so the downgrade is declined with a QS-W001 warning.
const IMPURE_TICKET: &str = "\
class TICKET
  attribute serial : INTEGER
  query take : INTEGER do serial := serial + 1 Result := serial end
end

main
  local t : separate TICKET
  local v : INTEGER
do
  create t
  separate t do v := t.take() end
  print(v)
end
";

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/static_pass_lints.json"
);

fn current_lints() -> String {
    let mut diagnostics = compile(HOT_READS).unwrap().checked.diagnostics;
    diagnostics.extend(compile(IMPURE_TICKET).unwrap().checked.diagnostics);
    qs_compiler::diagnostics_to_json(&diagnostics)
}

#[test]
fn lints_match_the_committed_golden_file() {
    let current = current_lints();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, format!("{current}\n")).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        current.trim(),
        golden.trim(),
        "static-pass lints drifted from the committed snapshot; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn the_snapshot_covers_both_lint_codes() {
    let current = current_lints();
    assert!(current.contains("QS-N001"), "{current}");
    assert!(current.contains("QS-W001"), "{current}");
}
