//! Runtime values and handler-owned object state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sema::{ClassInfo, Type};

/// A runtime value of the language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A one-dimensional integer array.
    Array(Vec<i64>),
    /// The absence of a value (result of a command).
    Void,
}

impl Value {
    /// Default value for a declared type.
    pub fn default_for(ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::Array => Value::Array(Vec::new()),
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "INTEGER",
            Value::Bool(_) => "BOOLEAN",
            Value::Array(_) => "ARRAY",
            Value::Void => "VOID",
        }
    }

    /// Extracts an integer or reports a runtime error message.
    pub fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(format!("expected INTEGER, found {}", other.type_name())),
        }
    }

    /// Extracts a boolean or reports a runtime error message.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected BOOLEAN, found {}", other.type_name())),
        }
    }

    /// Extracts an array or reports a runtime error message.
    pub fn as_array(&self) -> Result<&Vec<i64>, String> {
        match self {
            Value::Array(a) => Ok(a),
            other => Err(format!("expected ARRAY, found {}", other.type_name())),
        }
    }

    /// Renders the value the way `print` does.
    pub fn render(&self) -> String {
        match self {
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Array(a) => {
                let mut out = String::from("[");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&v.to_string());
                }
                out.push(']');
                out
            }
            Value::Void => "Void".to_string(),
        }
    }
}

/// The state a handler owns on behalf of one language-level object: its class
/// name plus one slot per attribute (slots are resolved by the checker).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectState {
    /// The class of the object.
    pub class: String,
    /// Attribute values, indexed by the checker's field slots.
    pub fields: Vec<Value>,
}

impl ObjectState {
    /// A fresh, default-initialised object of the given class.
    pub fn new(info: &ClassInfo) -> Self {
        ObjectState {
            class: info.name.clone(),
            fields: info
                .fields
                .iter()
                .map(|(_, ty)| Value::default_for(*ty))
                .collect(),
        }
    }
}

/// A tiny deterministic pseudo-random generator shared between the client
/// thread and handler threads (`random(n)` in the language).  Determinism
/// only holds for single-client programs, which is what the demos use it for.
#[derive(Debug, Clone)]
pub struct SharedRng {
    state: Arc<AtomicU64>,
}

impl SharedRng {
    /// Creates a generator with the given seed (0 is mapped to a non-zero
    /// constant because xorshift has a fixed point at 0).
    pub fn new(seed: u64) -> Self {
        SharedRng {
            state: Arc::new(AtomicU64::new(if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            })),
        }
    }

    /// The next value in `[0, bound)`; `bound <= 0` is a runtime error.
    pub fn next_below(&self, bound: i64) -> Result<i64, String> {
        if bound <= 0 {
            return Err(format!("random({bound}): bound must be positive"));
        }
        let mut next = 0u64;
        self.state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                next = x;
                Some(x)
            })
            .expect("fetch_update with Some never fails");
        Ok((next % bound as u64) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn defaults_match_types() {
        assert_eq!(Value::default_for(Type::Int), Value::Int(0));
        assert_eq!(Value::default_for(Type::Bool), Value::Bool(false));
        assert_eq!(Value::default_for(Type::Array), Value::Array(vec![]));
    }

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(4).as_int().unwrap(), 4);
        assert!(Value::Bool(true).as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Array(vec![1, 2]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn rendering_is_stable() {
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::Bool(true).render(), "true");
        assert_eq!(Value::Array(vec![1, 2, 3]).render(), "[1, 2, 3]");
        assert_eq!(Value::Void.render(), "Void");
    }

    #[test]
    fn object_state_uses_field_slots() {
        let info = ClassInfo {
            name: "C".into(),
            fields: vec![("a".into(), Type::Int), ("b".into(), Type::Array)],
            field_index: BTreeMap::from([("a".into(), 0), ("b".into(), 1)]),
            routines: BTreeMap::new(),
        };
        let obj = ObjectState::new(&info);
        assert_eq!(obj.fields, vec![Value::Int(0), Value::Array(vec![])]);
    }

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let a = SharedRng::new(42);
        let b = SharedRng::new(42);
        for _ in 0..100 {
            let x = a.next_below(10).unwrap();
            assert_eq!(x, b.next_below(10).unwrap());
            assert!((0..10).contains(&x));
        }
        assert!(a.next_below(0).is_err());
    }

    #[test]
    fn rng_zero_seed_is_usable() {
        let rng = SharedRng::new(0);
        // Must not get stuck at zero forever.
        let distinct: std::collections::BTreeSet<_> = (0..16)
            .map(|_| rng.next_below(1_000_000).unwrap())
            .collect();
        assert!(distinct.len() > 1);
    }
}
