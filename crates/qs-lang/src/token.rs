//! The lexer: turns source text into a token stream.
//!
//! The surface syntax is a small Eiffel/SCOOP-flavoured language.  Comments
//! are `-- to end of line`; identifiers are case-sensitive; keywords are
//! lower-case.  The lexer tracks line/column positions for error messages.

use crate::error::{LangError, LangResult, Phase, Pos};

/// The kinds of token the language has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal.
    Int(i64),
    /// `true` or `false`.
    Bool(bool),
    /// An identifier (variable, class, routine or attribute name).
    Ident(String),
    /// A string literal (only used by `print`).
    Str(String),

    // Keywords.
    /// `class`
    Class,
    /// `attribute`
    Attribute,
    /// `command`
    Command,
    /// `query`
    Query,
    /// `main`
    Main,
    /// `local`
    Local,
    /// `do`
    Do,
    /// `end`
    End,
    /// `create`
    Create,
    /// `separate`
    Separate,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `elseif`
    Elseif,
    /// `while`
    While,
    /// `loop`
    Loop,
    /// `print`
    Print,
    /// `require`
    Require,
    /// `ensure`
    Ensure,
    /// `Result`
    ResultKw,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `mod`
    Mod,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `/=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer {n}"),
            TokenKind::Bool(b) => format!("boolean {b}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.literal()),
        }
    }

    fn literal(&self) -> &'static str {
        match self {
            TokenKind::Class => "class",
            TokenKind::Attribute => "attribute",
            TokenKind::Command => "command",
            TokenKind::Query => "query",
            TokenKind::Main => "main",
            TokenKind::Local => "local",
            TokenKind::Do => "do",
            TokenKind::End => "end",
            TokenKind::Create => "create",
            TokenKind::Separate => "separate",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Else => "else",
            TokenKind::Elseif => "elseif",
            TokenKind::While => "while",
            TokenKind::Loop => "loop",
            TokenKind::Print => "print",
            TokenKind::Require => "require",
            TokenKind::Ensure => "ensure",
            TokenKind::ResultKw => "Result",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::Mod => "mod",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semicolon => ";",
            TokenKind::Colon => ":",
            TokenKind::Dot => ".",
            TokenKind::Assign => ":=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Eq => "=",
            TokenKind::Neq => "/=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            _ => "?",
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenises `source`, returning the token stream terminated by
/// [`TokenKind::Eof`].
pub fn lex(source: &str) -> LangResult<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    index: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            index: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.index).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.index + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.index += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LangResult<Vec<Token>> {
        let mut tokens = Vec::with_capacity(self.source.len() / 4 + 8);
        loop {
            self.skip_trivia();
            let pos = self.pos();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_digit() {
                self.lex_number(pos)?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.lex_word()
            } else if c == '"' {
                self.lex_string(pos)?
            } else {
                self.lex_symbol(pos)?
            };
            tokens.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    // `--` comment to end of line.
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_number(&mut self, pos: Pos) -> LangResult<TokenKind> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    digits.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        digits.parse::<i64>().map(TokenKind::Int).map_err(|_| {
            LangError::at(
                Phase::Lex,
                pos,
                format!("integer literal `{digits}` out of range"),
            )
        })
    }

    fn lex_word(&mut self) -> TokenKind {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "class" => TokenKind::Class,
            "attribute" => TokenKind::Attribute,
            "command" => TokenKind::Command,
            "query" => TokenKind::Query,
            "main" => TokenKind::Main,
            "local" => TokenKind::Local,
            "do" => TokenKind::Do,
            "end" => TokenKind::End,
            "create" => TokenKind::Create,
            "separate" => TokenKind::Separate,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "elseif" => TokenKind::Elseif,
            "while" => TokenKind::While,
            "loop" => TokenKind::Loop,
            "print" => TokenKind::Print,
            "require" => TokenKind::Require,
            "ensure" => TokenKind::Ensure,
            "Result" => TokenKind::ResultKw,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "mod" => TokenKind::Mod,
            "true" => TokenKind::Bool(true),
            "false" => TokenKind::Bool(false),
            _ => TokenKind::Ident(word),
        }
    }

    fn lex_string(&mut self, pos: Pos) -> LangResult<TokenKind> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(value)),
                Some('\n') | None => {
                    return Err(LangError::at(
                        Phase::Lex,
                        pos,
                        "unterminated string literal",
                    ))
                }
                Some(c) => value.push(c),
            }
        }
    }

    fn lex_symbol(&mut self, pos: Pos) -> LangResult<TokenKind> {
        let c = self.bump().expect("symbol start");
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semicolon,
            '.' => TokenKind::Dot,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '=' => TokenKind::Eq,
            ':' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Assign
                } else {
                    TokenKind::Colon
                }
            }
            '/' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Neq
                } else {
                    TokenKind::Slash
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(LangError::at(
                    Phase::Lex,
                    pos,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        let ks = kinds("class ACCOUNT attribute balance : INTEGER end");
        assert_eq!(
            ks,
            vec![
                TokenKind::Class,
                TokenKind::Ident("ACCOUNT".into()),
                TokenKind::Attribute,
                TokenKind::Ident("balance".into()),
                TokenKind::Colon,
                TokenKind::Ident("INTEGER".into()),
                TokenKind::End,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_numbers() {
        let ks = kinds("x := 1_000 + 2 * 3 <= 7 /= 8");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1000),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Star,
                TokenKind::Int(3),
                TokenKind::Le,
                TokenKind::Int(7),
                TokenKind::Neq,
                TokenKind::Int(8),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_positions_tracked() {
        let tokens = lex("-- a comment\n  x := 1").unwrap();
        assert_eq!(tokens[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(tokens[0].pos, Pos::new(2, 3));
        assert_eq!(tokens[1].pos, Pos::new(2, 5));
    }

    #[test]
    fn strings_and_booleans() {
        let ks = kinds(r#"print("hello") true false"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Print,
                TokenKind::LParen,
                TokenKind::Str("hello".into()),
                TokenKind::RParen,
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("\"abc").unwrap_err();
        assert_eq!(err.phase, Phase::Lex);
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = lex("x := #").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn result_keyword_is_distinct_from_identifier() {
        assert_eq!(kinds("Result")[0], TokenKind::ResultKw);
        assert_eq!(kinds("result")[0], TokenKind::Ident("result".into()));
    }
}
