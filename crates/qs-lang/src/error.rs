//! Error types shared by every phase of the qs-lang pipeline.
//!
//! Each phase (lexing, parsing, semantic checking, execution) reports errors
//! with a source position so that a failing program can be diagnosed without
//! a debugger — the same discipline a production compiler front end follows.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The phase of the pipeline an error originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis (name resolution, types, separateness).
    Check,
    /// Execution.
    Run,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Run => "runtime",
        };
        f.write_str(name)
    }
}

/// An error produced anywhere in the qs-lang pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// The phase that produced the error.
    pub phase: Phase,
    /// Position in the source, when known.
    pub pos: Option<Pos>,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// Creates an error with a position.
    pub fn at(phase: Phase, pos: Pos, message: impl Into<String>) -> Self {
        LangError {
            phase,
            pos: Some(pos),
            message: message.into(),
        }
    }

    /// Creates an error without a position (e.g. end of input).
    pub fn general(phase: Phase, message: impl Into<String>) -> Self {
        LangError {
            phase,
            pos: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} error at {}: {}", self.phase, pos, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for LangError {}

/// Result alias used across the crate.
pub type LangResult<T> = Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_and_without_position() {
        let with = LangError::at(Phase::Parse, Pos::new(3, 7), "unexpected token");
        assert_eq!(with.to_string(), "parse error at 3:7: unexpected token");
        let without = LangError::general(Phase::Lex, "unterminated comment");
        assert_eq!(without.to_string(), "lex error: unterminated comment");
    }

    #[test]
    fn positions_order_lexicographically() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 3) < Pos::new(2, 4));
    }

    #[test]
    fn phases_display_names() {
        assert_eq!(Phase::Check.to_string(), "check");
        assert_eq!(Phase::Run.to_string(), "runtime");
    }
}
